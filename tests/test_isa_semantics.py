"""Direct semantics tests of individual virtual ISA instructions,
executed through a minimal hand-built plan."""

import pytest

from repro.ir import Affine, parse_program
from repro.vm import (
    CompiledStraight,
    ExecutablePlan,
    ImmRef,
    MemRef,
    Memory,
    PackMode,
    ScalarRef,
    Simulator,
    StoreMode,
    VOp,
    VPack,
    VShuffle,
    VStore,
    intel_dunnington,
)
from repro.layout import default_scalar_layout

PROGRAM_SRC = "double A[16]; double B[16]; double x, y;"


def run_instructions(instructions):
    program = parse_program(PROGRAM_SRC)
    plan = ExecutablePlan(program, default_scalar_layout(program))
    plan.units.append(CompiledStraight(list(instructions)))
    simulator = Simulator(intel_dunnington())
    return simulator.run(plan)


def mem(array, const):
    return MemRef(array, Affine.of(const))


class TestVPack:
    def test_contiguous_load_reads_memory(self):
        report, memory = run_instructions(
            [
                VPack(0, (mem("A", 0), mem("A", 1)), PackMode.CONTIG_ALIGNED),
                VStore((mem("B", 0), mem("B", 1)), 0, StoreMode.CONTIG_ALIGNED),
            ]
        )
        assert memory.arrays["B"][0] == memory.arrays["A"][0]
        assert memory.arrays["B"][1] == memory.arrays["A"][1]
        assert report.counts["vector_load"] == 1
        assert report.counts["vector_store"] == 1

    def test_gather_counts_per_lane(self):
        report, _ = run_instructions(
            [
                VPack(0, (mem("A", 0), mem("A", 9)), PackMode.GATHER),
                VStore((mem("B", 0), mem("B", 1)), 0, StoreMode.CONTIG_ALIGNED),
            ]
        )
        assert report.counts["pack_mem_load"] == 2
        assert report.counts["lane_insert"] == 2

    def test_immediate_pack(self):
        report, memory = run_instructions(
            [
                VPack(0, (ImmRef(4.0), ImmRef(9.0)), PackMode.IMMEDIATE),
                VStore((mem("B", 2), mem("B", 3)), 0, StoreMode.CONTIG_ALIGNED),
            ]
        )
        assert list(memory.arrays["B"][2:4]) == [4.0, 9.0]
        assert report.counts["imm_vector"] == 1

    def test_broadcast_reads_scalar_once(self):
        report, memory = run_instructions(
            [
                VPack(0, (ScalarRef("x"), ScalarRef("x")), PackMode.BROADCAST),
                VStore((mem("B", 0), mem("B", 1)), 0, StoreMode.CONTIG_ALIGNED),
            ]
        )
        assert memory.arrays["B"][0] == memory.arrays["B"][1]
        assert report.counts["broadcast"] == 1


class TestVOpAndShuffle:
    def test_lanewise_arithmetic(self):
        report, memory = run_instructions(
            [
                VPack(0, (ImmRef(2.0), ImmRef(3.0)), PackMode.IMMEDIATE),
                VPack(1, (ImmRef(10.0), ImmRef(20.0)), PackMode.IMMEDIATE),
                VOp("*", 2, (0, 1), 2),
                VStore((mem("B", 0), mem("B", 1)), 2, StoreMode.CONTIG_ALIGNED),
            ]
        )
        assert list(memory.arrays["B"][0:2]) == [20.0, 60.0]
        assert report.counts["vector_op"] == 1

    def test_shuffle_permutes_lanes(self):
        report, memory = run_instructions(
            [
                VPack(0, (ImmRef(1.0), ImmRef(2.0)), PackMode.IMMEDIATE),
                VShuffle(1, 0, (1, 0)),
                VStore((mem("B", 0), mem("B", 1)), 1, StoreMode.CONTIG_ALIGNED),
            ]
        )
        assert list(memory.arrays["B"][0:2]) == [2.0, 1.0]
        assert report.counts["shuffle"] == 1

    def test_unary_vop(self):
        report, memory = run_instructions(
            [
                VPack(0, (ImmRef(9.0), ImmRef(16.0)), PackMode.IMMEDIATE),
                VOp("sqrt", 1, (0,), 2),
                VStore((mem("B", 0), mem("B", 1)), 1, StoreMode.CONTIG_ALIGNED),
            ]
        )
        assert list(memory.arrays["B"][0:2]) == [3.0, 4.0]


class TestVStore:
    def test_scalar_scatter_updates_env(self):
        report, memory = run_instructions(
            [
                VPack(0, (ImmRef(7.0), ImmRef(8.0)), PackMode.IMMEDIATE),
                VStore(
                    (ScalarRef("x"), ScalarRef("y")),
                    0,
                    StoreMode.SCALAR_SCATTER,
                ),
            ]
        )
        assert memory.scalars["x"] == 7.0
        assert memory.scalars["y"] == 8.0
        assert report.counts["lane_extract"] == 2
        assert report.counts["unpack_scalar_move"] == 2

    def test_memory_scatter_counts(self):
        report, memory = run_instructions(
            [
                VPack(0, (ImmRef(1.0), ImmRef(2.0)), PackMode.IMMEDIATE),
                VStore(
                    (mem("B", 0), mem("B", 9)), 0, StoreMode.SCATTER
                ),
            ]
        )
        assert memory.arrays["B"][9] == 2.0
        assert report.counts["unpack_mem_store"] == 2

    def test_unaligned_costs_more_than_aligned(self):
        aligned, _ = run_instructions(
            [
                VPack(0, (ImmRef(1.0), ImmRef(2.0)), PackMode.IMMEDIATE),
                VStore((mem("B", 0), mem("B", 1)), 0, StoreMode.CONTIG_ALIGNED),
            ]
        )
        unaligned, _ = run_instructions(
            [
                VPack(0, (ImmRef(1.0), ImmRef(2.0)), PackMode.IMMEDIATE),
                VStore(
                    (mem("B", 1), mem("B", 2)),
                    0,
                    StoreMode.CONTIG_UNALIGNED,
                ),
            ]
        )
        assert unaligned.cycles > aligned.cycles
