"""The set-associative LRU cache model."""

import pytest

from repro.vm import Cache, CacheConfig


def small_cache(ways=2, sets=4, line=64):
    return Cache(
        CacheConfig(
            size_bytes=ways * sets * line,
            line_bytes=line,
            ways=ways,
            miss_penalty=10.0,
        )
    )


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0, 8) == 1
        assert cache.access(0, 8) == 0
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_different_offset_hits(self):
        cache = small_cache()
        cache.access(0, 8)
        assert cache.access(32, 8) == 0

    def test_straddling_access_touches_two_lines(self):
        cache = small_cache()
        assert cache.access(60, 8) == 2

    def test_wide_access_counts_all_lines(self):
        cache = small_cache()
        assert cache.access(0, 256) == 4


class TestReplacement:
    def test_lru_eviction_within_set(self):
        cache = small_cache(ways=2, sets=1, line=64)
        cache.access(0, 1)      # line 0
        cache.access(64, 1)     # line 1
        cache.access(128, 1)    # line 2 evicts line 0
        assert cache.access(64, 1) == 0   # line 1 still resident
        assert cache.access(0, 1) == 1    # line 0 was evicted

    def test_touch_refreshes_lru_position(self):
        cache = small_cache(ways=2, sets=1, line=64)
        cache.access(0, 1)
        cache.access(64, 1)
        cache.access(0, 1)      # refresh line 0
        cache.access(128, 1)    # evicts line 1, not line 0
        assert cache.access(0, 1) == 0
        assert cache.access(64, 1) == 1

    def test_sets_are_independent(self):
        cache = small_cache(ways=1, sets=2, line=64)
        cache.access(0, 1)      # set 0
        cache.access(64, 1)     # set 1
        assert cache.access(0, 1) == 0
        assert cache.access(64, 1) == 0


class TestConfig:
    def test_sets_computed_from_geometry(self):
        config = CacheConfig(32 * 1024, 64, 8, 12.0)
        assert config.sets == 64

    def test_invalid_geometry_rejected(self):
        config = CacheConfig(64, 64, 8, 12.0)
        with pytest.raises(ValueError):
            _ = config.sets

    def test_flush_and_reset(self):
        cache = small_cache()
        cache.access(0, 8)
        cache.flush()
        cache.reset_stats()
        assert cache.access(0, 8) == 1
        assert cache.misses == 1


class TestEvictionOrder:
    """The ordered-dict LRU keeps the precise eviction sequence under
    associativity conflicts — pinned via the ``lines()`` inspection
    hook."""

    def test_lines_reports_lru_order(self):
        cache = small_cache(ways=4, sets=1, line=64)
        for line in (3, 1, 4, 1, 5):
            cache.touch_line(line)
        # Oldest-first: 3, 4, 1, 5 (line 1 refreshed by its second touch).
        assert cache.lines() == [[3, 4, 1, 5]]

    def test_conflict_evicts_in_recency_order(self):
        cache = small_cache(ways=2, sets=2, line=64)
        # Set 0 holds even lines, set 1 odd lines.
        for line in (0, 2, 1, 3, 4):   # 4 conflicts in set 0, evicts 0
            cache.touch_line(line)
        assert cache.lines() == [[2, 4], [1, 3]]
        assert not cache.touch_line(0)   # line 0 gone
        assert cache.lines()[0] == [4, 0]  # ...and 2 was evicted for it

    def test_repeated_conflict_cycles_through_ways(self):
        cache = small_cache(ways=2, sets=1, line=64)
        order = []
        for line in (0, 1, 2, 0, 1, 2):
            cache.touch_line(line)
            order.append(cache.lines()[0])
        # Classic thrash: every access past the first two misses and
        # evicts the oldest of the two residents.
        assert cache.hits == 0
        assert cache.misses == 6
        assert order[-1] == [1, 2]


class TestFlushVsResetStats:
    def test_flush_keeps_counters_drops_contents(self):
        cache = small_cache()
        cache.access(0, 8)
        cache.access(0, 8)
        assert (cache.hits, cache.misses) == (1, 1)
        cache.flush()
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.lines() == [[] for _ in range(cache.config.sets)]
        assert cache.access(0, 8) == 1   # cold again

    def test_reset_stats_keeps_contents_drops_counters(self):
        cache = small_cache()
        cache.access(0, 8)
        cache.reset_stats()
        assert (cache.hits, cache.misses) == (0, 0)
        assert cache.lines()[0] == [0]
        assert cache.access(0, 8) == 0   # still resident
        assert (cache.hits, cache.misses) == (1, 0)


class TestReplayLines:
    """``replay_lines`` is the batched engine's bulk entry point; it must
    be observationally identical to calling ``touch_line`` per element."""

    def _random_stream(self, seed, length=400, lines=24):
        import random

        rng = random.Random(seed)
        stream = []
        while len(stream) < length:
            line = rng.randrange(lines)
            # Inject streaks so the consecutive-duplicate fast path runs.
            stream.extend([line] * rng.randint(1, 4))
        return stream[:length]

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_touch_line_call_by_call(self, seed):
        stream = self._random_stream(seed)
        bulk = small_cache(ways=2, sets=4)
        unit = small_cache(ways=2, sets=4)
        mask = bulk.replay_lines(stream)
        expected = [unit.touch_line(line) for line in stream]
        assert mask.tolist() == expected
        assert (bulk.hits, bulk.misses) == (unit.hits, unit.misses)
        assert bulk.lines() == unit.lines()

    def test_accepts_numpy_arrays(self):
        import numpy as np

        cache = small_cache(ways=2, sets=1)
        mask = cache.replay_lines(np.array([0, 0, 1, 2, 0], dtype=np.int64))
        assert mask.tolist() == [False, True, False, False, False]
        assert (cache.hits, cache.misses) == (1, 4)

    def test_empty_stream(self):
        cache = small_cache()
        assert cache.replay_lines([]).tolist() == []
        assert (cache.hits, cache.misses) == (0, 0)
