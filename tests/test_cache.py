"""The set-associative LRU cache model."""

import pytest

from repro.vm import Cache, CacheConfig


def small_cache(ways=2, sets=4, line=64):
    return Cache(
        CacheConfig(
            size_bytes=ways * sets * line,
            line_bytes=line,
            ways=ways,
            miss_penalty=10.0,
        )
    )


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0, 8) == 1
        assert cache.access(0, 8) == 0
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_different_offset_hits(self):
        cache = small_cache()
        cache.access(0, 8)
        assert cache.access(32, 8) == 0

    def test_straddling_access_touches_two_lines(self):
        cache = small_cache()
        assert cache.access(60, 8) == 2

    def test_wide_access_counts_all_lines(self):
        cache = small_cache()
        assert cache.access(0, 256) == 4


class TestReplacement:
    def test_lru_eviction_within_set(self):
        cache = small_cache(ways=2, sets=1, line=64)
        cache.access(0, 1)      # line 0
        cache.access(64, 1)     # line 1
        cache.access(128, 1)    # line 2 evicts line 0
        assert cache.access(64, 1) == 0   # line 1 still resident
        assert cache.access(0, 1) == 1    # line 0 was evicted

    def test_touch_refreshes_lru_position(self):
        cache = small_cache(ways=2, sets=1, line=64)
        cache.access(0, 1)
        cache.access(64, 1)
        cache.access(0, 1)      # refresh line 0
        cache.access(128, 1)    # evicts line 1, not line 0
        assert cache.access(0, 1) == 0
        assert cache.access(64, 1) == 1

    def test_sets_are_independent(self):
        cache = small_cache(ways=1, sets=2, line=64)
        cache.access(0, 1)      # set 0
        cache.access(64, 1)     # set 1
        assert cache.access(0, 1) == 0
        assert cache.access(64, 1) == 0


class TestConfig:
    def test_sets_computed_from_geometry(self):
        config = CacheConfig(32 * 1024, 64, 8, 12.0)
        assert config.sets == 64

    def test_invalid_geometry_rejected(self):
        config = CacheConfig(64, 64, 8, 12.0)
        with pytest.raises(ValueError):
            _ = config.sets

    def test_flush_and_reset(self):
        cache = small_cache()
        cache.access(0, 8)
        cache.flush()
        cache.reset_stats()
        assert cache.access(0, 8) == 1
        assert cache.misses == 1
