"""Shared test configuration.

The pipeline verifier (``repro.verify``) is always on under the test
suite: every compile in every test runs the ir/schedule/plan invariant
checks unless a test explicitly opts out with
``CompilerOptions(checks="none")``.
"""

import os

os.environ.setdefault("REPRO_CHECKS", "all")
