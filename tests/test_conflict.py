"""The variable pack conflicting graph in isolation."""

import pytest

from repro.analysis import DependenceGraph
from repro.ir import parse_block
from repro.slp import GroupNode, VariablePackGraph, find_candidates

DECLS = "float A[256]; float w, x, y, z, u, v;"


def build_vp(src, datapath=64):
    block = parse_block(src, DECLS)
    deps = DependenceGraph(block)
    units = [GroupNode.of_statement(s) for s in block]
    candidates = find_candidates(units, deps, datapath)
    return VariablePackGraph(candidates, deps), candidates, deps


class TestConstruction:
    def test_one_node_per_position(self):
        vp, candidates, _ = build_vp("x = w + u; y = z + v;")
        assert len(candidates) == 1
        # positions: target, leaf0, leaf1.
        assert len(vp.nodes_of_candidate(0)) == 3
        assert len(vp.nodes) == 3
        assert vp.edge_count == 0

    def test_edges_between_conflicting_candidates(self):
        # {S0,S1} and {S0,S2} share S0.
        vp, candidates, _ = build_vp("x = w + u; y = z + v; z = w + v;")
        conflicts = [
            (i, j)
            for i in range(len(candidates))
            for j in range(i + 1, len(candidates))
            if vp.candidates_conflict(i, j)
        ]
        assert conflicts
        assert vp.edge_count > 0

    def test_dependence_cycle_conflicts(self):
        # {S0,S3} with {S1,S2} forms a cycle at group level.
        vp, candidates, deps = build_vp(
            "x = w + u;"
            "y = x + u;"
            "z = v + u;"
            "v = z + x;"
        )
        pairs = {tuple(sorted(c.sid_set)): i for i, c in enumerate(candidates)}
        if (0, 3) in pairs and (1, 2) in pairs:
            assert vp.candidates_conflict(pairs[(0, 3)], pairs[(1, 2)])


class TestQueries:
    def test_nodes_with_data_counts_multiplicity(self):
        # Two non-conflicting candidates both produce pack {u, v} at a
        # source position -> two nodes with the same data.
        vp, candidates, _ = build_vp(
            "x = u * 2.0; y = v * 2.0;"
            "w = u * 3.0; z = v * 3.0;"
        )
        from repro.slp.model import pack_data

        uv = pack_data([("var", "u"), ("var", "v")])
        matching = vp.nodes_with_data(uv)
        assert len(matching) >= 2

    def test_remove_candidate_clears_buckets(self):
        vp, candidates, _ = build_vp("x = w + u; y = z + v;")
        data = vp.nodes_of_candidate(0)[0].data
        assert vp.nodes_with_data(data)
        vp.remove_candidate(0)
        assert not vp.nodes_with_data(data)
        assert vp.edge_count == 0

    def test_coexistence_count(self):
        vp, candidates, _ = build_vp(
            "x = u * 2.0; y = v * 2.0;"
            "w = u * 3.0; z = v * 3.0;"
        )
        from repro.slp.model import pack_data

        uv = pack_data([("var", "u"), ("var", "v")])
        assert vp.coexistence_count(uv) >= 2


class TestPackNodeSemantics:
    def test_identity_hash(self):
        from repro.slp.conflict import PackNode
        from repro.slp.model import pack_data

        data = pack_data([("var", "u"), ("var", "v")])
        a = PackNode(data, 0, 0)
        b = PackNode(data, 0, 0)
        assert a != b  # identity, not structure
        assert len({a, b}) == 2

    def test_sort_key_is_stable(self):
        from repro.slp.conflict import PackNode
        from repro.slp.model import pack_data

        data = pack_data([("var", "u"), ("var", "v")])
        a = PackNode(data, 0, 1)
        b = PackNode(data, 0, 2)
        assert sorted([b, a], key=lambda n: n.sort_key()) == [a, b]
