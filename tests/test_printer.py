"""The C-like pretty printer."""

from repro.ir import (
    FLOAT32,
    FLOAT64,
    ProgramBuilder,
    format_block,
    format_loop,
    format_program,
    parse_program,
)


def sample_program():
    b = ProgramBuilder("sample")
    A = b.array("A", (64,), FLOAT32)
    M = b.array("M", (4, 8), FLOAT64)
    s = b.scalar("s", FLOAT32)
    b.assign(s, 1.5)
    with b.loop("i", 0, 32, 2) as i:
        b.assign(A[i], A[i + 1] * s)
    return b.build()


class TestFormatting:
    def test_declarations_rendered(self):
        text = format_program(sample_program())
        assert "float A[64];" in text
        assert "double M[4][8];" in text
        assert "float s;" in text

    def test_loop_header_syntax(self):
        text = format_program(sample_program())
        assert "for (i = 0; i < 32; i += 2) {" in text

    def test_statement_indentation(self):
        program = sample_program()
        loop = next(iter(program.loops()))
        text = format_loop(loop, indent=1)
        assert text.startswith("    for (")
        assert "\n        A[i] =" in text

    def test_block_without_indent(self):
        program = sample_program()
        blocks = [b for b in program.body if not hasattr(b, "index")]
        text = format_block(blocks[0])
        assert text == "s = 1.5;"


class TestRoundTrip:
    def test_full_round_trip(self):
        original = format_program(sample_program())
        reparsed = format_program(parse_program(original))
        assert reparsed == original

    def test_nested_loop_round_trip(self):
        src = format_program(
            parse_program(
                """
                double M[8][8];
                for (i = 0; i < 8; i += 1) {
                    for (j = 0; j < 8; j += 1) {
                        M[i][j] = M[i][j] + 1.0;
                    }
                }
                """
            )
        )
        assert format_program(parse_program(src)) == src

    def test_min_max_round_trip(self):
        src = format_program(
            parse_program(
                "float a, b, c; a = min(b, c) + max(b, 2.0);"
            )
        )
        assert "min(b, c)" in src
        assert format_program(parse_program(src)) == src
