"""The 16-kernel workload suite (Table 3) and the evaluation harness."""

import pytest

from repro import Variant, compile_program, intel_dunnington, simulate
from repro.bench import (
    ALL_KERNELS,
    BRANCHY_KERNELS,
    KERNELS,
    NAS_KERNELS,
    SPEC_KERNELS,
    build_kernel,
    run_kernel,
    run_multicore,
)
from repro.ir import Program


class TestRegistry:
    def test_kernel_counts(self):
        assert len(SPEC_KERNELS) == 10
        assert len(NAS_KERNELS) == 6
        assert len(BRANCHY_KERNELS) == 4
        assert len(ALL_KERNELS) == 20

    def test_paper_benchmark_names(self):
        expected = {
            "cactusADM", "soplex", "lbm", "milc", "povray", "gromacs",
            "calculix", "dealII", "wrf", "namd",
            "ua", "ft", "bt", "sp", "mg", "cg",
            "clamp_stencil", "piecewise_poly", "masked_sum", "absdiff",
        }
        assert set(KERNELS) == expected

    def test_branchy_kernels_carry_regions(self):
        from repro.transform import has_regions

        for kernel in BRANCHY_KERNELS:
            assert has_regions(kernel.build(16)), kernel.name

    def test_descriptions_nonempty(self):
        assert all(k.description for k in ALL_KERNELS)


class TestBuilders:
    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
    def test_builds_a_program(self, kernel):
        program = kernel.build(16)
        assert isinstance(program, Program)
        assert list(program.loops())

    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
    def test_size_parameter_scales_trip_count(self, kernel):
        small = next(iter(kernel.build(8).loops()))
        large = next(iter(kernel.build(32).loops()))
        assert large.trip_count > small.trip_count

    def test_build_kernel_by_name(self):
        assert isinstance(build_kernel("milc", 8), Program)


class TestKernelExecution:
    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
    def test_all_variants_preserve_semantics(self, kernel):
        result = run_kernel(kernel, intel_dunnington(), n=16)
        assert result.semantics_preserved()

    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
    def test_figure16_ordering_holds(self, kernel):
        """Native <= SLP <= Global <= Global+Layout, none negative."""
        result = run_kernel(kernel, intel_dunnington(), n=32)
        native = result.time_reduction(Variant.NATIVE)
        slp = result.time_reduction(Variant.SLP)
        glob = result.time_reduction(Variant.GLOBAL)
        layout = result.time_reduction(Variant.GLOBAL_LAYOUT)
        eps = 1e-9
        assert native >= -eps
        assert slp >= native - eps
        assert glob >= slp - eps
        assert layout >= glob - eps


class TestMulticore:
    def test_point_reduction_positive_for_vector_win(self):
        point = run_multicore(
            KERNELS["ft"], intel_dunnington(), Variant.GLOBAL, cores=4,
            n=128,
        )
        assert point.cores == 4
        assert 0.0 <= point.reduction < 1.0

    def test_sync_overhead_grows_with_cores(self):
        from repro.vm import parallel_cycles

        machine = intel_dunnington()
        assert parallel_cycles(1000.0, 4, machine) > parallel_cycles(
            1000.0, 1, machine
        )

    def test_invalid_core_count_rejected(self):
        from repro.vm import parallel_cycles

        with pytest.raises(ValueError):
            parallel_cycles(1000.0, 0, intel_dunnington())
