"""Memory access vectors (Equation 1) and alignment/contiguity analysis."""

import numpy as np
import pytest

from repro.analysis import (
    access_vector,
    alignment_of,
    flat_affine,
    is_aligned,
    loop_access_vectors,
    pack_contiguity,
)
from repro.ir import Affine, ArrayDecl, ArrayRef, FLOAT32, parse_program


def ref1(array, **kw):
    const = kw.pop("const", 0)
    return ArrayRef(array, (Affine.of(const, **kw),), FLOAT32)


class TestAccessVectors:
    def test_1d_access_vector(self):
        av = access_vector(ref1("A", i=4, const=3), ["i"])
        assert av.matrix == ((4,),)
        assert av.offset == (3,)
        assert av.evaluate([2]) == (11,)

    def test_2d_access_vector(self):
        ref = ArrayRef(
            "M",
            (Affine.of(1, i=2), Affine.of(0, j=3)),
            FLOAT32,
        )
        av = access_vector(ref, ["i", "j"])
        assert np.array_equal(av.Q, np.array([[2, 0], [0, 3]]))
        assert av.evaluate([1, 2]) == (3, 6)
        assert av.innermost_column() == (0, 3)

    def test_rowmajor_innermost_stride(self):
        ref = ArrayRef(
            "M", (Affine.of(0, i=1), Affine.of(0, j=2)), FLOAT32
        )
        av = access_vector(ref, ["i", "j"])
        assert av.innermost_stride_rowmajor((8, 16)) == 2

    def test_unknown_index_rejected(self):
        with pytest.raises(ValueError):
            access_vector(ref1("A", k=1), ["i"])

    def test_loop_access_vectors(self):
        program = parse_program(
            """
            float M[8][16];
            for (i = 0; i < 8; i += 1) {
                for (j = 0; j < 16; j += 1) {
                    M[i][j] = M[i][j] * 2.0;
                }
            }
            """
        )
        loop = next(iter(program.loops()))
        vectors = loop_access_vectors(loop)
        assert len(vectors) == 2  # target + source
        assert all(av.indices == ("i", "j") for _, av in vectors)


class TestFlattening:
    def test_flat_affine_rowmajor(self):
        decl = ArrayDecl("M", (8, 16), FLOAT32)
        ref = ArrayRef(
            "M", (Affine.of(0, i=1), Affine.of(3, j=1)), FLOAT32
        )
        flat = flat_affine(ref, decl)
        assert flat.evaluate({"i": 2, "j": 5}) == 2 * 16 + 8

    def test_rank_mismatch_rejected(self):
        decl = ArrayDecl("M", (8, 16), FLOAT32)
        with pytest.raises(ValueError):
            flat_affine(ref1("M", i=1), decl)


class TestContiguity:
    DECL = ArrayDecl("A", (64,), FLOAT32)

    def decl_of(self, name):
        return self.DECL

    def test_consecutive_refs_contiguous(self):
        refs = [ref1("A", i=4), ref1("A", i=4, const=1)]
        base = pack_contiguity(refs, self.decl_of, 2)
        assert base is not None
        assert base == Affine.of(0, i=4)

    def test_order_matters(self):
        refs = [ref1("A", i=4, const=1), ref1("A", i=4)]
        assert pack_contiguity(refs, self.decl_of, 2) is None

    def test_stride_two_not_contiguous(self):
        refs = [ref1("A", i=4), ref1("A", i=4, const=2)]
        assert pack_contiguity(refs, self.decl_of, 2) is None

    def test_mixed_arrays_not_contiguous(self):
        other = ArrayDecl("B", (64,), FLOAT32)
        refs = [ref1("A", i=1), ref1("B", i=1, const=1)]
        decl_of = lambda n: self.DECL if n == "A" else other  # noqa: E731
        assert pack_contiguity(refs, decl_of, 2) is None


class TestAlignment:
    def test_aligned_when_all_terms_divide(self):
        assert is_aligned(Affine.of(4, i=8), 4)
        assert is_aligned(Affine.of(0, i=4), 4)

    def test_unaligned_constant(self):
        assert not is_aligned(Affine.of(2, i=4), 4)

    def test_unknown_alignment_with_odd_coeff(self):
        assert not is_aligned(Affine.of(0, i=3), 4)
        assert alignment_of(Affine.of(0, i=3), 4) is None

    def test_alignment_residue(self):
        assert alignment_of(Affine.of(6, i=4), 4) == 2
        assert alignment_of(Affine.of(8, i=4), 4) == 0
