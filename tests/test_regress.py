"""Tests for the perf-regression gate (``repro.bench.regress``) and the
shared benchmark recording helper (``repro.bench.record``)."""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro import Variant
from repro.bench.record import (
    BENCH_SCHEMA,
    fingerprints_match,
    machine_fingerprint,
    read_bench_json,
    write_bench_json,
)
from repro.bench.regress import (
    check_suite,
    render_verdict,
    suite_metrics,
    write_suite_baseline,
)


def _fake_results(cycle_scale: float = 1.0, compile_seconds: float = 0.01):
    """A minimal stand-in for a ``run_suite`` result map: two kernels,
    two variants, deterministic numbers scaled by ``cycle_scale``."""

    def run(cycles):
        return SimpleNamespace(
            report=SimpleNamespace(
                cycles=cycles * cycle_scale,
                dynamic_instructions=int(cycles * 2),
                pack_unpack_ops=4,
            ),
            stats=SimpleNamespace(compile_seconds=compile_seconds),
        )

    return {
        "alpha": SimpleNamespace(
            runs={Variant.SCALAR: run(1000.0), Variant.GLOBAL: run(600.0)}
        ),
        "beta": SimpleNamespace(
            runs={Variant.SCALAR: run(800.0), Variant.GLOBAL: run(500.0)}
        ),
    }


# -- record helper -------------------------------------------------------------


def test_write_bench_json_stamps_meta(tmp_path):
    path = tmp_path / "BENCH_x.json"
    stamped = write_bench_json(path, {"value": 1})
    on_disk = json.loads(path.read_text())
    assert on_disk == stamped
    meta = on_disk["bench_meta"]
    assert meta["schema"] == BENCH_SCHEMA
    assert meta["fingerprint"]["id"]
    assert on_disk["value"] == 1


def test_read_bench_json_rejects_unversioned_artifacts(tmp_path):
    path = tmp_path / "old.json"
    path.write_text(json.dumps({"value": 1}))
    with pytest.raises(ValueError, match="bench_meta"):
        read_bench_json(path)


def test_machine_fingerprint_is_stable_here():
    assert machine_fingerprint() == machine_fingerprint()
    assert fingerprints_match(machine_fingerprint(), machine_fingerprint())
    assert not fingerprints_match(machine_fingerprint(), {"id": "other"})
    assert not fingerprints_match(machine_fingerprint(), {})


# -- metric extraction ---------------------------------------------------------


def test_suite_metrics_planes():
    metrics = suite_metrics(_fake_results())
    deterministic = metrics["deterministic"]
    assert deterministic["alpha.scalar.cycles"] == 1000.0
    assert deterministic["alpha.global.cycles"] == 600.0
    assert deterministic["beta.global.dynamic_instructions"] == 1000.0
    assert deterministic["alpha.scalar.pack_unpack_ops"] == 4.0
    assert metrics["wallclock"]["compile_seconds_total"] == pytest.approx(
        0.04
    )


# -- the gate ------------------------------------------------------------------


@pytest.fixture
def baseline(tmp_path):
    path = tmp_path / "BENCH_suite.json"
    write_suite_baseline(path, _fake_results(), machine="intel", n=64)
    return path


def test_identical_run_passes(baseline):
    verdict = check_suite(baseline, _fake_results())
    assert verdict["status"] == "ok"
    assert verdict["counts"]["fail"] == 0
    assert verdict["fingerprint_match"] is True
    assert verdict["counts"]["skipped"] == 0


def test_injected_2x_slowdown_fails(baseline):
    verdict = check_suite(baseline, _fake_results(), inject_slowdown=2.0)
    assert verdict["status"] == "fail"
    failed = [c for c in verdict["checks"] if c["status"] == "fail"]
    assert failed
    assert all(c["metric"].endswith(".cycles") for c in failed)
    assert all(c["ratio"] == 2.0 for c in failed)
    # The rendering names every failure.
    rendered = render_verdict(verdict)
    assert "fail" in rendered
    assert "alpha.scalar.cycles" in rendered


def test_real_cycle_drift_beyond_band_fails(baseline):
    verdict = check_suite(baseline, _fake_results(cycle_scale=1.05))
    assert verdict["status"] == "fail"


def test_drift_inside_band_passes(baseline):
    verdict = check_suite(baseline, _fake_results(cycle_scale=1.005))
    assert verdict["status"] == "ok"


def test_cross_machine_skips_wallclock_not_deterministic(baseline):
    """A baseline recorded elsewhere still gates cycles; wall-clock
    comparisons become ``skipped`` — never spurious failures."""
    data = json.loads(baseline.read_text())
    data["bench_meta"]["fingerprint"]["id"] = "fee1dead0000"
    baseline.write_text(json.dumps(data))

    # Wall-clock wildly different from baseline: must not matter.
    verdict = check_suite(baseline, _fake_results(compile_seconds=50.0))
    assert verdict["status"] == "ok"
    assert verdict["fingerprint_match"] is False
    by_name = {c["metric"]: c for c in verdict["checks"]}
    assert by_name["compile_seconds_total"]["status"] == "skipped"
    assert "fingerprint mismatch" in by_name["compile_seconds_total"]["reason"]
    assert by_name["alpha.scalar.cycles"]["status"] == "ok"

    # ... and deterministic regressions still fail cross-machine.
    verdict = check_suite(
        baseline,
        _fake_results(compile_seconds=50.0),
        inject_slowdown=2.0,
    )
    assert verdict["status"] == "fail"


def test_same_machine_wallclock_band(baseline):
    inside = check_suite(baseline, _fake_results(compile_seconds=0.012))
    assert inside["status"] == "ok"
    outside = check_suite(baseline, _fake_results(compile_seconds=0.5))
    by_name = {c["metric"]: c for c in outside["checks"]}
    assert by_name["compile_seconds_total"]["status"] == "fail"


def test_missing_current_metric_fails(baseline):
    results = _fake_results()
    del results["beta"]
    verdict = check_suite(baseline, results)
    assert verdict["status"] == "fail"
    missing = [
        c
        for c in verdict["checks"]
        if c["status"] == "fail" and c["reason"].startswith("metric missing")
    ]
    assert missing


def test_new_metric_is_informational(baseline):
    """Added coverage must not fail against an older baseline."""
    results = _fake_results()
    results["gamma"] = results["alpha"]
    verdict = check_suite(baseline, results)
    assert verdict["status"] == "ok"
    by_name = {c["metric"]: c for c in verdict["checks"]}
    assert by_name["gamma.scalar.cycles"]["status"] == "skipped"
    assert "not in baseline" in by_name["gamma.scalar.cycles"]["reason"]


def test_config_mismatch_is_an_error_not_a_pass(baseline):
    with pytest.raises(ValueError, match="recorded with"):
        check_suite(
            baseline, _fake_results(), config={"machine": "amd", "n": 64}
        )
    # Matching config is fine.
    verdict = check_suite(
        baseline, _fake_results(), config={"machine": "intel", "n": 64}
    )
    assert verdict["status"] == "ok"


def test_committed_suite_baseline_is_versioned_and_consistent():
    """The repo's own committed baseline must load under the schema and
    carry both metric planes with the full kernel sweep."""
    import pathlib

    path = (
        pathlib.Path(__file__).parent.parent
        / "benchmarks" / "results" / "BENCH_suite.json"
    )
    data = read_bench_json(path)
    assert data["config"]["machine"] == "intel"
    deterministic = data["metrics"]["deterministic"]
    assert len(deterministic) >= 16 * 5  # 16 kernels x 5 variants minimum
    assert data["metrics"]["wallclock"]["compile_seconds_total"] > 0
