"""Tests for admission control: tenant token buckets, priority lanes,
and their wiring into the live server (429s with honest Retry-After,
validation of the new wire fields).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import FLOAT32, ProgramBuilder, ServiceError
from repro.errors import ServiceBusyError
from repro.ir.printer import format_program
from repro.service.admission import (
    AdmissionController,
    TokenBucket,
    validate_priority,
    validate_tenant,
)
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread
from repro.telemetry.metrics import MetricsRegistry


def unique_source(tag: int) -> str:
    builder = ProgramBuilder(f"admit{tag}")
    X = builder.array("X", (16,), FLOAT32)
    Y = builder.array("Y", (16,), FLOAT32)
    with builder.loop("i", 0, 16) as i:
        builder.assign(Y[i], X[i] * (tag + 2) + Y[i])
    return format_program(builder.build())


# -- token buckets -------------------------------------------------------------


def test_token_bucket_burst_then_throttle():
    bucket = TokenBucket(rate=2.0, burst=3.0, now=0.0)
    assert bucket.take(0.0) == 0.0
    assert bucket.take(0.0) == 0.0
    assert bucket.take(0.0) == 0.0  # burst exhausted
    wait = bucket.take(0.0)
    assert wait == pytest.approx(0.5)  # 1 token at 2/s
    # After the advertised wait, exactly one token exists.
    assert bucket.take(0.5) == 0.0
    assert bucket.take(0.5) > 0.0


def test_token_bucket_refills_to_burst_cap():
    bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
    bucket.take(0.0)
    bucket.take(0.0)
    # A long idle period refills to the cap, not beyond.
    assert bucket.take(100.0) == 0.0
    assert bucket.take(100.0) == 0.0
    assert bucket.take(100.0) > 0.0


def test_zero_rate_bucket_never_refills():
    bucket = TokenBucket(rate=0.0, burst=1.0, now=0.0)
    assert bucket.take(0.0) == 0.0
    assert bucket.take(1000.0) == 60.0  # the sentinel backoff


# -- the controller ------------------------------------------------------------


def test_lane_thresholds_nest():
    ac = AdmissionController(queue_limit=32)
    assert ac.lane_limit("high") == 32
    assert ac.lane_limit("normal") == 24
    assert ac.lane_limit("bulk") == 16
    # bulk saturates first, then normal, then high.
    assert ac.check("t", "bulk", 16).reason == "queue-full"
    assert ac.check("t", "normal", 16).admitted
    assert ac.check("t", "normal", 24).reason == "queue-full"
    assert ac.check("t", "high", 24).admitted
    assert ac.check("t", "high", 32).reason == "queue-full"


def test_tenant_isolation():
    """One tenant exhausting its bucket must not affect another."""
    now = {"t": 0.0}
    ac = AdmissionController(
        queue_limit=100, tenant_rate=1.0, tenant_burst=2.0,
        metrics=MetricsRegistry(), clock=lambda: now["t"],
    )
    assert ac.check("alice", "normal", 0).admitted
    assert ac.check("alice", "normal", 0).admitted
    denied = ac.check("alice", "normal", 0)
    assert denied.reason == "tenant-limit"
    assert denied.retry_after > 0.0
    assert ac.check("bob", "normal", 0).admitted  # bob is untouched
    now["t"] = 5.0
    assert ac.check("alice", "normal", 0).admitted  # refilled


def test_follower_charges_tenant_but_skips_lane():
    """Coalescing followers bypass the queue threshold (no worker
    cost) but still consume tenant tokens."""
    ac = AdmissionController(
        queue_limit=4, tenant_rate=1.0, tenant_burst=1.0,
        metrics=MetricsRegistry(), clock=lambda: 0.0,
    )
    # Queue far beyond every lane limit: follower still admitted.
    assert ac.check("t1", "normal", 99, follower=True).admitted
    # ...but its token is gone: the next follower is rate-limited.
    assert ac.check("t1", "normal", 99, follower=True).reason == (
        "tenant-limit"
    )


def test_tenant_map_is_bounded():
    from repro.service.admission import MAX_TENANTS

    ac = AdmissionController(
        queue_limit=4, tenant_rate=100.0, metrics=MetricsRegistry(),
        clock=lambda: 0.0,
    )
    for i in range(MAX_TENANTS + 50):
        ac.check(f"tenant-{i}", "normal", 0)
    assert ac.stats()["tenants_tracked"] <= MAX_TENANTS


def test_wire_field_validation():
    assert validate_tenant(None) == (True, "default")
    assert validate_tenant("team.a-1") == (True, "team.a-1")
    assert not validate_tenant("bad tenant!")[0]
    assert not validate_tenant("x" * 65)[0]
    assert not validate_tenant(42)[0]
    assert validate_priority(None) == (True, "normal")
    assert validate_priority("bulk") == (True, "bulk")
    assert not validate_priority("urgent")[0]


# -- through the live server ---------------------------------------------------


@pytest.fixture(scope="module")
def limited_server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("admission-store")
    with ServiceThread(
        shards=1,
        cache_dir=str(cache_dir),
        test_hooks=True,
        tenant_rate=2.0,
        tenant_burst=2.0,
    ) as thread:
        yield thread


def test_tenant_rate_limit_end_to_end(limited_server):
    client = ServiceClient(limited_server.url, timeout=60.0)
    source = unique_source(1)
    seen_429 = None
    for attempt in range(6):
        try:
            client.compile(source=source, tenant="hammer")
        except ServiceBusyError as busy:
            seen_429 = busy
            break
    assert seen_429 is not None, "tenant never hit its rate limit"
    assert seen_429.retry_after > 0.0
    # A different tenant is admitted immediately.
    out = client.compile(source=source, tenant="other")
    assert out.result is not None


def test_invalid_tenant_and_priority_are_400(limited_server):
    client = ServiceClient(limited_server.url, timeout=60.0)
    with pytest.raises(ServiceError):
        client.compile(source=unique_source(2), tenant="bad tenant!")
    with pytest.raises(ServiceError):
        client.compile(source=unique_source(2), priority="urgent")


def test_client_retries_honor_retry_after(limited_server):
    """--wait semantics: with retries, the client sleeps the server's
    backoff (patched here) and eventually succeeds."""
    client = ServiceClient(limited_server.url, timeout=60.0)
    sleeps = []

    def fake_sleep(seconds):
        sleeps.append(seconds)
        time.sleep(min(seconds, 1.0))

    client._sleep = fake_sleep
    source = unique_source(3)
    outcomes = []
    for _ in range(8):
        outcomes.append(
            client.compile(source=source, tenant="retrier", retries=5)
        )
    assert all(out.result is not None for out in outcomes)
    assert sleeps, "the retry path never slept"
    # Jittered backoff stays within [0.5, 1.5] x Retry-After, and the
    # advertised Retry-After for a 2/s bucket is at most ~0.5s.
    assert all(0.0 < s <= 1.5 for s in sleeps), sleeps


def test_retries_exhausted_reraises(limited_server):
    client = ServiceClient(limited_server.url, timeout=60.0)
    client._sleep = lambda _s: None  # no real waiting: bucket stays dry
    source = unique_source(4)
    with pytest.raises(ServiceBusyError):
        for _ in range(10):
            client.compile(source=source, tenant="dry", retries=2)


def test_admission_metrics_exposed(limited_server):
    client = ServiceClient(limited_server.url, timeout=60.0)
    metrics = client.metrics()
    admission = metrics["service"]["admission"]
    assert admission["tenant_rate"] == 2.0
    assert set(admission["lane_limits"]) == {"high", "normal", "bulk"}
    prom = client.metrics_prometheus()
    assert "repro_admission_total" in prom
    assert "repro_tenant_requests_total" in prom
