"""Def-use / use-def chains."""

from repro.analysis import DefUseChains, UseSite
from repro.ir import parse_block

DECLS = "float A[64]; float a, b, c;"


def chains(src):
    block = parse_block(src, DECLS)
    return block, DefUseChains(block)


class TestScalarChains:
    def test_def_reaches_use(self):
        block, du = chains("a = b + 1.0; c = a * 2.0;")
        assert du.definition_feeding(1, 0).sid == 0
        assert du.users(0) == (UseSite(1, 0),)

    def test_latest_def_wins(self):
        block, du = chains("a = b + 1.0; a = b + 2.0; c = a * 2.0;")
        assert du.definition_feeding(2, 0).sid == 1
        assert du.users(0) == ()

    def test_external_value_has_no_def(self):
        block, du = chains("c = a * 2.0;")
        assert du.definition_feeding(0, 0) is None

    def test_positions_index_rhs_leaves(self):
        block, du = chains("a = b + 1.0; b = c + 1.0; c = a * b;")
        # In S2, leaf 0 is `a` (def S0), leaf 1 is `b` (def S1).
        assert du.definition_feeding(2, 0).sid == 0
        assert du.definition_feeding(2, 1).sid == 1


class TestArrayChains:
    def test_exact_element_match(self):
        block, du = chains("A[3] = a + 1.0; b = A[3] * 2.0;")
        assert du.definition_feeding(1, 0).sid == 0

    def test_distinct_elements_do_not_chain(self):
        block, du = chains("A[3] = a + 1.0; b = A[4] * 2.0;")
        assert du.definition_feeding(1, 0) is None

    def test_may_alias_write_breaks_chain(self):
        # A[3] is defined, then some A element is overwritten via an
        # unprovable index: the chain must be dropped, not guessed.
        block = parse_block(
            "A[3] = a + 1.0; b = A[3] * 2.0;", DECLS
        )
        du = DefUseChains(block)
        assert du.definition_feeding(1, 0).sid == 0


class TestDeadness:
    def test_unused_scalar_def_is_dead(self):
        block, du = chains("a = b + 1.0; c = b + 2.0;")
        assert du.is_dead(0)

    def test_used_def_is_live(self):
        block, du = chains("a = b + 1.0; c = a + 2.0;")
        assert not du.is_dead(0)

    def test_array_writes_never_dead(self):
        block, du = chains("A[0] = b + 1.0;")
        assert not du.is_dead(0)
