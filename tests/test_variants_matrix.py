"""Cross-variant differential matrix on hand-written patterns.

Each pattern stresses one part of the pipeline; every variant must
preserve semantics and respect the quality ordering where defined.
"""

import pytest

from repro import (
    CompilerOptions,
    Variant,
    compile_program,
    intel_dunnington,
    amd_phenom_ii,
    simulate,
)
from repro.ir import parse_program

PATTERNS = {
    "contiguous-axpy": """
        double X[256]; double Y[256]; double a;
        for (i = 0; i < 128; i += 1) { Y[i] = a * X[i] + Y[i]; }
    """,
    "unaligned-stream": """
        double X[256]; double Y[256];
        for (i = 1; i < 125; i += 1) { Y[i] = X[i] * 2.0; }
    """,
    "strided-gather": """
        double F[1024]; double R[128];
        for (i = 0; i < 100; i += 1) { R[i] = F[7*i] / F[7*i + 1]; }
    """,
    "temp-chain": """
        double U[512]; double V[512];
        double t1, t2;
        for (i = 1; i < 200; i += 1) {
            t1 = U[i - 1] + U[i];
            t2 = U[i] + U[i + 1];
            V[i] = t2 - t1;
        }
    """,
    "splat-operand": """
        double X[256]; double Y[256]; double w;
        for (i = 0; i < 128; i += 1) { Y[i] = X[i] * w + w; }
    """,
    "two-type-mix": """
        float A[256]; float B[256];
        double P[128]; double Q[128];
        for (i = 0; i < 64; i += 1) { B[i] = A[i] * 2.0; }
        for (j = 0; j < 64; j += 1) { Q[j] = P[j] + 1.0; }
    """,
    "straight-line": """
        double A[16]; double x, y;
        x = A[0] * 2.0; y = A[1] * 2.0;
        A[2] = x + y; A[3] = x - y;
    """,
    "heavy-latency": """
        double X[256]; double Y[256];
        for (i = 0; i < 128; i += 1) {
            Y[i] = sqrt(X[i]) / (X[i] + 2.0);
        }
    """,
}


@pytest.mark.parametrize("name", sorted(PATTERNS))
@pytest.mark.parametrize("machine_factory", [intel_dunnington, amd_phenom_ii],
                         ids=["intel", "amd"])
def test_all_variants_preserve_semantics(name, machine_factory):
    machine = machine_factory()
    src = PATTERNS[name]
    base = None
    for variant in Variant:
        result = compile_program(parse_program(src), variant, machine)
        report, memory = simulate(result)
        if base is None:
            base = memory
        else:
            assert memory.state_equal(base), (name, variant.value)


@pytest.mark.parametrize("name", sorted(PATTERNS))
def test_quality_ordering(name):
    machine = intel_dunnington()
    src = PATTERNS[name]
    cycles = {}
    for variant in Variant:
        result = compile_program(parse_program(src), variant, machine)
        report, _ = simulate(result)
        cycles[variant] = report.cycles
    eps = 1e-9
    assert cycles[Variant.NATIVE] <= cycles[Variant.SCALAR] + eps
    assert cycles[Variant.SLP] <= cycles[Variant.NATIVE] + eps
    assert cycles[Variant.GLOBAL] <= cycles[Variant.SLP] + eps
    assert (
        cycles[Variant.GLOBAL_LAYOUT] <= cycles[Variant.GLOBAL] + eps
    )


def test_wider_datapath_faster_on_average():
    """Figure 18's premise holds in aggregate. Per-pattern regressions
    are possible — iterative pair-merging can fragment a mis-phased
    temp chain at high widths (the paper's algorithm shares this greedy
    failure mode) — but across the pattern set wider SIMD must win."""
    machine = intel_dunnington()
    totals = {128: 0.0, 512: 0.0}
    for src in PATTERNS.values():
        for width in totals:
            result = compile_program(
                parse_program(src),
                Variant.GLOBAL,
                machine,
                CompilerOptions(datapath_bits=width),
            )
            report, _ = simulate(result)
            totals[width] += report.cycles
    assert totals[512] < totals[128]
