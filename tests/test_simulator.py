"""The virtual SIMD machine: functional semantics and cost accounting."""

import math

import pytest

from repro import (
    CompilerOptions,
    Variant,
    compile_program,
    intel_dunnington,
    simulate,
)
from repro.ir import parse_program
from repro.vm import Memory, Simulator

SRC = """
float A[64]; float B[64];
float s;
for (i = 0; i < 16; i += 1) {
    s = A[i] * 2.0;
    B[i] = s + A[i];
}
"""


def run(variant, src=SRC, seed=0, **options):
    program = parse_program(src)
    result = compile_program(
        program, variant, intel_dunnington(), CompilerOptions(**options)
    )
    return simulate(result, seed=seed)


class TestFunctionalSemantics:
    def test_scalar_execution_matches_numpy(self):
        report, memory = run(Variant.SCALAR)
        reference = Memory(parse_program(SRC))
        expected = reference.arrays["A"][:16] * 2.0 + reference.arrays["A"][:16]
        assert list(memory.arrays["B"][:16]) == list(expected)

    def test_all_variants_agree_exactly(self):
        _, base = run(Variant.SCALAR)
        for variant in (
            Variant.NATIVE,
            Variant.SLP,
            Variant.GLOBAL,
            Variant.GLOBAL_LAYOUT,
        ):
            _, memory = run(variant)
            assert memory.state_equal(base), variant

    def test_division_and_sqrt(self):
        src = """
        double X[16]; double Y[16];
        for (i = 0; i < 8; i += 1) {
            Y[i] = sqrt(X[i]) / (X[i] + 1.0);
        }
        """
        _, base = run(Variant.SCALAR, src)
        _, vec = run(Variant.GLOBAL, src)
        assert vec.state_equal(base)

    def test_seed_controls_initial_state(self):
        _, m1 = run(Variant.SCALAR, seed=1)
        _, m2 = run(Variant.SCALAR, seed=2)
        assert not m1.state_equal(m2)

    def test_initial_state_independent_of_extra_declarations(self):
        small = parse_program("float A[16]; float x;")
        big = parse_program("float A[16]; float Z[99]; float x;")
        m_small = Memory(small)
        m_big = Memory(big)
        assert list(m_small.arrays["A"]) == list(m_big.arrays["A"])
        assert m_small.scalars["x"] == m_big.scalars["x"]


class TestCostAccounting:
    def test_scalar_counts(self):
        report, _ = run(Variant.SCALAR)
        # 16 iterations x (1 mem load + 1 scalar move + 1 op + 1 move)
        # for S0 and (1 move + 1 mem load + 1 op + 1 mem store) for S1.
        assert report.counts["scalar_op"] == 32
        assert report.counts["scalar_load"] == 32
        assert report.counts["scalar_store"] == 16

    def test_vector_variant_reduces_ops(self):
        scalar, _ = run(Variant.SCALAR)
        vector, _ = run(Variant.GLOBAL)
        assert vector.counts.get("vector_op", 0) > 0
        assert vector.counts.get("scalar_op", 0) < scalar.counts["scalar_op"]
        assert vector.cycles < scalar.cycles

    def test_cache_stats_populated(self):
        report, _ = run(Variant.SCALAR)
        assert report.cache_hits + report.cache_misses > 0
        assert report.cache_misses >= 2  # cold misses on A and B

    def test_cycles_include_miss_penalty(self):
        src = """
        double X[32768]; double Y[32768];
        for (i = 0; i < 32768; i += 1) {
            Y[i] = X[i] + 1.0;
        }
        """
        report, _ = run(Variant.SCALAR, src)
        machine = intel_dunnington()
        base = report.total_instructions  # lower bound without misses
        assert report.cycles > base  # misses add real cycles

    def test_pack_unpack_metric(self):
        src = """
        double F[4096]; double R[512];
        for (i = 0; i < 128; i += 1) {
            R[i] = F[9*i] / F[9*i + 1];
        }
        """
        report, _ = run(Variant.GLOBAL, src, cost_gate=False)
        assert report.pack_unpack_ops > 0
        assert report.dynamic_instructions == (
            report.total_instructions - report.pack_unpack_ops
        )


class TestReportMerge:
    def test_merge_accumulates(self):
        r1, _ = run(Variant.SCALAR)
        r2, _ = run(Variant.SCALAR)
        total = r1.total_instructions + r2.total_instructions
        r1.merge(r2)
        assert r1.total_instructions == total

    def test_summary_renders(self):
        report, _ = run(Variant.GLOBAL)
        text = report.summary()
        assert "cycles" in text and "cache" in text
