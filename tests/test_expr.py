"""Expression trees: typing, traversal, signatures, substitution."""

import pytest

from repro.ir import (
    Affine,
    ArrayRef,
    BinOp,
    Const,
    FLOAT32,
    FLOAT64,
    INT32,
    UnOp,
    Var,
)


def ref(array, **coeffs):
    const = coeffs.pop("const", 0)
    return ArrayRef(array, (Affine.of(const, **coeffs),), FLOAT32)


class TestTyping:
    def test_binop_type_propagates(self):
        e = BinOp("+", Var("a", FLOAT32), Var("b", FLOAT32))
        assert e.type == FLOAT32

    def test_binop_rejects_mixed_types(self):
        with pytest.raises(TypeError):
            BinOp("+", Var("a", FLOAT32), Var("b", FLOAT64))

    def test_binop_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            BinOp("%", Var("a", FLOAT32), Var("b", FLOAT32))

    def test_unop_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            UnOp("exp", Var("a", FLOAT32))


class TestTraversal:
    def test_leaves_in_positional_order(self):
        e = BinOp(
            "+",
            Var("d", FLOAT32),
            BinOp("*", Var("a", FLOAT32), Var("c", FLOAT32)),
        )
        assert [str(leaf) for leaf in e.leaves()] == ["d", "a", "c"]

    def test_count_ops(self):
        e = BinOp(
            "+",
            Var("d", FLOAT32),
            BinOp("*", Var("a", FLOAT32), Var("c", FLOAT32)),
        )
        assert e.count_ops() == 2
        assert Var("x", FLOAT32).count_ops() == 0


class TestSignatures:
    def test_same_shape_same_signature(self):
        e1 = BinOp("*", Var("a", FLOAT32), ref("B", i=4))
        e2 = BinOp("*", Var("r", FLOAT32), ref("B", i=4, const=2))
        assert e1.opcode_signature() == e2.opcode_signature()

    def test_different_op_different_signature(self):
        e1 = BinOp("*", Var("a", FLOAT32), Var("b", FLOAT32))
        e2 = BinOp("+", Var("a", FLOAT32), Var("b", FLOAT32))
        assert e1.opcode_signature() != e2.opcode_signature()

    def test_different_leaf_type_different_signature(self):
        e1 = BinOp("+", Var("a", FLOAT32), Var("b", FLOAT32))
        e2 = BinOp("+", Var("a", INT32), Var("b", INT32))
        assert e1.opcode_signature() != e2.opcode_signature()

    def test_leaf_kind_does_not_matter(self):
        # A var and an array ref of the same type occupy a lane equally.
        e1 = BinOp("+", Var("a", FLOAT32), Var("b", FLOAT32))
        e2 = BinOp("+", ref("A", i=1), Const(1.0, FLOAT32))
        assert e1.opcode_signature() == e2.opcode_signature()


class TestSubstitution:
    def test_substitute_indices_rewrites_subscripts(self):
        e = BinOp("*", Var("a", FLOAT32), ref("B", i=4))
        shifted = e.substitute_indices({"i": Affine.var("i") + 1})
        leaves = list(shifted.leaves())
        assert str(leaves[1]) == "B[4*i + 4]"

    def test_substitute_preserves_structure(self):
        e = UnOp("sqrt", BinOp("+", ref("A", i=1), ref("A", i=1, const=1)))
        shifted = e.substitute_indices({"i": Affine.var("i") + 3})
        assert shifted.opcode_signature() == e.opcode_signature()

    def test_with_children_rejects_leaf_children(self):
        with pytest.raises(ValueError):
            Var("a", FLOAT32).with_children((Var("b", FLOAT32),))
