"""The pipeline verifier: IR well-formedness, schedule invariants,
plan executability — exercised by corrupting known-good artifacts and
asserting the right rule fires."""

import pytest

from repro import (
    CompilerOptions,
    Variant,
    VerifyError,
    compile_program,
    intel_dunnington,
    simulate,
)
from repro.compiler import scalar_schedule, _schedule_block
from repro.errors import OptionsError
from repro.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    BasicBlock,
    FLOAT32,
    FLOAT64,
    Program,
    Statement,
    Var,
    parse_block,
    parse_program,
)
from repro.slp.model import Schedule, SuperwordStatement
from repro.verify import (
    affine_bounds,
    resolve_checks,
    verify_plan,
    verify_program,
    verify_schedule,
)


# ---------------------------------------------------------------------------
# resolve_checks
# ---------------------------------------------------------------------------


class TestResolveChecks:
    def test_explicit_values(self):
        assert resolve_checks("none") == frozenset()
        assert resolve_checks("all") == {"ir", "schedule", "plan"}
        assert resolve_checks("ir,plan") == {"ir", "plan"}

    def test_unknown_stage_rejected(self):
        with pytest.raises(OptionsError):
            resolve_checks("ir,typo")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKS", "schedule")
        assert resolve_checks(None) == {"schedule"}
        monkeypatch.delenv("REPRO_CHECKS")
        assert resolve_checks(None) == frozenset()

    def test_explicit_beats_env(self, monkeypatch):
        # The documented precedence: an options value wins over env.
        monkeypatch.setenv("REPRO_CHECKS", "all")
        assert resolve_checks("none") == frozenset()


# ---------------------------------------------------------------------------
# Stage: ir
# ---------------------------------------------------------------------------


def _rule(excinfo):
    return excinfo.value.rule


class TestVerifyProgram:
    def test_clean_program_passes(self):
        verify_program(parse_program(
            "float A[8]; float s;\n"
            "for (i = 0; i < 8; i += 1) { A[i] = s; }"
        ))

    def test_undeclared_array(self):
        program = Program()
        program.declare_scalar("s", FLOAT32)
        ghost = ArrayRef("G", (Affine((), 0),), FLOAT32)
        program.add(BasicBlock([Statement(0, Var("s", FLOAT32), ghost)]))
        with pytest.raises(VerifyError) as excinfo:
            verify_program(program)
        assert _rule(excinfo) == "ir.undeclared-array"

    def test_undeclared_scalar(self):
        program = Program()
        program.declare_array("A", (4,), FLOAT32)
        target = ArrayRef("A", (Affine((), 0),), FLOAT32)
        program.add(
            BasicBlock([Statement(0, target, Var("ghost", FLOAT32))])
        )
        with pytest.raises(VerifyError) as excinfo:
            verify_program(program)
        assert _rule(excinfo) == "ir.undeclared-scalar"

    def test_subscript_exceeds_bounds(self):
        program = parse_program(
            "float A[8]; for (i = 0; i < 9; i += 1) { A[i] = 1.0; }"
        )
        with pytest.raises(VerifyError) as excinfo:
            verify_program(program)
        assert _rule(excinfo) == "ir.bounds"
        assert excinfo.value.stage == "ir"
        assert excinfo.value.block == "b0"

    def test_type_mismatch(self):
        program = Program()
        program.declare_array("A", (4,), FLOAT32)
        # The reference claims FLOAT64 against a FLOAT32 declaration.
        bad = ArrayRef("A", (Affine((), 0),), FLOAT64)
        program.declare_scalar("s", FLOAT64)
        program.add(BasicBlock([Statement(0, Var("s", FLOAT64), bad)]))
        with pytest.raises(VerifyError) as excinfo:
            verify_program(program)
        assert _rule(excinfo) == "ir.type"

    def test_duplicate_sid(self):
        program = Program()
        program.declare_scalar("s", FLOAT32)
        block = BasicBlock()
        block.append(
            Statement(0, Var("s", FLOAT32), Var("s", FLOAT32))
        )
        # Bypass BasicBlock.append's own guard — simulate a corrupted
        # block produced by a buggy transformation.
        block.statements.append(
            Statement(0, Var("s", FLOAT32), Var("s", FLOAT32))
        )
        program.add(block)
        with pytest.raises(VerifyError) as excinfo:
            verify_program(program)
        assert _rule(excinfo) == "ir.duplicate-sid"

    def test_degenerate_shape(self):
        program = Program()
        program.arrays["A"] = ArrayDecl("A", (0,), FLOAT32)
        with pytest.raises(VerifyError) as excinfo:
            verify_program(program)
        assert _rule(excinfo) == "ir.shape"

    def test_zero_trip_loop_body_is_dead(self):
        # The subscript would run out of bounds, but the loop never
        # executes, so there is nothing to bound.
        verify_program(parse_program(
            "float A[2]; for (i = 5; i < 5; i += 1) { A[i + 8] = 1.0; }"
        ))


def test_affine_bounds_negative_coefficient():
    affine = Affine.var("i", -2) + 10
    assert affine_bounds(affine, {"i": (0, 4, 1)}) == (4, 10)


# ---------------------------------------------------------------------------
# Stage: schedule (mutation tests)
# ---------------------------------------------------------------------------

_DECLS = "float A[64]; float B[64];"
_PACKABLE = """
A[0] = B[0] + 1.0;
A[1] = B[1] + 1.0;
A[2] = B[2] + 1.0;
A[3] = B[3] + 1.0;
"""


def _schedule_for(src=_PACKABLE, decls=_DECLS):
    block = parse_block(src, decls)
    program = parse_program(decls + "\n" + src)
    schedule = _schedule_block(block, Variant.SLP, program, 128)
    return block, schedule


class TestVerifySchedule:
    def test_good_schedule_passes(self):
        block, schedule = _schedule_for()
        verify_schedule(block, schedule, 128, block="b0")

    def test_dropped_statement(self):
        block, _ = _schedule_for()
        schedule = scalar_schedule(block)
        schedule.items = schedule.items[:-1]          # lose S3
        with pytest.raises(VerifyError) as excinfo:
            verify_schedule(block, schedule, 128, block="b0")
        assert _rule(excinfo) == "schedule.complete"
        assert excinfo.value.stage == "schedule"
        assert excinfo.value.block == "b0"

    def test_swapped_dependent_statements(self):
        block = parse_block(
            "A[0] = B[0] + 1.0;\nA[1] = A[0] + 1.0;", _DECLS
        )
        schedule = scalar_schedule(block)
        schedule.items = list(reversed(schedule.items))
        with pytest.raises(VerifyError) as excinfo:
            verify_schedule(block, schedule, 128, block="b0")
        assert _rule(excinfo) == "schedule.dependence"

    def test_oversize_pack(self):
        src = "\n".join(f"A[{k}] = B[{k}] + 1.0;" for k in range(8))
        block = parse_block(src, _DECLS)
        pack = SuperwordStatement(tuple(block.statements))  # 8 x 32 bits
        schedule = Schedule(block, [pack])
        with pytest.raises(VerifyError) as excinfo:
            verify_schedule(block, schedule, 128, block="b0")
        assert _rule(excinfo) == "schedule.width"

    def test_dependent_statements_in_one_pack(self):
        block = parse_block(
            "A[0] = B[0] + 1.0;\nA[1] = A[0] + 1.0;", _DECLS
        )
        pack = SuperwordStatement(tuple(block.statements))
        schedule = Schedule(block, [pack])
        with pytest.raises(VerifyError) as excinfo:
            verify_schedule(block, schedule, 128, block="b0")
        assert _rule(excinfo) == "schedule.independent"

    def test_statement_scheduled_twice(self):
        block, _ = _schedule_for()
        schedule = scalar_schedule(block)
        schedule.items = schedule.items + [schedule.items[0]]
        with pytest.raises(VerifyError) as excinfo:
            verify_schedule(block, schedule, 128, block="b0")
        assert _rule(excinfo) == "schedule.duplicate"

    def test_non_isomorphic_pack(self):
        block = parse_block(
            "A[0] = B[0] + 1.0;\nA[1] = B[1] * B[2];", _DECLS
        )
        # The constructor refuses non-isomorphic members, so corrupt a
        # pack the way a buggy pass would: behind the constructor.
        pack = SuperwordStatement.__new__(SuperwordStatement)
        object.__setattr__(pack, "members", tuple(block.statements))
        schedule = Schedule(block, [pack])
        with pytest.raises(VerifyError) as excinfo:
            verify_schedule(block, schedule, 128, block="b0")
        assert _rule(excinfo) == "schedule.isomorphic"


# ---------------------------------------------------------------------------
# Stage: plan
# ---------------------------------------------------------------------------


class TestVerifyPlan:
    def test_every_variant_of_a_real_kernel_passes(self):
        program = parse_program(
            "float A[64]; float B[64]; float C[64];\n"
            "for (i = 0; i < 64; i += 1) { C[i] = A[i] * B[i] + C[i]; }"
        )
        machine = intel_dunnington()
        for variant in Variant:
            result = compile_program(
                program, variant, machine, CompilerOptions(checks="none")
            )
            verify_plan(result.plan, machine)

    def test_undefined_register_caught(self):
        from repro.vm.isa import VOp
        from repro.vm.codegen import CompiledStraight

        program = parse_program("float A[4];")
        result = compile_program(
            program, Variant.SCALAR, intel_dunnington(),
            CompilerOptions(checks="none"),
        )
        result.plan.units.append(
            CompiledStraight([VOp("+", 99, (7, 8), 4)])
        )
        with pytest.raises(VerifyError) as excinfo:
            verify_plan(result.plan, intel_dunnington())
        assert _rule(excinfo) == "plan.register-live"


# ---------------------------------------------------------------------------
# Compiler integration: checks= and on_error=
# ---------------------------------------------------------------------------

_LOOP_SRC = """
float A[64]; float B[64]; float C[64];
for (i = 0; i < 64; i += 1) {
  A[i] = B[i] + 1.0;
  C[i] = A[i] * 2.0;
}
"""


class TestCompilerIntegration:
    def test_mutated_schedule_raises_with_context(self):
        from repro.fuzz import buggy_swap_mutator

        program = parse_program(
            _DECLS + "\nA[0] = B[0] + 1.0;\nA[1] = A[0] + 1.0;"
        )
        with pytest.raises(VerifyError) as excinfo:
            compile_program(
                program, Variant.SLP, intel_dunnington(),
                CompilerOptions(
                    checks="all",
                    debug_schedule_mutator=buggy_swap_mutator,
                ),
            )
        assert excinfo.value.stage == "schedule"
        assert excinfo.value.block == "b0"

    def test_fallback_recovers_with_scalar_semantics(self):
        from repro.fuzz import buggy_swap_mutator

        program = parse_program(_LOOP_SRC)
        machine = intel_dunnington()
        scalar = compile_program(program, Variant.SCALAR, machine)
        _, base_memory = simulate(scalar)

        result = compile_program(
            program, Variant.GLOBAL, machine,
            CompilerOptions(
                checks="all",
                on_error="fallback",
                cost_gate=False,
                debug_schedule_mutator=buggy_swap_mutator,
            ),
        )
        assert result.fallback_blocks == ["b0"]
        assert len(result.diagnostics) == 1
        diagnostic = result.diagnostics[0]
        assert diagnostic.stage == "schedule"
        assert diagnostic.block == "b0"
        assert diagnostic.error == "VerifyError"
        _, memory = simulate(result)
        assert memory.state_equal(base_memory)

    def test_fallback_never_hides_bad_input(self):
        # An ir-stage violation in the *source* is not recoverable.
        program = parse_program(
            "float A[4]; for (i = 0; i < 8; i += 1) { A[i] = 1.0; }"
        )
        with pytest.raises(VerifyError):
            compile_program(
                program, Variant.GLOBAL, intel_dunnington(),
                CompilerOptions(checks="all", on_error="fallback"),
            )

    def test_checks_none_lets_the_mutation_through(self):
        from repro.fuzz import buggy_swap_mutator

        program = parse_program(
            _DECLS + "\nA[0] = B[0] + 1.0;\nA[1] = A[0] + 1.0;"
        )
        result = compile_program(
            program, Variant.SLP, intel_dunnington(),
            CompilerOptions(
                checks="none", cost_gate=False,
                debug_schedule_mutator=buggy_swap_mutator,
            ),
        )
        assert result.diagnostics == []
