"""Differential guarantees of the incremental grouping engine.

The incremental engine (memoized scores, dirty-set invalidation, lazy
bound-refined heap) exists purely as a compile-time optimization: its
decisions, traces, and emitted schedules must be bit-identical to the
reference engine's from-scratch recomputation. These tests pin that
equivalence on random well-formed blocks and on the real kernel suite,
and pin the parallel suite runner + compile cache to the sequential
uncached results.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CompilerOptions, Variant, compile_program
from repro.analysis import DependenceGraph
from repro.bench import KERNELS, intel_dunnington
from repro.bench.suite import CompileCache, run_kernel, run_suite
from repro.ir import (
    Affine,
    ArrayRef,
    BasicBlock,
    BinOp,
    Const,
    FLOAT64,
    Loop,
    Program,
    Statement,
    Var,
)
from repro.perf import PERF
from repro.slp import iterative_grouping
from repro.vm.pretty import disassemble_plan

SCALARS = ["s0", "s1", "s2", "s3"]
ARRAYS = ["X", "Y", "Z"]


@st.composite
def affine_subscripts(draw):
    coeff = draw(st.sampled_from([1, 1, 1, 2, 3]))
    const = draw(st.integers(min_value=0, max_value=8))
    return Affine.of(const, i=coeff)


@st.composite
def leaf_exprs(draw):
    kind = draw(st.sampled_from(["var", "ref", "const", "ref"]))
    if kind == "var":
        return Var(draw(st.sampled_from(SCALARS)), FLOAT64)
    if kind == "const":
        return Const(
            float(draw(st.integers(min_value=1, max_value=9))), FLOAT64
        )
    array = draw(st.sampled_from(ARRAYS))
    return ArrayRef(array, (draw(affine_subscripts()),), FLOAT64)


@st.composite
def exprs(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(leaf_exprs())
    op = draw(st.sampled_from(["+", "-", "*", "+", "*"]))
    return BinOp(op, draw(exprs(depth=depth - 1)), draw(exprs(depth=depth - 1)))


@st.composite
def statements(draw, sid):
    if draw(st.booleans()):
        target = Var(draw(st.sampled_from(SCALARS)), FLOAT64)
    else:
        target = ArrayRef(
            draw(st.sampled_from(ARRAYS)),
            (draw(affine_subscripts()),),
            FLOAT64,
        )
    return Statement(sid, target, draw(exprs()))


@st.composite
def programs(draw):
    count = draw(st.integers(min_value=2, max_value=8))
    body = BasicBlock([draw(statements(sid)) for sid in range(count)])
    program = Program("random")
    for name in ARRAYS:
        program.declare_array(name, (64,), FLOAT64)
    for name in SCALARS:
        program.declare_scalar(name, FLOAT64)
    program.add(Loop("i", 0, 8, 1, body))
    return program


COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _grouping_outcome(program, engine, datapath_bits):
    block = next(iter(program.loops())).body
    deps = DependenceGraph(block)
    units, traces = iterative_grouping(
        block,
        deps,
        datapath_bits,
        lambda n: program.arrays[n],
        engine=engine,
    )
    decisions = [
        (candidate, weight)
        for trace in traces
        for candidate, weight in trace.decisions
    ]
    return [u.sids for u in units], decisions


class TestDifferentialGrouping:
    @given(program=programs(), datapath=st.sampled_from([128, 256, 512]))
    @settings(**COMMON)
    def test_decisions_and_traces_identical(self, program, datapath):
        inc_units, inc_decisions = _grouping_outcome(
            program, "incremental", datapath
        )
        ref_units, ref_decisions = _grouping_outcome(
            program, "reference", datapath
        )
        assert inc_units == ref_units
        assert inc_decisions == ref_decisions

    @given(program=programs(), datapath=st.sampled_from([128, 512]))
    @settings(**COMMON)
    def test_compiled_plans_identical(self, program, datapath):
        plans = {}
        for engine in ("incremental", "reference"):
            result = compile_program(
                program,
                Variant.GLOBAL,
                intel_dunnington().with_datapath(datapath),
                CompilerOptions(grouping_engine=engine),
            )
            plans[engine] = disassemble_plan(result.plan)
        assert plans["incremental"] == plans["reference"]

    @given(program=programs())
    @settings(**COMMON)
    def test_weight_only_mode_identical(self, program):
        plans = {}
        for engine in ("incremental", "reference"):
            result = compile_program(
                program,
                Variant.GLOBAL,
                intel_dunnington(),
                CompilerOptions(
                    grouping_engine=engine, decision_mode="weight-only"
                ),
            )
            plans[engine] = disassemble_plan(result.plan)
        assert plans["incremental"] == plans["reference"]


@pytest.mark.parametrize("name", ["cactusADM", "milc", "ua", "cg"])
def test_kernels_identical_across_engines(name):
    """Real Table 3 kernels, unrolled wide — the regime the incremental
    engine was built for."""
    machine = intel_dunnington().with_datapath(512)
    program = KERNELS[name].build(8)
    plans = {}
    for engine in ("incremental", "reference"):
        result = compile_program(
            program,
            Variant.GLOBAL,
            machine,
            CompilerOptions(unroll_factor=4, grouping_engine=engine),
        )
        plans[engine] = disassemble_plan(result.plan)
    assert plans["incremental"] == plans["reference"]


def test_incremental_recomputes_fewer_scores():
    """The point of the engine: commits dirty only a neighborhood, so
    exact score evaluations stay far below the reference engine's
    all-active-every-iteration count."""
    machine = intel_dunnington().with_datapath(512)
    program = KERNELS["ua"].build(8)
    recomputed = {}
    for engine in ("incremental", "reference"):
        PERF.reset()
        PERF.enable()
        compile_program(
            program,
            Variant.GLOBAL,
            machine,
            CompilerOptions(unroll_factor=4, grouping_engine=engine),
        )
        PERF.disable()
        recomputed[engine] = PERF.counters.get(
            "grouping.scores_recomputed", 0
        )
    assert recomputed["reference"] > 0
    assert recomputed["incremental"] * 2 <= recomputed["reference"]


# -- parallel suite runner ---------------------------------------------------------


def _suite_fingerprint(results):
    out = {}
    for name, result in results.items():
        for variant, run in result.runs.items():
            report = run.report
            out[(name, variant)] = (
                report.cycles,
                report.dynamic_instructions,
                report.pack_unpack_ops,
                report.total_instructions,
                run.stats.superword_statements,
            )
        out[(name, "semantics")] = result.semantics_preserved()
    return out


def test_parallel_suite_matches_sequential():
    machine = intel_dunnington()
    kernels = [KERNELS[n] for n in ("mg", "soplex", "cactusADM", "cg")]
    variants = (Variant.SCALAR, Variant.GLOBAL)
    sequential = run_suite(
        machine, kernels=kernels, variants=variants, n=8, jobs=1
    )
    parallel = run_suite(
        machine, kernels=kernels, variants=variants, n=8, jobs=4
    )
    assert list(sequential) == list(parallel)
    assert _suite_fingerprint(sequential) == _suite_fingerprint(parallel)


def test_compile_cache_round_trip(tmp_path):
    machine = intel_dunnington()
    kernel = KERNELS["mg"]
    cache = CompileCache(tmp_path)

    PERF.reset()
    PERF.enable()
    cold = run_kernel(kernel, machine, n=8, cache=cache)
    cold_hits = PERF.counters.get("compile_cache.hits", 0)
    cold_misses = PERF.counters.get("compile_cache.misses", 0)
    warm = run_kernel(kernel, machine, n=8, cache=cache)
    PERF.disable()
    warm_hits = PERF.counters.get("compile_cache.hits", 0) - cold_hits

    assert cold_hits == 0
    assert cold_misses == len(cold.runs)
    # Every variant of the second run is served from disk and the
    # replayed plans simulate to the same results.
    assert warm_hits == len(warm.runs)
    assert _suite_fingerprint({"mg": cold}) == _suite_fingerprint(
        {"mg": warm}
    )


def test_compile_cache_distinguishes_options(tmp_path):
    machine = intel_dunnington()
    program = KERNELS["mg"].build(8)
    base = CompileCache.key(program, Variant.GLOBAL, machine, None)
    assert base == CompileCache.key(
        program, Variant.GLOBAL, machine, CompilerOptions()
    )
    assert base != CompileCache.key(
        program, Variant.SLP, machine, CompilerOptions()
    )
    assert base != CompileCache.key(
        program, Variant.GLOBAL, machine.with_datapath(512), CompilerOptions()
    )
    assert base != CompileCache.key(
        program, Variant.GLOBAL, machine, CompilerOptions(unroll_factor=2)
    )
    assert base != CompileCache.key(
        KERNELS["mg"].build(16), Variant.GLOBAL, machine, CompilerOptions()
    )
