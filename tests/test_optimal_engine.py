"""The exact statement-packing engine (``repro.slp.optimal``).

The contract under test: ``grouping_engine="optimal"`` maximizes the
whole-selection packing objective
(:meth:`~repro.slp.grouping.BasicGrouping.selection_objective`) over
all pairwise conflict-free candidate subsets — verified here against
brute-force enumeration on random blocks — never scores below the
greedy incumbent that seeds it, stays semantically bit-exact through
the full compile + simulate pipeline, degrades to the incremental
result (plus a structured ``Diagnostic``) when its node budget runs
out, and stamps provenance (``picked_by``, ``proven_optimal``) on its
trace events.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CompilerOptions, Variant, compile_program
from repro.analysis import DependenceGraph
from repro.bench import KERNELS, intel_dunnington
from repro.ir import (
    Affine,
    ArrayRef,
    BasicBlock,
    BinOp,
    Const,
    FLOAT64,
    Loop,
    Program,
    Statement,
    Var,
)
from repro.slp.grouping import BasicGrouping, PenaltyContext
from repro.slp.model import GroupNode
from repro.trace import TRACE
from repro.vm import Simulator

SCALARS = ["s0", "s1", "s2", "s3"]
ARRAYS = ["X", "Y", "Z"]


@st.composite
def affine_subscripts(draw):
    coeff = draw(st.sampled_from([1, 1, 1, 2]))
    const = draw(st.integers(min_value=0, max_value=6))
    return Affine.of(const, i=coeff)


@st.composite
def leaf_exprs(draw):
    kind = draw(st.sampled_from(["var", "ref", "const", "ref"]))
    if kind == "var":
        return Var(draw(st.sampled_from(SCALARS)), FLOAT64)
    if kind == "const":
        return Const(
            float(draw(st.integers(min_value=1, max_value=9))), FLOAT64
        )
    return ArrayRef(
        draw(st.sampled_from(ARRAYS)), (draw(affine_subscripts()),), FLOAT64
    )


@st.composite
def exprs(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(leaf_exprs())
    op = draw(st.sampled_from(["+", "-", "*", "+"]))
    return BinOp(
        op, draw(exprs(depth=depth - 1)), draw(exprs(depth=depth - 1))
    )


@st.composite
def statements(draw, sid):
    if draw(st.booleans()):
        target = Var(draw(st.sampled_from(SCALARS)), FLOAT64)
    else:
        target = ArrayRef(
            draw(st.sampled_from(ARRAYS)),
            (draw(affine_subscripts()),),
            FLOAT64,
        )
    return Statement(sid, target, draw(exprs()))


@st.composite
def programs(draw):
    count = draw(st.integers(min_value=2, max_value=7))
    body = BasicBlock([draw(statements(sid)) for sid in range(count)])
    program = Program("random")
    for name in ARRAYS:
        program.declare_array(name, (64,), FLOAT64)
    for name in SCALARS:
        program.declare_scalar(name, FLOAT64)
    program.add(Loop("i", 0, 8, 1, body))
    return program


COMMON = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _fresh_grouping(program, engine, datapath=256, **kwargs):
    block = next(iter(program.loops())).body
    deps = DependenceGraph(block)
    return BasicGrouping(
        [GroupNode.of_statement(s) for s in block],
        deps,
        datapath,
        lambda name: program.arrays[name],
        None,
        "cost-aware",
        engine,
        **kwargs,
    )


def _brute_force_optimum(grouping) -> Fraction:
    """Maximum selection objective over every pairwise conflict-free
    candidate subset, by explicit DFS enumeration."""
    n = len(grouping.candidates)
    conflicts = [grouping.vp.conflict_bits(j) for j in range(n)]
    best = Fraction(0)  # the empty selection is always available

    def extend(start, chosen, blocked):
        nonlocal best
        value = grouping.selection_objective(chosen)
        if value > best:
            best = value
        for j in range(start, n):
            if (blocked >> j) & 1:
                continue
            extend(
                j + 1,
                chosen + [j],
                blocked | conflicts[j] | (1 << j),
            )

    extend(0, [], 0)
    return best


class TestExactness:
    @given(program=programs())
    @settings(**COMMON)
    def test_matches_brute_force_and_dominates_greedy(self, program):
        probe = _fresh_grouping(program, "optimal")
        if len(probe.candidates) > 12:
            return  # keep enumeration tractable; larger cases below
        expected = _brute_force_optimum(probe)

        greedy = _fresh_grouping(program, "incremental")
        _, _, greedy_trace = greedy.run()

        optimal = _fresh_grouping(program, "optimal")
        _, _, trace = optimal.run()

        assert trace.proven_optimal
        assert trace.engine == "optimal"
        assert trace.objective == expected
        assert trace.objective >= greedy_trace.objective

    @pytest.mark.parametrize(
        "kernel,factor", [("cactusADM", 4), ("lbm", 2), ("milc", 4)]
    )
    def test_gap_nonnegative_on_kernels(self, kernel, factor):
        from repro.bench.optimality import pairing_objectives
        from repro.transform import unroll_program

        program = KERNELS[kernel].build(32)
        pre = unroll_program(program, 128, factor)
        greedy_score, _, _ = pairing_objectives(pre, 128, "incremental")
        optimal_score, proven, nodes = pairing_objectives(
            pre, 128, "optimal"
        )
        assert optimal_score >= greedy_score
        assert proven
        assert nodes > 0


class TestPipeline:
    @pytest.mark.parametrize("kernel", ["cactusADM", "lbm", "cg"])
    def test_compiled_plan_is_semantically_exact(self, kernel):
        program = KERNELS[kernel].build(32)
        machine = intel_dunnington()
        result = compile_program(
            program, Variant.GLOBAL, machine,
            CompilerOptions(grouping_engine="optimal", unroll_factor=4),
        )
        baseline = compile_program(program, Variant.SCALAR, machine)
        _, memory = Simulator(machine).run(result.plan)
        _, ref_memory = Simulator(machine).run(baseline.plan)
        assert memory.state_equal(ref_memory)

    @staticmethod
    def _traced_commits(options):
        program = KERNELS["cactusADM"].build(32)
        TRACE.reset()
        TRACE.enable()
        try:
            compile_program(
                program, Variant.GLOBAL, intel_dunnington(), options
            )
            records = TRACE.records()
        finally:
            TRACE.disable()
            TRACE.reset()
        return [r for r in records if r.get("ev") == "grouping.commit"]

    def test_trace_events_carry_engine_and_proof(self):
        commits = self._traced_commits(
            CompilerOptions(grouping_engine="optimal", unroll_factor=4)
        )
        assert commits
        assert all(c["engine"] == "optimal" for c in commits)
        assert all(c["picked_by"] == "optimal" for c in commits)
        assert all(c["proven_optimal"] is True for c in commits)

    def test_greedy_trace_events_say_so(self):
        commits = self._traced_commits(
            CompilerOptions(unroll_factor=4)
        )
        assert commits
        assert all(c["engine"] == "incremental" for c in commits)
        assert all(c["proven_optimal"] is False for c in commits)


class TestBudgetFallback:
    def test_budget_exhaustion_falls_back_to_incremental(self):
        program = KERNELS["cactusADM"].build(32)
        from repro.transform import unroll_program

        pre = unroll_program(program, 128, 4)
        diagnostics = []
        starved = _fresh_grouping(
            pre, "optimal", datapath=128,
            engine_options={"node_budget": 1},
            on_diagnostic=diagnostics.append,
        )
        _, _, trace = starved.run()
        greedy = _fresh_grouping(pre, "incremental", datapath=128)
        _, _, greedy_trace = greedy.run()

        assert not trace.proven_optimal
        assert trace.decisions == greedy_trace.decisions
        assert starved.decided == greedy.decided
        assert trace.objective == greedy_trace.objective
        assert len(diagnostics) == 1
        assert diagnostics[0].error == "OptimalBudgetExceeded"
        assert diagnostics[0].action == "note"

    def test_compile_surfaces_the_fallback_diagnostic(self):
        program = KERNELS["cactusADM"].build(32)
        machine = intel_dunnington()
        result = compile_program(
            program, Variant.GLOBAL, machine,
            CompilerOptions(
                grouping_engine="optimal",
                optimal_node_budget=1,
                unroll_factor=4,
            ),
        )
        notes = [
            d for d in result.diagnostics
            if d.error == "OptimalBudgetExceeded"
        ]
        assert notes
        assert all(d.block for d in notes)
        # The fallback is the greedy compile: identical plan.
        from repro.vm.pretty import disassemble_plan

        greedy = compile_program(
            program, Variant.GLOBAL, machine,
            CompilerOptions(unroll_factor=4),
        )
        assert disassemble_plan(result.plan) == disassemble_plan(
            greedy.plan
        )
        # A compile that stays within budget reports no such note.
        clean = compile_program(
            program, Variant.GLOBAL, machine,
            CompilerOptions(grouping_engine="optimal", unroll_factor=4),
        )
        assert not any(
            d.error == "OptimalBudgetExceeded" for d in clean.diagnostics
        )
