"""The polyhedral mapping functions (Equations 2, 4, 5, 7, 8)."""

import numpy as np
import pytest

from repro.layout import (
    map_index_1d,
    map_index_2d,
    map_index_general,
    transform_access,
    transformation_matrix,
)
from repro.layout.polyhedral import StridedMapping


class TestTransformationMatrix:
    def test_identity_when_layouts_match(self):
        eye = np.eye(2, dtype=np.int64)
        assert np.array_equal(transformation_matrix(eye, eye), eye)

    def test_transpose_layout(self):
        default = np.eye(2, dtype=np.int64)
        opt = np.array([[0, 1], [1, 0]], dtype=np.int64)
        M = transformation_matrix(default, opt)
        assert np.array_equal(M, opt)

    def test_singular_default_rejected(self):
        singular = np.zeros((2, 2), dtype=np.int64)
        with pytest.raises(ValueError):
            transformation_matrix(singular, np.eye(2, dtype=np.int64))


class TestTransformAccess:
    def test_equation_3(self):
        Q = np.array([[4], [0]], dtype=np.int64)
        O = np.array([1, 2], dtype=np.int64)
        M = np.array([[0, 1], [1, 0]], dtype=np.int64)
        Q1, O1 = transform_access(Q, O, M)
        assert np.array_equal(Q1, np.array([[0], [4]]))
        assert np.array_equal(O1, np.array([2, 1]))


class TestEquation4:
    def test_paper_figure14_example(self):
        """<A[4i], A[4i+3]> with L=2: A's element 4i maps to 2i (lane 0)
        and 4i+3 maps to 2i+1 (lane 1) — Figure 14's mapping."""
        for i in range(16):
            assert map_index_1d(4 * i, a=4, b=0, L=2, p=0) == 2 * i
            assert map_index_1d(4 * i + 3, a=4, b=3, L=2, p=1) == 2 * i + 1

    def test_unaccessed_index_rejected(self):
        with pytest.raises(ValueError):
            map_index_1d(5, a=4, b=0, L=2, p=0)

    def test_zero_stride_rejected(self):
        with pytest.raises(ValueError):
            map_index_1d(0, a=0, b=0, L=2, p=0)


class TestEquation5:
    def test_lower_triangular_access(self):
        # R1 accesses A[2i + 1][3j + 2] (q21 = 0 case).
        Q1 = np.array([[2, 0], [0, 3]], dtype=np.int64)
        O1 = np.array([1, 2], dtype=np.int64)
        for i in range(4):
            for j in range(4):
                d = (2 * i + 1, 3 * j + 2)
                row, col = map_index_2d(d, Q1, O1, L=2, p=1)
                assert (row, col) == (i, 2 * j + 1)

    def test_coupled_subscripts(self):
        # A[i][i + 2j]: q21 = 1.
        Q1 = np.array([[1, 0], [1, 2]], dtype=np.int64)
        O1 = np.array([0, 0], dtype=np.int64)
        for i in range(4):
            for j in range(4):
                d = (i, i + 2 * j)
                row, col = map_index_2d(d, Q1, O1, L=4, p=3)
                assert (row, col) == (i, 4 * j + 3)

    def test_rejects_upper_triangular(self):
        Q1 = np.array([[2, 1], [0, 3]], dtype=np.int64)
        with pytest.raises(ValueError):
            map_index_2d((0, 0), Q1, np.zeros(2, dtype=np.int64), 2, 0)


class TestGeneralMapping:
    def test_1d_degenerates_to_equation_4(self):
        out = map_index_general(
            (8,), np.array([[4]], dtype=np.int64),
            np.array([0], dtype=np.int64), L=2, p=0,
        )
        assert out == (4,)

    def test_3d_strided_innermost(self):
        # A[i][j][5k + 1], L = 2, p = 0.
        Q1 = np.array(
            [[1, 0, 0], [0, 1, 0], [0, 0, 5]], dtype=np.int64
        )
        O1 = np.array([0, 0, 1], dtype=np.int64)
        for i in range(3):
            for j in range(3):
                for k in range(3):
                    d = (i, j, 5 * k + 1)
                    out = map_index_general(d, Q1, O1, L=2, p=0)
                    assert out == (i, j, 2 * k)

    def test_matches_2d_case(self):
        Q1 = np.array([[2, 0], [0, 3]], dtype=np.int64)
        O1 = np.array([1, 2], dtype=np.int64)
        d = (2 * 3 + 1, 3 * 2 + 2)
        assert map_index_general(d, Q1, O1, 2, 1) == map_index_2d(
            d, Q1, O1, 2, 1
        )

    def test_singular_leading_block_rejected(self):
        Q1 = np.zeros((2, 2), dtype=np.int64)
        Q1[1, 1] = 1
        with pytest.raises(ValueError):
            map_index_general(
                (0, 0), Q1, np.zeros(2, dtype=np.int64), 2, 0
            )


class TestStridedMapping:
    def test_destination_is_strided(self):
        mapping = StridedMapping(L=4, p=2)
        assert [mapping.destination(j) for j in range(3)] == [2, 6, 10]
