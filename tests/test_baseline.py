"""The Larsen–Amarasinghe greedy SLP baseline and the Native model."""

import pytest

from repro.analysis import DependenceGraph
from repro.ir import parse_block, parse_program
from repro.slp import (
    GreedyConfig,
    GreedySLP,
    greedy_slp_schedule,
    native_schedule,
)

DECLS = """
float A[512]; float B[512]; float C[512];
float a, b, c, d, p, q;
"""


def setup(src):
    block = parse_block(src, DECLS)
    deps = DependenceGraph(block)
    decls = parse_program(DECLS).arrays
    return block, deps, lambda name: decls[name]


def groups_of(schedule):
    return {frozenset(sw.sids) for sw in schedule.superwords()}


class TestSeeds:
    def test_adjacent_loads_seed_a_pack(self):
        block, deps, decl_of = setup("a = A[0]; b = A[1];")
        schedule = greedy_slp_schedule(block, deps, decl_of)
        assert groups_of(schedule) == {frozenset({0, 1})}

    def test_lane_order_follows_addresses(self):
        block, deps, decl_of = setup("a = A[1]; b = A[0];")
        schedule = greedy_slp_schedule(block, deps, decl_of)
        sw = next(schedule.superwords())
        # Lane 0 must hold the lower address (A[0], defined by S1).
        assert sw.sids == (1, 0)

    def test_non_adjacent_loads_do_not_seed(self):
        block, deps, decl_of = setup("a = A[0]; b = A[5];")
        schedule = greedy_slp_schedule(block, deps, decl_of)
        assert groups_of(schedule) == set()

    def test_adjacent_stores_seed(self):
        block, deps, decl_of = setup("B[0] = a + p; B[1] = b + p;")
        schedule = greedy_slp_schedule(block, deps, decl_of)
        assert groups_of(schedule) == {frozenset({0, 1})}


class TestChainExtension:
    SRC = """
    a = A[0];
    b = A[1];
    c = a * p;
    d = b * p;
    B[4] = c + q;
    B[9] = d + q;
    """

    def test_def_use_extension(self):
        block, deps, decl_of = setup(self.SRC)
        schedule = greedy_slp_schedule(block, deps, decl_of)
        groups = groups_of(schedule)
        assert frozenset({0, 1}) in groups  # the seed
        assert frozenset({2, 3}) in groups  # def-use from <a,b>
        assert frozenset({4, 5}) in groups  # def-use from <c,d>

    def test_use_def_extension(self):
        block, deps, decl_of = setup(
            """
            a = p * q;
            b = c * q;
            B[0] = a + d;
            B[1] = b + d;
            """
        )
        schedule = greedy_slp_schedule(block, deps, decl_of)
        groups = groups_of(schedule)
        assert frozenset({2, 3}) in groups  # the store seed
        assert frozenset({0, 1}) in groups  # use-def from <a,b>

    def test_no_chains_when_disabled(self):
        block, deps, decl_of = setup(self.SRC)
        config = GreedyConfig(datapath_bits=128, follow_chains=False)
        schedule = GreedySLP(block, deps, decl_of, config).schedule()
        groups = groups_of(schedule)
        assert frozenset({0, 1}) in groups
        assert frozenset({2, 3}) not in groups


class TestCombination:
    def test_pairs_combine_into_quads(self):
        block, deps, decl_of = setup(
            "a = A[0]; b = A[1]; c = A[2]; d = A[3];"
        )
        schedule = greedy_slp_schedule(block, deps, decl_of, 128)
        groups = groups_of(schedule)
        assert frozenset({0, 1, 2, 3}) in groups

    def test_combination_respects_datapath(self):
        block, deps, decl_of = setup(
            "a = A[0]; b = A[1]; c = A[2]; d = A[3];"
        )
        schedule = greedy_slp_schedule(block, deps, decl_of, 64)
        groups = groups_of(schedule)
        assert frozenset({0, 1}) in groups
        assert frozenset({2, 3}) in groups


class TestNative:
    def test_native_requires_full_contiguity(self):
        # One adjacent position + one strided position: SLP packs it,
        # Native does not.
        src = "B[0] = A[0] + q; B[1] = A[7] + q;"
        block, deps, decl_of = setup(src)
        assert groups_of(greedy_slp_schedule(block, deps, decl_of)) == {
            frozenset({0, 1})
        }
        assert groups_of(native_schedule(block, deps, decl_of)) == set()

    def test_native_accepts_fully_contiguous(self):
        src = "B[0] = A[0] + q; B[1] = A[1] + q;"
        block, deps, decl_of = setup(src)
        assert groups_of(native_schedule(block, deps, decl_of)) == {
            frozenset({0, 1})
        }

    def test_native_rejects_differing_scalars(self):
        src = "B[0] = A[0] + p; B[1] = A[1] + q;"
        block, deps, decl_of = setup(src)
        assert groups_of(native_schedule(block, deps, decl_of)) == set()


class TestSchedules:
    def test_schedules_are_valid(self):
        block, deps, decl_of = setup(TestChainExtension.SRC)
        for make in (greedy_slp_schedule, native_schedule):
            schedule = make(block, deps, decl_of)
            schedule.validate(deps, datapath_bits=128)

    def test_statements_in_at_most_one_group(self):
        block, deps, decl_of = setup(TestChainExtension.SRC)
        schedule = greedy_slp_schedule(block, deps, decl_of)
        seen = set()
        for sw in schedule.superwords():
            assert not (sw.sid_set & seen)
            seen |= sw.sid_set
