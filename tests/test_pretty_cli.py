"""Plan disassembly and the command-line interface."""

import pathlib

import pytest

from repro import Variant, compile_program, intel_dunnington
from repro.cli import build_parser, main
from repro.ir import parse_program
from repro.vm.pretty import (
    disassemble_plan,
    format_instruction,
    format_ref,
    instruction_histogram,
)
from repro.vm.isa import ImmRef, MemRef, PackMode, ScalarRef, VPack
from repro.ir import Affine

SRC = """
double X[64]; double Y[64];
double a;
for (i = 0; i < 32; i += 1) {
    Y[i] = a * X[i] + Y[i];
}
"""


@pytest.fixture()
def plan():
    return compile_program(
        parse_program(SRC), Variant.GLOBAL, intel_dunnington()
    ).plan


class TestFormatting:
    def test_format_refs(self):
        assert format_ref(ScalarRef("a")) == "$a"
        assert format_ref(ImmRef(2.0)) == "#2.0"
        assert format_ref(MemRef("X", Affine.of(3, i=1))) == "X[i + 3]"

    def test_format_vpack(self):
        instr = VPack(
            3, (ScalarRef("a"), ScalarRef("a")), PackMode.BROADCAST
        )
        text = format_instruction(instr)
        assert "v3" in text and "broadcast" in text

    def test_disassemble_plan_structure(self, plan):
        text = disassemble_plan(plan)
        assert "arena double" in text
        assert "loop i = 0..32 step 2" in text
        assert "preheader:" in text
        assert "vop.*" in text and "vstore" in text

    def test_histogram_counts_static_instructions(self, plan):
        histogram = instruction_histogram(plan)
        assert histogram.get("VOp", 0) >= 2
        assert histogram.get("VStore", 0) >= 1


class TestCli:
    def _write(self, tmp_path: pathlib.Path) -> str:
        path = tmp_path / "kernel.slp"
        path.write_text(SRC)
        return str(path)

    def test_compile_runs_and_reports(self, tmp_path, capsys):
        assert main(["compile", self._write(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out

    def test_compile_emit_plan(self, tmp_path, capsys):
        assert (
            main(
                [
                    "compile",
                    self._write(tmp_path),
                    "--emit-plan",
                    "--variant",
                    "global",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "vpack" in out

    def test_compile_emit_schedule(self, tmp_path, capsys):
        assert (
            main(
                ["compile", self._write(tmp_path), "--emit-schedule"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "<S0, S1>" in out

    def test_compare_all_variants(self, tmp_path, capsys):
        assert main(["compare", self._write(tmp_path)]) == 0
        out = capsys.readouterr().out
        for name in ("scalar", "native", "slp", "global"):
            assert name in out
        assert "MISMATCH" not in out

    def test_kernels_listing(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "cactusADM" in out and "NAS" in out

    def test_explain_shows_weights_and_decisions(self, tmp_path, capsys):
        assert main(["explain", self._write(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "candidate groups" in out
        assert "weight" in out and "score" in out
        assert "decisions:" in out
        assert "superword statements" in out

    def test_explain_if_converts_regions_first(self, tmp_path, capsys):
        # Regression: explain used to feed raw IfRegions to the
        # unroller and crash; it must flatten them like compile does.
        src = tmp_path / "branchy.slp"
        src.write_text(
            """
            double A[72]; double B[72]; double c;
            for (i = 0; i < 64; i += 1) {
                if (A[i] > c) {
                    B[i] = c;
                } else {
                    B[i] = A[i];
                }
            }
            """
        )
        assert main(["explain", str(src)]) == 0
        out = capsys.readouterr().out
        assert "select" in out
        assert "superword statements" in out

    def test_machine_and_datapath_flags(self, tmp_path, capsys):
        assert (
            main(
                [
                    "compile",
                    self._write(tmp_path),
                    "--machine",
                    "amd",
                    "--datapath",
                    "256",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cycles" in out

    def test_unknown_variant_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compile", "x.slp", "--variant", "bogus"]
            )
