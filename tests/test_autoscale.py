"""Tests for worker-pool elasticity: the pure hysteresis evaluator
(``repro.service.autoscale``), live ``WorkerPool.resize``, and the
autoscaler running inside a real server.
"""

from __future__ import annotations

import time

import pytest

from repro import FLOAT32, ProgramBuilder, ServiceError
from repro.ir.printer import format_program
from repro.service.autoscale import (
    Autoscaler,
    AutoscalerConfig,
    recent_p50_ms,
)
from repro.service.client import ServiceClient
from repro.service.pool import WorkerPool
from repro.service.server import ServiceThread
from repro.telemetry.metrics import Histogram, MetricsRegistry


def snapshot_of(*latencies_ms: float):
    hist = Histogram()
    for ms in latencies_ms:
        hist.observe(ms / 1e3)
    return hist.snapshot()


def unique_source(tag: int) -> str:
    builder = ProgramBuilder(f"scale{tag}")
    X = builder.array("X", (16,), FLOAT32)
    Y = builder.array("Y", (16,), FLOAT32)
    with builder.loop("i", 0, 16) as i:
        builder.assign(Y[i], X[i] * (tag + 2) + Y[i])
    return format_program(builder.build())


# -- the p50 estimator ---------------------------------------------------------


def test_recent_p50_uses_the_delta_not_the_lifetime():
    old = snapshot_of(*([1.0] * 1000))  # a long fast history
    new_hist = Histogram()
    for _ in range(1000):
        new_hist.observe(0.001)
    for _ in range(10):
        new_hist.observe(0.4)  # recent slow burst: 400ms
    assert recent_p50_ms(old, new_hist.snapshot()) == 500.0


def test_recent_p50_none_when_no_traffic():
    snap = snapshot_of(1.0, 2.0)
    assert recent_p50_ms(snap, snap) is None
    assert recent_p50_ms(None, snapshot_of()) is None


def test_recent_p50_without_baseline():
    assert recent_p50_ms(None, snapshot_of(3.0, 3.0, 3.0)) == 5.0


# -- the hysteresis policy -----------------------------------------------------


def make(config=None):
    return Autoscaler(
        config or AutoscalerConfig(), metrics=MetricsRegistry()
    )


def test_scale_up_needs_consecutive_hot_ticks():
    auto = make(AutoscalerConfig(up_ticks=2, max_shards=4))
    hot = snapshot_of(200.0)

    assert auto.tick(2, 0, hot) == 2  # first hot tick: hold
    hot2 = Histogram()
    for ms in (200.0, 200.0):
        hot2.observe(ms / 1e3)
    assert auto.tick(2, 0, hot2.snapshot()) == 3  # second: grow


def test_queue_depth_alone_is_hot():
    auto = make(AutoscalerConfig(up_ticks=1, max_shards=4))
    idle_hist = snapshot_of()
    assert auto.tick(2, 10, idle_hist) == 3  # depth 10 >= 2x2 shards


def test_scale_up_respects_ceiling():
    auto = make(AutoscalerConfig(up_ticks=1, max_shards=2, cooldown=0))
    assert auto.tick(2, 50, snapshot_of()) == 2


def test_cooldown_suppresses_flapping():
    auto = make(
        AutoscalerConfig(up_ticks=1, cooldown=2, max_shards=8)
    )
    assert auto.tick(2, 50, snapshot_of()) == 3  # grow, enter cooldown
    assert auto.tick(3, 50, snapshot_of()) == 3  # held by cooldown
    assert auto.tick(3, 50, snapshot_of()) == 3  # held by cooldown
    assert auto.tick(3, 50, snapshot_of()) == 4  # hot again: grow


def test_scale_down_after_sustained_idle():
    auto = make(
        AutoscalerConfig(
            min_shards=1, down_ticks=3, cooldown=0, up_ticks=99
        )
    )
    snap = snapshot_of(1.0)  # constant: no new traffic after tick 0
    assert auto.tick(3, 0, snap) == 3  # baseline tick (delta unknown)
    assert auto.tick(3, 0, snap) == 3  # idle 1... (needs 3)
    assert auto.tick(3, 0, snap) == 3  # idle 2
    assert auto.tick(3, 0, snap) == 2  # idle 3: shrink
    assert auto.tick(2, 0, snap) == 2  # floor counting restarts
    assert auto.tick(2, 0, snap) == 2
    assert auto.tick(2, 0, snap) == 1
    assert auto.tick(1, 0, snap) == 1  # at min_shards: hold forever
    assert auto.tick(1, 0, snap) == 1
    assert auto.tick(1, 0, snap) == 1


# -- live pool resize ----------------------------------------------------------


def test_pool_resize_grow_and_shrink(tmp_path):
    pool = WorkerPool(shards=1, store_dir=str(tmp_path / "store"))
    try:
        source = unique_source(1)
        job = {
            "kind": "compile", "source": source, "variant": "global",
            "machine": "intel", "datapath": None, "options": {},
            "seed": 0, "trace": False,
            "key": "ab" * 16, "request_id": "r1",
        }
        assert pool.submit(dict(job))["result"] is not None
        assert pool.resize(3) == 3
        assert pool.stats()["shards"] == 3
        # All three shards accept work (route distinct keys).
        for tag in range(2, 8):
            job2 = dict(job)
            job2["source"] = unique_source(tag)
            job2["key"] = f"{tag:02x}" * 16
            assert pool.submit(job2)["result"] is not None
        assert pool.resize(1) == 1
        assert pool.stats()["shards"] == 1
        # Shrunk pool still serves everything.
        for tag in range(8, 12):
            job3 = dict(job)
            job3["source"] = unique_source(tag)
            job3["key"] = f"{tag:02x}" * 16
            assert pool.submit(job3)["result"] is not None
    finally:
        pool.close()


def test_pool_resize_validates(tmp_path):
    pool = WorkerPool(shards=1)
    try:
        with pytest.raises(ServiceError):
            pool.resize(0)
    finally:
        pool.close()


# -- inside a real server ------------------------------------------------------


def test_server_autoscales_up_under_load(tmp_path):
    """Drive a 1-shard server hard with slow jobs; the autoscaler
    (tight tick interval, 1 hot tick to grow) must raise the live
    worker count, visible in /healthz."""
    with ServiceThread(
        shards=1,
        cache_dir=str(tmp_path / "store"),
        test_hooks=True,
        min_workers=1,
        max_workers=3,
    ) as thread:
        service = thread.service
        service.autoscaler.config.interval = 0.1
        service.autoscaler.config.up_ticks = 1
        service.autoscaler.config.hot_ms = 5.0
        service.autoscaler.config.cooldown = 0

        client = ServiceClient(thread.url, timeout=120.0)
        import threading as _threading

        def slow_submit(tag):
            request = ServiceClient._job_request(
                unique_source(100 + tag), None, 0, "global", "intel",
                None, None, seed=0, trace=False,
            )
            request["x_sleep"] = 0.4
            ServiceClient(thread.url, timeout=120.0)._submit(
                "compile", request
            )

        threads = [
            _threading.Thread(target=slow_submit, args=(i,))
            for i in range(6)
        ]
        for t in threads:
            t.start()
        grew = False
        for _ in range(100):
            if client.healthz()["workers"] > 1:
                grew = True
                break
            time.sleep(0.05)
        for t in threads:
            t.join()
        assert grew, "autoscaler never grew the pool"
        assert client.healthz()["workers"] <= 3
        prom = client.metrics_prometheus()
        assert "repro_autoscale_resizes_total" in prom


def test_server_autoscale_bounds_validated():
    with pytest.raises(ServiceError):
        from repro.service.server import ReproService

        ReproService(min_workers=3, max_workers=2)
