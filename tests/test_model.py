"""Model types: group nodes, superword statements, schedule validation."""

import pytest

from repro.analysis import DependenceGraph
from repro.ir import parse_block
from repro.slp import (
    GroupNode,
    InvalidScheduleError,
    Schedule,
    ScheduledSingle,
    SuperwordStatement,
)
from repro.slp.model import pack_data

DECLS = "float A[64]; float a, b, c, d, p;"


def block_of(src):
    return parse_block(src, DECLS)


class TestGroupNode:
    def test_of_statement_positions(self):
        block = block_of("a = b * p;")
        node = GroupNode.of_statement(block[0])
        assert node.size == 1
        assert len(node.positions) == 3  # target, b, p
        assert node.element_bits == 32

    def test_merge_builds_multiset_positions(self):
        block = block_of("a = b * p; c = d * p;")
        merged = GroupNode.merge(
            GroupNode.of_statement(block[0]),
            GroupNode.of_statement(block[1]),
        )
        assert merged.size == 2
        assert merged.sids == (0, 1)
        assert merged.positions[2] == pack_data(
            [("var", "p"), ("var", "p")]
        )

    def test_merge_rejects_non_isomorphic(self):
        block = block_of("a = b * p; c = d + p;")
        with pytest.raises(ValueError):
            GroupNode.merge(
                GroupNode.of_statement(block[0]),
                GroupNode.of_statement(block[1]),
            )

    def test_can_merge_requires_same_size(self):
        block = block_of("a = b * p; c = d * p; b = a * p;")
        deps = DependenceGraph(block)
        pair = GroupNode.merge(
            GroupNode.of_statement(block[0]),
            GroupNode.of_statement(block[1]),
        )
        single = GroupNode.of_statement(block[2])
        assert not pair.can_merge_with(single, deps, 1024)

    def test_can_merge_respects_datapath(self):
        block = block_of("a = b * p; c = d * p;")
        deps = DependenceGraph(block)
        one = GroupNode.of_statement(block[0])
        two = GroupNode.of_statement(block[1])
        assert one.can_merge_with(two, deps, 64)
        assert not one.can_merge_with(two, deps, 32)


class TestSuperwordStatement:
    def test_requires_two_lanes(self):
        block = block_of("a = b * p;")
        with pytest.raises(ValueError):
            SuperwordStatement((block[0],))

    def test_requires_isomorphism(self):
        block = block_of("a = b * p; c = d + p;")
        with pytest.raises(ValueError):
            SuperwordStatement((block[0], block[1]))

    def test_ordered_packs_follow_lane_order(self):
        block = block_of("a = b * p; c = d * p;")
        sw = SuperwordStatement((block[0], block[1]))
        assert sw.target_pack() == (("var", "a"), ("var", "c"))
        flipped = sw.reordered((1, 0))
        assert flipped.target_pack() == (("var", "c"), ("var", "a"))

    def test_width_bits(self):
        block = block_of("a = b * p; c = d * p;")
        sw = SuperwordStatement((block[0], block[1]))
        assert sw.width_bits == 64


class TestScheduleValidation:
    def test_valid_schedule_passes(self):
        block = block_of("a = A[0]; b = A[1]; c = a + b;")
        deps = DependenceGraph(block)
        schedule = Schedule(block)
        schedule.items = [
            SuperwordStatement((block[0], block[1])),
            ScheduledSingle(block[2]),
        ]
        schedule.validate(deps, datapath_bits=64)

    def test_rejects_dependent_lanes(self):
        block = block_of("a = b * p; b = a * p;")
        # Constructor allows it (isomorphic) but validation must fail.
        schedule = Schedule(block)
        schedule.items = [SuperwordStatement((block[0], block[1]))]
        with pytest.raises(InvalidScheduleError):
            schedule.validate()

    def test_rejects_dependence_violation(self):
        block = block_of("a = A[0]; c = a + b;")
        schedule = Schedule(block)
        schedule.items = [
            ScheduledSingle(block[1]),
            ScheduledSingle(block[0]),
        ]
        with pytest.raises(InvalidScheduleError):
            schedule.validate()

    def test_rejects_missing_statement(self):
        block = block_of("a = A[0]; b = A[1];")
        schedule = Schedule(block)
        schedule.items = [ScheduledSingle(block[0])]
        with pytest.raises(InvalidScheduleError):
            schedule.validate()

    def test_rejects_duplicate_statement(self):
        block = block_of("a = A[0]; b = A[1];")
        schedule = Schedule(block)
        schedule.items = [
            ScheduledSingle(block[0]),
            ScheduledSingle(block[0]),
            ScheduledSingle(block[1]),
        ]
        with pytest.raises(InvalidScheduleError):
            schedule.validate()

    def test_rejects_overwide_superword(self):
        block = block_of("a = A[0]; b = A[1];")
        schedule = Schedule(block)
        schedule.items = [SuperwordStatement((block[0], block[1]))]
        with pytest.raises(InvalidScheduleError):
            schedule.validate(datapath_bits=32)

    def test_grouped_fraction(self):
        block = block_of("a = A[0]; b = A[1]; c = a + b;")
        schedule = Schedule(block)
        schedule.items = [
            SuperwordStatement((block[0], block[1])),
            ScheduledSingle(block[2]),
        ]
        assert schedule.grouped_fraction() == pytest.approx(2 / 3)
