"""End-to-end tests for ``repro.service``.

A real :class:`ReproService` runs on a background thread with an
ephemeral port and a sharded worker pool; a blocking
:class:`ServiceClient` drives it over actual HTTP. The headline
assertion is the acceptance criterion: for every benchmark kernel ×
variant, the server-returned ``CompileResult`` and ``ExecutionReport``
are dataclass-``==`` equal to a local in-process compile + simulate of
the same inputs.

Failure injection (worker crashes, slow jobs) goes through the
``x_*`` test hooks, which the server only honors because the fixture
starts it with ``test_hooks=True``.
"""

from __future__ import annotations

import io
import threading
import time

import pytest

from repro import (
    FLOAT32,
    ParseError,
    ProgramBuilder,
    ServiceError,
    Variant,
    WorkerCrashError,
    compile_program,
    simulate,
)
from repro.bench import KERNELS
from repro.errors import ServiceBusyError
from repro.ir.printer import format_program
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread
from repro.telemetry import LOG, bind_request_id, validate_exposition
from repro.telemetry.log import parse_jsonl
from repro.vm import MACHINES

#: Small problem size: the full 16-kernel × 5-variant matrix stays in
#: the sub-second range locally, and the service adds only HTTP + IPC.
N = 2


def unique_source(tag: int) -> str:
    """A tiny valid program whose content key depends on ``tag`` —
    gives tests fresh, never-before-seen cache keys on demand."""
    builder = ProgramBuilder(f"unique{tag}")
    X = builder.array("X", (16,), FLOAT32)
    Y = builder.array("Y", (16,), FLOAT32)
    with builder.loop("i", 0, 16) as i:
        builder.assign(Y[i], X[i] * (tag + 2) + Y[i])
    return format_program(builder.build())


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("service-store")
    with ServiceThread(
        shards=2, cache_dir=str(cache_dir), test_hooks=True
    ) as thread:
        yield thread


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url, timeout=120.0)


def submit_with_hooks(client, kind, source, **hooks):
    """Submit a job with ``x_*`` failure-injection fields attached.
    The public client deliberately has no API for these — they are
    wire-level fields the server only reads under ``test_hooks``."""
    request = ServiceClient._job_request(
        source, None, 0, "global", "intel", None, None, seed=0, trace=False
    )
    request.update(hooks)
    return client._submit(kind, request)


# -- the acceptance criterion --------------------------------------------------


@pytest.mark.parametrize("kernel", sorted(KERNELS))
@pytest.mark.parametrize("variant", [v.value for v in Variant])
def test_served_results_equal_local(client, kernel, variant):
    """Server compile+simulate == local compile+simulate, dataclass-==,
    for every benchmark kernel × variant."""
    program = KERNELS[kernel].build(N)
    local = compile_program(program, Variant(variant), MACHINES["intel"]())
    report, memory = simulate(local, seed=7)

    outcome = client.simulate(kernel=kernel, n=N, variant=variant, seed=7)

    assert outcome.result == local
    assert outcome.report == report
    assert outcome.memory.state_equal(memory)
    assert (
        outcome.summary["total_statements"] == local.stats.total_statements
    )


def test_source_and_kernel_requests_agree(client):
    """Submitting the printed source is identical to submitting the
    kernel by name — the server canonicalizes both to the same key."""
    program = KERNELS["milc"].build(N)
    by_kernel = client.compile(kernel="milc", n=N, variant="global")
    by_source = client.compile(
        source=format_program(program), variant="global"
    )
    assert by_source.key == by_kernel.key
    assert by_source.result == by_kernel.result
    assert by_source.cached, "second request for the key must hit warm state"


# -- caching and coalescing ----------------------------------------------------


def test_repeat_request_is_cached(client):
    source = unique_source(1001)
    first = client.simulate(source=source, variant="slp")
    second = client.simulate(source=source, variant="slp")
    assert not first.cached
    assert second.cached
    assert second.result == first.result
    assert second.report == first.report


def test_concurrent_identical_requests_coalesce(server, client):
    """N identical in-flight requests trigger exactly one compile; the
    followers share the leader's payload."""
    before = client.metrics()["service"]
    source = unique_source(2002)
    fan_out = 6
    outcomes = [None] * fan_out
    errors = []

    def submit(slot):
        try:
            outcomes[slot] = submit_with_hooks(
                client, "simulate", source, x_sleep=0.4
            )
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=submit, args=(slot,))
        for slot in range(fan_out)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    assert all(outcome is not None for outcome in outcomes)
    for outcome in outcomes[1:]:
        assert outcome.result == outcomes[0].result
        assert outcome.report == outcomes[0].report

    after = client.metrics()["service"]
    assert after["pool"]["jobs"] - before["pool"]["jobs"] == 1
    assert after["leads"] - before["leads"] == 1
    assert after["coalesced"] - before["coalesced"] == fan_out - 1
    assert sum(1 for o in outcomes if o.coalesced) == fan_out - 1

    # Correlation linkage: every follower names the leader's request ID.
    (leader,) = [o for o in outcomes if not o.coalesced]
    assert leader.leader_request_id is None
    for follower in outcomes:
        if follower.coalesced:
            assert follower.request_id != leader.request_id
            assert follower.leader_request_id == leader.request_id


# -- failure model -------------------------------------------------------------


def test_worker_crash_retries_transparently(server, client, tmp_path):
    """A worker killed mid-job is respawned and the job retried once —
    the client just sees a successful response."""
    before = client.metrics()["service"]["pool"]
    flag = tmp_path / "crash-once"
    outcome = submit_with_hooks(
        client, "compile", unique_source(3003), x_crash_once=str(flag)
    )
    assert outcome.result is not None
    assert flag.exists(), "the first attempt must have reached the worker"
    after = client.metrics()["service"]["pool"]
    assert after["retries"] - before["retries"] == 1
    assert after["restarts"] - before["restarts"] >= 1


def test_worker_crash_twice_is_structured(server, client):
    """A shard that dies on the retry too surfaces a WorkerCrashError —
    a structured diagnostic, never a hung client or raw traceback."""
    with pytest.raises(WorkerCrashError) as excinfo:
        submit_with_hooks(client, "compile", unique_source(4004), x_crash=True)
    assert excinfo.value.rule == "service.worker-crash"
    assert excinfo.value.stage == "service"
    # The diagnostic carries the request's correlation ID across the
    # pickle boundary, so client logs join to server/worker logs.
    assert excinfo.value.request_id
    int(excinfo.value.request_id, 16)
    # The pool recovered: the same server keeps serving.
    assert client.healthz()["ok"]
    assert client.compile(source=unique_source(4005)).result is not None


def test_coalesced_crash_fans_out_with_own_request_ids(server, client):
    """When the leader's job dies, every coalescing follower gets the
    same WorkerCrashError — but stamped with the follower's *own*
    request ID, not the leader's, so each caller's logs still join."""
    source = unique_source(4500)
    fan_out = 4
    rids = [f"f4500{slot:03x}00000000" for slot in range(fan_out)]
    failures = [None] * fan_out
    surprises = []

    def submit(slot):
        request = ServiceClient._job_request(
            source, None, 0, "global", "intel", None, None,
            seed=0, trace=False,
        )
        # x_sleep runs first (holds the coalesce window open for the
        # followers), then x_crash kills both pool attempts.
        request.update(
            request_id=rids[slot], x_sleep=0.4, x_crash=True
        )
        try:
            client._submit("compile", request)
            surprises.append(slot)
        except WorkerCrashError as exc:
            failures[slot] = exc

    threads = [
        threading.Thread(target=submit, args=(slot,))
        for slot in range(fan_out)
    ]
    threads[0].start()
    time.sleep(0.1)  # let the leader register the in-flight key
    for thread in threads[1:]:
        thread.start()
    for thread in threads:
        thread.join()

    assert not surprises, "a crash-injected job somehow succeeded"
    assert all(failures)
    for slot, exc in enumerate(failures):
        assert exc.request_id == rids[slot], (slot, exc.request_id)
    # They really did share one failure (not four crash cycles).
    coalesced = client.metrics()["service"]["coalesced"]
    assert coalesced >= fan_out - 1
    assert client.healthz()["ok"]


# -- connection reuse ----------------------------------------------------------


def test_keep_alive_reuses_one_connection(server):
    """The warm path's TCP tax: many requests, one connect."""
    fresh = ServiceClient(server.url, timeout=60.0)
    fresh.healthz()
    fresh.compile(source=unique_source(4600))
    fresh.compile(source=unique_source(4600))  # warm hit
    fresh.metrics()
    assert fresh.connections_opened == 1
    fresh.close()


def test_keep_alive_off_connects_per_request(server):
    legacy = ServiceClient(server.url, timeout=60.0, keep_alive=False)
    legacy.healthz()
    legacy.healthz()
    legacy.healthz()
    assert legacy.connections_opened == 3


def test_keep_alive_survives_error_responses(server):
    """The server closes the connection after a 4xx (framing may be
    suspect); the client transparently reconnects for the next call."""
    fresh = ServiceClient(server.url, timeout=60.0)
    fresh.healthz()
    with pytest.raises(ParseError):
        fresh.compile(source="not a program")
    out = fresh.compile(source=unique_source(4601))
    assert out.result is not None
    assert fresh.connections_opened == 2  # one reconnect, not per-call


def test_job_errors_reraise_original_type(client):
    """Parse failures come back as the pickled original exception with
    its stage context, not an opaque 500."""
    with pytest.raises(ParseError) as excinfo:
        client.compile(source="this is not a program")
    assert excinfo.value.stage == "parse"


def test_request_validation(client):
    with pytest.raises(ServiceError, match="unknown kernel"):
        client.compile(kernel="nonexistent")
    with pytest.raises(ServiceError, match="unknown variant"):
        client.compile(kernel="milc", n=N, variant="turbo")
    with pytest.raises(ServiceError, match="unsupported schema"):
        client._request(
            "POST",
            "/v1/compile",
            {"schema": "repro.service/99", "kernel": "milc"},
        )
    with pytest.raises(ServiceError, match="not allowed"):
        client._request("GET", "/v1/compile")
    with pytest.raises(ServiceError, match="no such endpoint"):
        client._request("GET", "/v1/frobnicate")


def test_backpressure_sheds_load(tmp_path):
    """With queue_limit=1, a second distinct job while the first is
    in flight is shed with 429 + Retry-After (ServiceBusyError)."""
    with ServiceThread(
        shards=1,
        queue_limit=1,
        cache_dir=str(tmp_path / "store"),
        test_hooks=True,
    ) as thread:
        client = ServiceClient(thread.url, timeout=60.0)
        slow_done = []

        def slow():
            slow_done.append(
                submit_with_hooks(
                    client, "compile", unique_source(5005), x_sleep=1.5
                )
            )

        worker = threading.Thread(target=slow)
        worker.start()
        deadline = time.time() + 5.0
        busy = None
        try:
            # Wait for the slow job to occupy the only queue slot...
            while time.time() < deadline:
                if client.metrics()["service"]["queue"]["depth"] >= 1:
                    break
                time.sleep(0.02)
            # ...then distinct keys are shed while it is in flight.
            while time.time() < deadline:
                try:
                    client.compile(source=unique_source(6006))
                except ServiceBusyError as exc:
                    busy = exc
                    break
                time.sleep(0.05)
        finally:
            worker.join()
        assert busy is not None, "never saw a 429 while the queue was full"
        assert busy.retry_after >= 1.0
        assert client.metrics()["service"]["queue"]["rejected"] >= 1
        assert slow_done and slow_done[0].result is not None


# -- observability -------------------------------------------------------------


def test_healthz_and_metrics_shape(server, client):
    health = client.healthz()
    assert health["ok"] and not health["draining"]
    assert health["workers"] == 2

    service = client.metrics()["service"]
    assert service["served"] > 0
    assert service["requests"]["/v1/simulate"] > 0
    assert service["pool"]["shards"] == 2
    assert service["store"]["entries"] > 0
    assert service["latency_ms"]["total"]["count"] > 0
    assert service["latency_ms"]["execute"]["count"] > 0
    # The JSON bucket keys are pinned: deployed consumers parse them.
    assert list(service["latency_ms"]["total"]["buckets"]) == [
        "le_1", "le_2", "le_5", "le_10", "le_20", "le_50", "le_100",
        "le_200", "le_500", "le_1000", "le_2000", "le_5000", "inf",
    ]
    # The merged cross-worker perf registry is exported too.
    assert client.metrics()["perf"]


def test_request_ids_minted_and_echoed(client):
    """Every response carries a request ID: client-minted by default,
    caller-supplied when one is already bound."""
    outcome = client.compile(source=unique_source(7007))
    assert outcome.request_id and len(outcome.request_id) == 16
    int(outcome.request_id, 16)

    with bind_request_id("feedc0de00001111"):
        echoed = client.compile(source=unique_source(7007))
    assert echoed.request_id == "feedc0de00001111"
    assert echoed.cached


def test_log_events_share_the_request_correlation_id(server, client):
    """The structured log joins on request_id: the admission decision
    and the completion record for one request carry the same ID."""
    sink = io.StringIO()
    LOG.configure(stream=sink, service="test-serve")
    try:
        outcome = client.compile(source=unique_source(8008))
    finally:
        LOG.disable()
    records = [
        record
        for record in parse_jsonl(sink.getvalue())
        if record.get("request_id") == outcome.request_id
    ]
    events = {record["event"] for record in records}
    assert "request.lead" in events
    assert "request.done" in events
    done = next(r for r in records if r["event"] == "request.done")
    assert done["service"] == "test-serve"
    assert done["ms"] >= 0


def test_prometheus_exposition_is_valid_and_opt_in(server, client):
    """``?format=prometheus`` serves exposition-format text that the
    validator accepts; the default ``/metrics`` stays JSON."""
    client.compile(kernel="cg", n=N, variant="global")
    text = client.metrics_prometheus()
    assert validate_exposition(text) == []
    assert "# TYPE repro_requests_served_total counter" in text
    assert "repro_request_stage_latency_ms_bucket" in text
    assert 'repro_service_state{facet="shards"} 2' in text
    assert "repro_perf_section_seconds_total" in text
    # JSON default unchanged by the new format.
    assert client.metrics()["service"]["served"] > 0


def test_trace_requests_carry_a_summary(client):
    outcome = client.compile(kernel="cg", n=N, variant="global", trace=True)
    assert outcome.trace_summary is not None


def test_drain_is_clean(tmp_path):
    """Stopping the service drains in-flight work and frees the port;
    afterwards the client sees it as down."""
    thread = ServiceThread(
        shards=1, cache_dir=str(tmp_path / "store"), test_hooks=True
    ).start()
    client = ServiceClient(thread.url)
    assert client.compile(kernel="milc", n=N).result is not None
    thread.stop()
    assert not thread._thread.is_alive()
    assert not client.is_up(timeout=1.0)
