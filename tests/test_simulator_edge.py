"""Simulator and memory edge cases: addressing, hoisting semantics,
loop-invariant correctness, remainder handling, and nested execution."""

import numpy as np
import pytest

from repro import (
    CompilerOptions,
    Variant,
    compile_program,
    intel_dunnington,
    simulate,
)
from repro.ir import parse_program
from repro.vm import Memory, Simulator


def run(src, variant=Variant.GLOBAL, **options):
    program = parse_program(src)
    result = compile_program(
        program, variant, intel_dunnington(), CompilerOptions(**options)
    )
    return simulate(result)


class TestMemoryAddressing:
    def test_arrays_get_disjoint_address_ranges(self):
        memory = Memory(parse_program("double A[16]; double B[16];"))
        a_end = memory.address("A", 15) + memory.elem_bytes("A")
        assert memory.address("B", 0) >= a_end

    def test_addresses_are_line_aligned_at_base(self):
        memory = Memory(parse_program("double A[16]; float B[16];"))
        assert memory.address("A", 0) % 64 == 0
        assert memory.address("B", 0) % 64 == 0

    def test_elem_bytes_follow_type(self):
        memory = Memory(parse_program("double A[4]; float B[4];"))
        assert memory.elem_bytes("A") == 8
        assert memory.elem_bytes("B") == 4

    def test_int_arrays_initialized_integral(self):
        memory = Memory(parse_program("int K[8];"))
        values = memory.arrays["K"]
        assert np.array_equal(values, values.astype(np.int64))


class TestHoistingSemantics:
    def test_hoisted_constant_sees_preloop_scalar_value(self):
        """A loop-invariant scalar pack must read the value the scalar
        has when the loop is entered."""
        src = """
        double A[64]; double B[64];
        double k;
        k = 3.0;
        for (i = 0; i < 16; i += 1) {
            B[i] = A[i] * k;
        }
        """
        _, base = run(src, Variant.SCALAR)
        _, mem = run(src, Variant.GLOBAL)
        assert mem.state_equal(base)

    def test_scalar_written_in_loop_not_hoisted(self):
        src = """
        double A[64]; double B[64];
        double k;
        for (i = 0; i < 16; i += 1) {
            k = A[i] * 2.0;
            B[i] = k + A[i];
        }
        """
        _, base = run(src, Variant.SCALAR)
        _, mem = run(src, Variant.GLOBAL)
        assert mem.state_equal(base)

    def test_array_written_in_loop_blocks_hoisting(self):
        # A[0] is loop-invariant as an address but the loop writes A.
        src = """
        double A[64]; double B[64];
        for (i = 1; i < 16; i += 1) {
            B[i] = A[0] + B[i];
            A[0] = A[0] + 1.0;
        }
        """
        _, base = run(src, Variant.SCALAR)
        _, mem = run(src, Variant.GLOBAL)
        assert mem.state_equal(base)


class TestLoopShapes:
    def test_empty_loop_body_is_noop(self):
        src = "double A[8]; for (i = 0; i < 0; i += 1) { A[0] = 1.0; }"
        report, mem = run(src, Variant.SCALAR)
        assert report.total_instructions == 0

    def test_single_iteration_loop(self):
        src = "double A[8]; for (i = 3; i < 4; i += 1) { A[i] = 7.0; }"
        _, base = run(src, Variant.SCALAR)
        _, mem = run(src)
        assert mem.state_equal(base)
        assert mem.arrays["A"][3] == 7.0

    def test_loop_with_step(self):
        src = """
        double A[64];
        for (i = 0; i < 32; i += 4) { A[i] = 1.0; }
        """
        _, base = run(src, Variant.SCALAR)
        _, mem = run(src)
        assert mem.state_equal(base)

    def test_remainder_iterations_execute(self):
        src = """
        double A[64];
        for (i = 0; i < 13; i += 1) { A[i] = A[i] + 1.0; }
        """
        _, base = run(src, Variant.SCALAR)
        _, mem = run(src)
        assert mem.state_equal(base)

    def test_three_level_nest(self):
        src = """
        double T[512];
        for (i = 0; i < 4; i += 1) {
            for (j = 0; j < 4; j += 1) {
                for (k = 0; k < 8; k += 1) {
                    T[128*i + 32*j + k] = T[128*i + 32*j + k] * 2.0;
                }
            }
        }
        """
        _, base = run(src, Variant.SCALAR)
        _, mem = run(src)
        assert mem.state_equal(base)


class TestRMWAndAliasing:
    def test_read_modify_write_superword(self):
        src = """
        double A[64];
        for (i = 0; i < 16; i += 1) { A[i] = A[i] * 1.5; }
        """
        _, base = run(src, Variant.SCALAR)
        _, mem = run(src)
        assert mem.state_equal(base)

    def test_loop_carried_flow_stays_correct(self):
        # A[i+1] reads what the previous iteration wrote.
        src = """
        double A[64];
        for (i = 0; i < 30; i += 1) {
            A[i + 1] = A[i] * 0.5 + A[i + 1];
        }
        """
        _, base = run(src, Variant.SCALAR)
        _, mem = run(src)
        assert mem.state_equal(base)

    def test_scalar_reduction_not_broken(self):
        src = """
        double A[64]; double s;
        for (i = 0; i < 32; i += 1) { s = s + A[i]; }
        """
        _, base = run(src, Variant.SCALAR)
        _, mem = run(src)
        assert mem.state_equal(base)


class TestStateEqual:
    def test_tolerant_comparison(self):
        m1 = Memory(parse_program("double A[4];"))
        m2 = Memory(parse_program("double A[4];"))
        m2.arrays["A"][0] *= 1.0 + 1e-12
        assert not m1.state_equal(m2)
        assert m1.state_equal(m2, rtol=1e-9)

    def test_scalar_differences_detected(self):
        m1 = Memory(parse_program("double x;"))
        m2 = Memory(parse_program("double x;"))
        m2.scalars["x"] += 1.0
        assert not m1.state_equal(m2)
