"""Affine index function arithmetic, evaluation, and substitution."""

import pytest

from repro.ir import Affine


class TestConstruction:
    def test_of_builds_normalized_coeffs(self):
        a = Affine.of(3, i=4)
        assert a.const == 3
        assert a.coeff("i") == 4
        assert a.coeff("j") == 0

    def test_zero_coefficients_are_dropped(self):
        a = Affine.of(1, i=0, j=2)
        assert a.variables() == ("j",)

    def test_var_constructor(self):
        assert Affine.var("i") == Affine.of(0, i=1)
        assert Affine.var("i", 3) == Affine.of(0, i=3)

    def test_is_constant(self):
        assert Affine.of(7).is_constant
        assert not Affine.of(7, i=1).is_constant


class TestArithmetic:
    def test_addition_merges_terms(self):
        a = Affine.of(1, i=2) + Affine.of(3, i=5, j=1)
        assert a == Affine.of(4, i=7, j=1)

    def test_addition_with_int(self):
        assert Affine.of(1, i=2) + 5 == Affine.of(6, i=2)
        assert 5 + Affine.of(1, i=2) == Affine.of(6, i=2)

    def test_subtraction_cancels(self):
        a = Affine.of(4, i=3) - Affine.of(1, i=3)
        assert a == Affine.of(3)
        assert a.is_constant

    def test_negation(self):
        assert -Affine.of(2, i=1) == Affine.of(-2, i=-1)

    def test_scaling(self):
        assert Affine.of(1, i=2) * 3 == Affine.of(3, i=6)
        assert 3 * Affine.of(1, i=2) == Affine.of(3, i=6)

    def test_scaling_by_zero(self):
        assert Affine.of(5, i=2) * 0 == Affine.of(0)

    def test_scaling_by_non_int_raises(self):
        with pytest.raises(TypeError):
            Affine.of(1) * 1.5


class TestEvaluation:
    def test_evaluate(self):
        a = Affine.of(3, i=4, j=-1)
        assert a.evaluate({"i": 2, "j": 5}) == 3 + 8 - 5

    def test_evaluate_requires_bindings(self):
        with pytest.raises(KeyError):
            Affine.of(0, i=1).evaluate({})

    def test_constant_needs_no_bindings(self):
        assert Affine.of(9).evaluate({}) == 9


class TestSubstitution:
    def test_unroll_style_substitution(self):
        # i -> i + 2 (copy 2 of an unrolled loop with step 1)
        a = Affine.of(3, i=4)
        shifted = a.substitute({"i": Affine.var("i") + 2})
        assert shifted == Affine.of(11, i=4)

    def test_substitution_leaves_other_indices(self):
        a = Affine.of(0, i=1, j=1)
        shifted = a.substitute({"i": Affine.var("i") + 1})
        assert shifted == Affine.of(1, i=1, j=1)

    def test_substitution_into_multiple_terms(self):
        a = Affine.of(0, i=2)
        widened = a.substitute({"i": Affine.of(0, i=4) + 1})
        assert widened == Affine.of(2, i=8)


class TestOrderingAndDisplay:
    def test_affines_are_sortable(self):
        values = sorted([Affine.of(3, i=1), Affine.of(1), Affine.of(2, i=1)])
        assert values[0] == Affine.of(1)

    def test_str_renders_terms(self):
        assert str(Affine.of(3, i=4)) == "4*i + 3"
        assert str(Affine.of(-2, i=1)) == "i - 2"
        assert str(Affine.of(0)) == "0"
