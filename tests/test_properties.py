"""Property-based tests (hypothesis): random well-formed programs in,
valid schedules and preserved semantics out.

The generators produce single-loop programs over a few arrays and
scalars with random affine accesses and random expression shapes —
deliberately adversarial for the grouping/scheduling machinery
(aliasing writes, reductions, reused temporaries, strided refs).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    CompilerOptions,
    Variant,
    compile_program,
    intel_dunnington,
    simulate,
)
from repro.analysis import DependenceGraph
from repro.ir import (
    Affine,
    ArrayRef,
    BasicBlock,
    BinOp,
    Const,
    FLOAT64,
    Loop,
    Program,
    Statement,
    Var,
)
from repro.slp import (
    holistic_slp_schedule,
    greedy_slp_schedule,
    iterative_grouping,
)

N_ARRAY = 64
TRIPS = 8

SCALARS = ["s0", "s1", "s2", "s3"]
ARRAYS = ["X", "Y"]


@st.composite
def affine_subscripts(draw):
    coeff = draw(st.sampled_from([1, 1, 1, 2, 3]))
    const = draw(st.integers(min_value=0, max_value=8))
    return Affine.of(const, i=coeff)


@st.composite
def leaf_exprs(draw):
    kind = draw(st.sampled_from(["var", "ref", "const", "ref"]))
    if kind == "var":
        return Var(draw(st.sampled_from(SCALARS)), FLOAT64)
    if kind == "const":
        return Const(
            float(draw(st.integers(min_value=1, max_value=9))), FLOAT64
        )
    array = draw(st.sampled_from(ARRAYS))
    return ArrayRef(array, (draw(affine_subscripts()),), FLOAT64)


@st.composite
def exprs(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(leaf_exprs())
    op = draw(st.sampled_from(["+", "-", "*", "+", "*"]))
    left = draw(exprs(depth=depth - 1))
    right = draw(exprs(depth=depth - 1))
    return BinOp(op, left, right)


@st.composite
def statements(draw, sid):
    if draw(st.booleans()):
        target = Var(draw(st.sampled_from(SCALARS)), FLOAT64)
    else:
        target = ArrayRef(
            draw(st.sampled_from(ARRAYS)),
            (draw(affine_subscripts()),),
            FLOAT64,
        )
    return Statement(sid, target, draw(exprs()))


@st.composite
def programs(draw):
    count = draw(st.integers(min_value=2, max_value=6))
    body = BasicBlock(
        [draw(statements(sid)) for sid in range(count)]
    )
    program = Program("random")
    for name in ARRAYS:
        program.declare_array(name, (N_ARRAY,), FLOAT64)
    for name in SCALARS:
        program.declare_scalar(name, FLOAT64)
    program.add(Loop("i", 0, TRIPS, 1, body))
    return program


COMMON = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestScheduleValidity:
    @given(program=programs())
    @settings(**COMMON)
    def test_global_schedule_always_valid(self, program):
        block = next(iter(program.loops())).body
        deps = DependenceGraph(block)
        schedule = holistic_slp_schedule(
            block, deps, 128, lambda n: program.arrays[n]
        )
        schedule.validate(deps, datapath_bits=128)

    @given(program=programs())
    @settings(**COMMON)
    def test_greedy_schedule_always_valid(self, program):
        block = next(iter(program.loops())).body
        deps = DependenceGraph(block)
        schedule = greedy_slp_schedule(
            block, deps, lambda n: program.arrays[n], 128
        )
        schedule.validate(deps, datapath_bits=128)

    @given(program=programs())
    @settings(**COMMON)
    def test_grouping_units_partition_the_block(self, program):
        block = next(iter(program.loops())).body
        deps = DependenceGraph(block)
        units, _ = iterative_grouping(block, deps, 128)
        sids = sorted(s for u in units for s in u.sids)
        assert sids == [s.sid for s in block]


class TestDifferentialExecution:
    @given(program=programs(), seed=st.integers(min_value=0, max_value=3))
    @settings(**COMMON)
    def test_global_preserves_semantics(self, program, seed):
        scalar = compile_program(
            program, Variant.SCALAR, intel_dunnington()
        )
        _, base = simulate(scalar, seed=seed)
        optimized = compile_program(
            program, Variant.GLOBAL, intel_dunnington()
        )
        _, memory = simulate(optimized, seed=seed)
        assert memory.state_equal(base)

    @given(program=programs())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_layout_preserves_semantics(self, program):
        scalar = compile_program(
            program, Variant.SCALAR, intel_dunnington()
        )
        _, base = simulate(scalar)
        optimized = compile_program(
            program, Variant.GLOBAL_LAYOUT, intel_dunnington()
        )
        _, memory = simulate(optimized)
        assert memory.state_equal(base)

    @given(program=programs())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_gated_global_never_slower_than_scalar(self, program):
        scalar = compile_program(
            program, Variant.SCALAR, intel_dunnington()
        )
        s_report, _ = simulate(scalar)
        optimized = compile_program(
            program, Variant.GLOBAL, intel_dunnington()
        )
        report, _ = simulate(optimized)
        # The static gate is cache-oblivious, so allow a small epsilon
        # for cache-effect inversions.
        assert report.cycles <= s_report.cycles * 1.05 + 50


class TestConditionalRoundTrip:
    """The conditional/select surface syntax: parse -> print -> parse is
    a fixed point, and if-converted execution matches true branch
    semantics on randomly shaped single-level regions."""

    RELOPS = ["<", "<=", ">", ">=", "==", "!="]
    # Condition leaves and branch targets are disjoint: the parser
    # rejects regions whose non-final statements write condition
    # operands (the select form would re-evaluate the mutated cond).
    LEAVES = ["X[i]", "X[i + 1]", "s1"]
    TARGETS = ["Y[i]", "s0"]
    RHS = ["X[i] * 2.0", "s0 + Y[i]", "X[i + 1] - s1", "0.5"]

    @st.composite
    def conditional_sources(draw, self=None):
        cls = TestConditionalRoundTrip
        rng = draw
        left = rng(st.sampled_from(cls.LEAVES))
        right = rng(st.sampled_from(cls.LEAVES))
        relop = rng(st.sampled_from(cls.RELOPS))
        cond = f"{left} {relop} {right}"
        merge = rng(st.booleans())
        lines = []
        if rng(st.booleans()):
            lines.append(f"s1 = {rng(st.sampled_from(cls.RHS))};")
        if merge:
            target = rng(st.sampled_from(cls.TARGETS))
            lines.append(f"if ({cond}) {{")
            lines.append(f"    {target} = {rng(st.sampled_from(cls.RHS))};")
            lines.append("} else {")
            lines.append(f"    {target} = {rng(st.sampled_from(cls.RHS))};")
            lines.append("}")
        else:
            then_targets = rng(
                st.lists(
                    st.sampled_from(cls.TARGETS),
                    min_size=1,
                    max_size=2,
                    unique=True,
                )
            )
            lines.append(f"if ({cond}) {{")
            for target in then_targets:
                lines.append(
                    f"    {target} = {rng(st.sampled_from(cls.RHS))};"
                )
            lines.append("}")
        body = "\n        ".join(lines)
        return f"""
        double X[64]; double Y[64];
        double s0, s1;
        for (i = 0; i < 8; i += 1) {{
        {body}
        }}
        """

    @given(src=conditional_sources())
    @settings(**COMMON)
    def test_parse_print_parse_is_fixed_point(self, src):
        from repro.ir import format_program, parse_program

        printed = format_program(parse_program(src))
        assert format_program(parse_program(printed)) == printed
        assert "if (" in printed

    @given(
        src=conditional_sources(),
        seed=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_if_converted_execution_matches_branch_semantics(
        self, src, seed
    ):
        from repro.ir import parse_program
        from repro.vm.simulator import interpret_program

        program = parse_program(src)
        oracle = interpret_program(program, seed=seed)
        optimized = compile_program(
            program, Variant.GLOBAL, intel_dunnington()
        )
        _, memory = simulate(optimized, seed=seed)
        assert memory.state_equal(oracle)


class TestAffineProperties:
    @given(
        coeffs=st.dictionaries(
            st.sampled_from(["i", "j", "k"]),
            st.integers(min_value=-8, max_value=8),
            max_size=3,
        ),
        const=st.integers(min_value=-100, max_value=100),
        i=st.integers(min_value=-10, max_value=10),
        j=st.integers(min_value=-10, max_value=10),
        k=st.integers(min_value=-10, max_value=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_affine_arithmetic_matches_evaluation(
        self, coeffs, const, i, j, k
    ):
        env = {"i": i, "j": j, "k": k}
        a = Affine.of(const, **coeffs)
        b = Affine.of(const * 2, **{n: c * 3 for n, c in coeffs.items()})
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)
        assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)
        assert (a * 5).evaluate(env) == a.evaluate(env) * 5
        assert (-a).evaluate(env) == -a.evaluate(env)

    @given(
        const=st.integers(min_value=-50, max_value=50),
        coeff=st.integers(min_value=-8, max_value=8),
        shift=st.integers(min_value=-8, max_value=8),
        i=st.integers(min_value=-10, max_value=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_substitution_is_evaluation_composition(
        self, const, coeff, shift, i
    ):
        a = Affine.of(const, i=coeff)
        shifted = a.substitute({"i": Affine.var("i") + shift})
        assert shifted.evaluate({"i": i}) == a.evaluate({"i": i + shift})
