"""The grouping machinery: candidates, the VP graph, auxiliary-graph
weights (including the paper's 2/3 example), and decision updates."""

from fractions import Fraction

import pytest

from repro.analysis import DependenceGraph
from repro.ir import parse_block
from repro.slp import (
    BasicGrouping,
    GroupNode,
    VariablePackGraph,
    find_candidates,
)
from repro.slp.grouping import (
    eliminate_conflicts,
    pack_adjacency_score,
    pack_materialization_penalty,
)
from repro.slp.model import pack_data

DECLS = "float A[512]; float B[512]; float v1, v2, v3, v5, v7;"

# Figure 2's example block (the paper's figure is partially garbled in
# the source; this is the reconstruction consistent with Figures 4-6:
# candidate groups {S0,S1}, {S0,S2}, {S3,S4}, and weight 2/3 for
# {S3,S4}).
FIG2 = """
v1 = v3;
v2 = v5;
v5 = v7;
v3 = v1 + v1;
v5 = v2 + v5;
"""


def make(src, decls=DECLS):
    block = parse_block(src, decls)
    deps = DependenceGraph(block)
    units = [GroupNode.of_statement(s) for s in block]
    return block, deps, units


class TestCandidates:
    def test_isomorphic_independent_pairs_only(self):
        block, deps, units = make(
            "v1 = v3 + 0.0; v2 = v5 + 0.0; v3 = v1 * v1;"
        )
        candidates = find_candidates(units, deps, 128)
        sets = {tuple(sorted(c.sid_set)) for c in candidates}
        assert (0, 1) in sets         # isomorphic, independent
        assert (0, 2) not in sets     # not isomorphic (+ vs *), dependent
        assert (1, 2) not in sets

    def test_copies_not_isomorphic_to_adds(self):
        block, deps, units = make("v1 = v3; v2 = v5 + v7;")
        assert find_candidates(units, deps, 128) == []

    def test_dependent_pair_excluded(self):
        block, deps, units = make("v1 = v3 + 0.0; v2 = v1 + 0.0;")
        assert find_candidates(units, deps, 128) == []

    def test_datapath_width_respected(self):
        block, deps, units = make("v1 = v3 + 0.0; v2 = v5 + 0.0;")
        assert find_candidates(units, deps, 32) == []
        assert len(find_candidates(units, deps, 64)) == 1


class TestVariablePackGraph:
    def test_figure4_structure(self):
        block, deps, units = make(FIG2)
        candidates = find_candidates(units, deps, 64)
        vp = VariablePackGraph(candidates, deps)
        sets = {tuple(sorted(c.sid_set)) for c in candidates}
        assert sets == {(0, 1), (0, 2), (3, 4)}
        # Conflicting candidates: {S0,S1} and {S0,S2} share S0.
        i01 = next(
            i for i, c in enumerate(candidates)
            if sorted(c.sid_set) == [0, 1]
        )
        i02 = next(
            i for i, c in enumerate(candidates)
            if sorted(c.sid_set) == [0, 2]
        )
        i34 = next(
            i for i, c in enumerate(candidates)
            if sorted(c.sid_set) == [3, 4]
        )
        assert vp.candidates_conflict(i01, i02)
        assert not vp.candidates_conflict(i01, i34)
        # Each candidate contributes one node per operand position.
        assert all(len(vp.nodes_of_candidate(i)) >= 2 for i in (i01, i34))

    def test_remove_candidate_drops_nodes_and_edges(self):
        block, deps, units = make(FIG2)
        candidates = find_candidates(units, deps, 64)
        vp = VariablePackGraph(candidates, deps)
        before_nodes = len(vp.nodes)
        vp.remove_candidate(0)
        assert len(vp.nodes) < before_nodes
        assert vp.nodes_of_candidate(0) == []


class TestWeights:
    def test_paper_example_two_thirds(self):
        """Figure 6: the candidate {S3,S4} gets weight 2/3."""
        block, deps, units = make(FIG2)
        grouping = BasicGrouping(units, deps, 64)
        i34 = next(
            i
            for i, c in enumerate(grouping.candidates)
            if sorted(c.sid_set) == [3, 4]
        )
        assert grouping.weight(i34) == Fraction(2, 3)

    def test_weight_counts_decided_groups(self):
        block, deps, units = make(FIG2)
        grouping = BasicGrouping(units, deps, 64)
        i01 = next(
            i
            for i, c in enumerate(grouping.candidates)
            if sorted(c.sid_set) == [0, 1]
        )
        before = grouping.weight(
            next(
                i
                for i, c in enumerate(grouping.candidates)
                if sorted(c.sid_set) == [3, 4]
            )
        )
        grouping.decided.append(i01)
        grouping.decided_packs.extend(grouping.candidates[i01].packs)
        after = grouping.weight(
            next(
                i
                for i, c in enumerate(grouping.candidates)
                if sorted(c.sid_set) == [3, 4]
            )
        )
        # The decided group's packs still support {S3,S4}'s reuses.
        assert after >= before - Fraction(1, 100)


class TestConflictElimination:
    def test_removes_highest_degree_first(self):
        from repro.slp.conflict import PackNode

        a = PackNode(pack_data([("var", "x"), ("var", "y")]), 0, 0)
        b = PackNode(pack_data([("var", "x"), ("var", "y")]), 1, 0)
        c = PackNode(pack_data([("var", "x"), ("var", "y")]), 2, 0)
        adjacency = {a: {b, c}, b: {a}, c: {a}}
        survivors = eliminate_conflicts([a, b, c], adjacency)
        assert a not in survivors
        assert set(survivors) == {b, c}

    def test_no_edges_keeps_everything(self):
        from repro.slp.conflict import PackNode

        nodes = [
            PackNode(pack_data([("var", "x"), ("var", "y")]), i, 0)
            for i in range(3)
        ]
        survivors = eliminate_conflicts(nodes, {n: set() for n in nodes})
        assert set(survivors) == set(nodes)


class TestDecisions:
    def test_run_groups_everything_groupable(self):
        block, deps, units = make(FIG2)
        decided, leftovers, trace = BasicGrouping(units, deps, 64).run()
        grouped_sids = set()
        for group in decided:
            grouped_sids |= group.sid_set
        # {S0,S1} and {S0,S2} conflict: only one survives, plus {S3,S4}.
        assert len(decided) == 2
        assert frozenset({3, 4}) in {g.sid_set for g in decided}

    def test_trace_records_weights(self):
        block, deps, units = make(FIG2)
        _, _, trace = BasicGrouping(units, deps, 64).run()
        assert all(isinstance(w, Fraction) for _, w in trace.decisions)


class TestPackScores:
    def test_contiguous_memory_pack_scores_high(self):
        block = parse_block("v1 = A[0]; v2 = A[1];", DECLS)
        keys = [
            GroupNode.of_statement(s).positions[1][0] for s in block
        ]
        data = pack_data(keys)
        assert pack_adjacency_score(data, None) == 2
        assert pack_materialization_penalty(data, None) == 0.0

    def test_strided_memory_pack_penalized(self):
        block = parse_block("v1 = A[0]; v2 = A[7];", DECLS)
        keys = [
            GroupNode.of_statement(s).positions[1][0] for s in block
        ]
        data = pack_data(keys)
        assert pack_adjacency_score(data, None) == 0
        assert pack_materialization_penalty(data, None) > 0

    def test_splat_pack_is_free(self):
        data = pack_data([("var", "x"), ("var", "x")])
        assert pack_adjacency_score(data, None) == 1
        assert pack_materialization_penalty(data, None) == 0.0

    def test_scalar_pack_penalties(self):
        from repro.slp.grouping import (
            SCALAR_GATHER_PENALTY,
            SCALAR_SCATTER_PENALTY,
            PenaltyContext,
        )

        data = pack_data([("var", "x"), ("var", "y")])
        assert (
            pack_materialization_penalty(data, None)
            == SCALAR_GATHER_PENALTY
        )
        assert (
            pack_materialization_penalty(data, None, is_store=True)
            == SCALAR_SCATTER_PENALTY
        )
        # Known-contiguous arena slots make the pack free.
        context = PenaltyContext(
            scalar_slots=(
                ("x", ("float", 0)),
                ("y", ("float", 1)),
            )
        )
        assert pack_materialization_penalty(data, None, context) == 0.0

    def test_reuse_saving_scales_with_pack_cost(self):
        from repro.slp.grouping import pack_reuse_saving

        const_pack = pack_data(
            [("const", "float", 1.0), ("const", "float", 2.0)]
        )
        scalar_pack = pack_data([("var", "x"), ("var", "y")])
        assert pack_reuse_saving(const_pack, None) == 0.0
        assert pack_reuse_saving(scalar_pack, None) > 0.0
