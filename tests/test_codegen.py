"""Vector code generation: reuse, shuffles, pack/store mode
classification, hoisting, and sound invalidation."""

import pytest

from repro.analysis import DependenceGraph
from repro.ir import parse_block, parse_program
from repro.layout import default_scalar_layout
from repro.slp import holistic_slp_schedule
from repro.vm import (
    PackMode,
    ScalarExec,
    StoreMode,
    VOp,
    VPack,
    VShuffle,
    VStore,
    VectorCodegen,
    intel_dunnington,
)

DECLS = """
float A[512]; float B[512]; float C[512];
float a, b, c, d, p, q;
"""


def compile_src(src, datapath=64, innermost=None):
    program = parse_program(DECLS + src)
    block = next(iter(program.blocks()))
    deps = DependenceGraph(block)
    schedule = holistic_slp_schedule(
        block, deps, datapath, lambda n: program.arrays[n]
    )
    codegen = VectorCodegen(
        program, intel_dunnington(), default_scalar_layout(program), innermost
    )
    preheader, body = codegen.compile(schedule)
    return codegen, preheader, body


def of_type(instrs, kind):
    return [i for i in instrs if isinstance(i, kind)]


class TestPackModes:
    def test_contiguous_aligned_load(self):
        _, _, body = compile_src("B[0] = A[0] + p; B[1] = A[1] + p;")
        packs = of_type(body, VPack)
        assert any(p.mode is PackMode.CONTIG_ALIGNED for p in packs)

    def test_contiguous_unaligned_load(self):
        _, _, body = compile_src("B[0] = A[1] + p; B[1] = A[2] + p;")
        packs = of_type(body, VPack)
        assert any(p.mode is PackMode.CONTIG_UNALIGNED for p in packs)

    def test_strided_gather(self):
        _, _, body = compile_src("B[0] = A[0] + p; B[1] = A[9] + p;")
        packs = of_type(body, VPack)
        assert any(p.mode is PackMode.GATHER for p in packs)

    def test_scalar_broadcast(self):
        _, _, body = compile_src("B[0] = A[0] * p; B[1] = A[1] * p;")
        packs = of_type(body, VPack)
        assert any(p.mode is PackMode.BROADCAST for p in packs)

    def test_immediate_vector(self):
        _, _, body = compile_src("B[0] = A[0] * 2.0; B[1] = A[1] * 3.0;")
        packs = of_type(body, VPack)
        assert any(p.mode is PackMode.IMMEDIATE for p in packs)

    def test_scalar_contig_uses_arena_layout(self):
        # a and b are declared adjacently: slots 0 and 1.
        _, _, body = compile_src("B[0] = a + A[0]; B[1] = b + A[1];")
        packs = of_type(body, VPack)
        assert any(p.mode is PackMode.SCALAR_CONTIG for p in packs)

    def test_scalar_gather_when_not_adjacent(self):
        _, _, body = compile_src("B[0] = a + A[0]; B[1] = q + A[1];")
        packs = of_type(body, VPack)
        assert any(p.mode is PackMode.SCALAR_GATHER for p in packs)


class TestStoreModes:
    def test_contiguous_store(self):
        _, _, body = compile_src("B[0] = A[0] + p; B[1] = A[1] + p;")
        stores = of_type(body, VStore)
        assert stores[0].mode is StoreMode.CONTIG_ALIGNED

    def test_scatter_store(self):
        _, _, body = compile_src("B[0] = A[0] + p; B[9] = A[1] + p;")
        stores = of_type(body, VStore)
        assert any(s.mode is StoreMode.SCATTER for s in stores)

    def test_scalar_contig_store(self):
        _, _, body = compile_src("a = A[0] + p; b = A[1] + p;")
        stores = of_type(body, VStore)
        assert any(s.mode is StoreMode.SCALAR_CONTIG for s in stores)


class TestReuse:
    def test_direct_reuse_emits_nothing(self):
        codegen, _, body = compile_src(
            """
            a = A[0]; b = A[1];
            B[0] = a * p; B[1] = b * p;
            """
        )
        assert codegen.reuse_hits >= 1
        # <a, b> must not be packed twice.
        scalar_packs = [
            i
            for i in of_type(body, VPack)
            if i.mode in (PackMode.SCALAR_CONTIG, PackMode.SCALAR_GATHER)
        ]
        assert len(scalar_packs) == 0  # reused from the vload result

    def test_write_invalidates_live_pack(self):
        """After <a,b> is redefined, a later use must re-materialize."""
        codegen, _, body = compile_src(
            """
            a = A[0]; b = A[1];
            B[0] = a * p; B[1] = b * p;
            a = A[8]; b = A[9];
            C[0] = a * p; C[1] = b * p;
            """
        )
        # The second <a,b> use must come from the second load's result,
        # not the first: count the VOp consuming each.
        stores = of_type(body, VStore)
        assert len(stores) >= 4

    def test_scheduler_prefers_direct_reuse_over_shuffle(self):
        codegen, _, body = compile_src(
            """
            a = A[0]; b = A[1];
            B[0] = a * p; B[1] = b * p;
            B[2] = b * q; B[3] = a * q;
            """
        )
        # The scheduler reorders the last group's lanes so <a,b> is a
        # direct reuse: no shuffle is needed at all.
        assert not of_type(body, VShuffle)
        assert codegen.reuse_hits >= 2

    def test_shuffle_for_reordered_reuse(self):
        """With lane orders pinned, a reversed source pack must come
        from the live register via one VShuffle, not from memory."""
        from repro.slp import Schedule, SuperwordStatement

        program = parse_program(
            DECLS
            + "B[0] = a * p; B[1] = b * p;"
            + "C[0] = b * q; C[1] = a * q;"
        )
        block = next(iter(program.blocks()))
        schedule = Schedule(block)
        schedule.items = [
            SuperwordStatement((block[0], block[1])),  # sources (a, b)
            SuperwordStatement((block[2], block[3])),  # sources (b, a)
        ]
        codegen = VectorCodegen(
            program,
            intel_dunnington(),
            default_scalar_layout(program),
            None,
        )
        _, body = codegen.compile(schedule)
        shuffles = of_type(body, VShuffle)
        assert len(shuffles) == 1
        assert shuffles[0].perm == (1, 0)
        assert codegen.shuffle_reuses == 1


class TestHoisting:
    def test_invariant_pack_goes_to_preheader(self):
        _, preheader, body = compile_src(
            "B[0] = A[0] * p; B[1] = A[1] * q;",
            innermost="i",
        )
        assert any(isinstance(i, VPack) for i in preheader)

    def test_varying_pack_stays_in_body(self):
        program = parse_program(
            DECLS
            + "for (i = 0; i < 8; i += 1) {"
            "  B[2*i] = A[2*i] + p; B[2*i + 1] = A[2*i + 1] + p; }"
        )
        loop = next(iter(program.loops()))
        deps = DependenceGraph(loop.body)
        schedule = holistic_slp_schedule(
            loop.body, deps, 64, lambda n: program.arrays[n]
        )
        codegen = VectorCodegen(
            program,
            intel_dunnington(),
            default_scalar_layout(program),
            "i",
        )
        preheader, body = codegen.compile(schedule)
        mem_packs = [
            i
            for i in body
            if isinstance(i, VPack)
            and i.mode
            in (PackMode.CONTIG_ALIGNED, PackMode.CONTIG_UNALIGNED)
        ]
        assert mem_packs, "loop-varying loads must stay in the body"

    def test_no_hoisting_for_straight_blocks(self):
        _, preheader, body = compile_src(
            "B[0] = A[0] * p; B[1] = A[1] * q;", innermost=None
        )
        assert preheader == []


class TestScalarStatements:
    def test_single_compiles_to_scalar_exec(self):
        _, _, body = compile_src("a = A[0] / p;")
        assert isinstance(body[0], ScalarExec)
        assert body[0].ops == ("/",)

    def test_vop_tree_matches_expression(self):
        _, _, body = compile_src(
            "B[0] = A[0] * p + a; B[1] = A[1] * p + a;"
        )
        ops = [i.op for i in of_type(body, VOp)]
        assert ops == ["*", "+"]
