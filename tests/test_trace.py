"""The structured decision tracer: determinism, round-trip, provenance
consistency between the compile-time trace and the emitted plan, schema
validation, runtime attribution, and the diff view."""

import pytest

from repro.compiler import CompilerOptions, Variant, compile_program
from repro.ir import parse_program
from repro.trace import (
    SCHEMA,
    TRACE,
    canonical_jsonl,
    diff_records,
    fold_report,
    load_jsonl,
    provenance_id,
    render_tree,
    summarize,
    to_jsonl,
    validate_records,
)
from repro.vm import MACHINES, Simulator
from repro.vm.codegen import CompiledLoop, CompiledStraight

SRC = """
float A[64]; float B[64]; float C[64];
float ar, ai, br, bi;
for (i = 0; i < 16; i += 1) {
    ar = A[2*i];
    ai = A[2*i + 1];
    br = B[2*i];
    bi = B[2*i + 1];
    C[2*i] = ar * br - ai * bi;
    C[2*i + 1] = ar * bi + ai * br;
}
"""


@pytest.fixture(autouse=True)
def _clean_tracer():
    TRACE.disable()
    TRACE.reset()
    yield
    TRACE.disable()
    TRACE.reset()


def traced_compile(variant=Variant.GLOBAL, simulate=True, src=SRC):
    program = parse_program(src)
    machine = MACHINES["intel"]()
    TRACE.reset()
    TRACE.enable(variant=variant.value)
    try:
        result = compile_program(
            program, variant, machine, CompilerOptions()
        )
        if simulate:
            report, _memory = Simulator(result.machine).run(result.plan)
            fold_report(report)
        records = TRACE.records()
    finally:
        TRACE.disable()
        TRACE.reset()
    return result, records


def plan_instructions(plan):
    for unit in plan.units:
        if isinstance(unit, CompiledStraight):
            yield from unit.instructions
        elif isinstance(unit, CompiledLoop):
            loop = unit
            while loop is not None:
                yield from loop.preheader
                yield from loop.body
                loop = loop.inner


class TestDeterminism:
    def test_same_compile_gives_byte_identical_canonical_trace(self):
        _, first = traced_compile()
        _, second = traced_compile()
        assert canonical_jsonl(first) == canonical_jsonl(second)

    def test_only_wall_clock_fields_differ_between_runs(self):
        _, records = traced_compile()
        # The canonical form strips something real: the raw form carries
        # wall_ms on span ends.
        assert any("wall_ms" in record for record in records)
        assert "wall_ms" not in canonical_jsonl(records)


class TestRoundTrip:
    def test_jsonl_round_trips(self):
        _, records = traced_compile()
        assert load_jsonl(to_jsonl(records)) == records

    def test_wrong_schema_is_rejected(self):
        with pytest.raises(ValueError):
            load_jsonl('{"schema": "someone.else/9", "meta": {}}\n')

    def test_empty_trace_is_rejected(self):
        with pytest.raises(ValueError):
            load_jsonl("")

    def test_header_carries_schema_and_meta(self):
        _, records = traced_compile()
        assert records[0]["schema"] == SCHEMA
        assert records[0]["meta"]["variant"] == "global"


class TestSchema:
    def test_real_trace_validates_clean(self):
        _, records = traced_compile()
        assert validate_records(records) == []

    def test_validate_flags_unknown_events_and_bad_seq(self):
        _, records = traced_compile()
        broken = [dict(r) for r in records]
        broken[1]["ev"] = "nonsense.event"
        broken[2]["seq"] = 0
        errors = validate_records(broken)
        assert any("unknown event" in e for e in errors)
        assert any("not strictly increasing" in e for e in errors)


class TestProvenance:
    def test_plan_provenance_ids_come_from_grouping_commits(self):
        result, records = traced_compile(Variant.GLOBAL)
        committed = {
            r["prov"] for r in records if r.get("ev") == "grouping.commit"
        }
        plan_provs = {
            instr.prov
            for instr in plan_instructions(result.plan)
            if getattr(instr, "prov", None) is not None
        }
        superword_provs = {p for p in plan_provs if "+" in p}
        assert superword_provs
        assert superword_provs <= committed

    def test_runtime_attribution_uses_the_same_ids(self):
        _, records = traced_compile(Variant.GLOBAL)
        committed = {
            r["prov"] for r in records if r.get("ev") == "grouping.commit"
        }
        attributed = {
            r["prov"]
            for r in records
            if r.get("ev") == "runtime.provenance" and "+" in r["prov"]
        }
        assert attributed
        assert attributed <= committed

    def test_provenance_ids_are_block_qualified(self):
        _, records = traced_compile(Variant.GLOBAL)
        provs = [
            r["prov"] for r in records if r.get("ev") == "grouping.commit"
        ]
        assert provs
        assert all(p.startswith("b0:") for p in provs)

    def test_provenance_id_formatting(self):
        assert provenance_id((3, 1), "b2") == "b2:S1+S3"
        assert provenance_id((7,)) == "S7"

    def test_untraced_compile_emits_untagged_plan(self):
        TRACE.disable()
        TRACE.reset()
        program = parse_program(SRC)
        machine = MACHINES["intel"]()
        result = compile_program(
            program, Variant.GLOBAL, machine, CompilerOptions()
        )
        assert all(
            getattr(instr, "prov", None) is None
            for instr in plan_instructions(result.plan)
        )
        # ...and nothing was recorded while disabled.
        assert TRACE.records()[1:] == []


class TestRuntimeAttribution:
    def test_simulator_populates_provenance_costs(self):
        result, _ = traced_compile(Variant.GLOBAL, simulate=False)
        report, _memory = Simulator(result.machine).run(result.plan)
        assert report.provenance
        assert all(
            cost.cycles >= 0 and cost.instructions > 0
            for cost in report.provenance.values()
        )

    def test_array_cache_hits_never_negative(self):
        result, _ = traced_compile(Variant.GLOBAL, simulate=False)
        report, _memory = Simulator(result.machine).run(result.plan)
        assert report.array_accesses
        for array, accesses in report.array_accesses.items():
            assert accesses >= report.array_misses.get(array, 0)

    def test_runtime_events_present_in_trace(self):
        _, records = traced_compile(Variant.GLOBAL)
        kinds = {r.get("ev") for r in records[1:]}
        assert "runtime.provenance" in kinds
        assert "runtime.array_cache" in kinds
        assert "runtime.totals" in kinds


class TestViews:
    def test_render_tree_mentions_decisions(self):
        _, records = traced_compile()
        tree = render_tree(records)
        assert "grouping.commit" in tree
        assert "runtime.totals" in tree

    def test_summarize_counts_decisions(self):
        _, records = traced_compile()
        summary = summarize(records)
        assert summary["decisions"] > 0
        assert summary["events"] == len(records) - 1
        assert summary["runtime"]["cycles"] > 0

    def test_diff_between_variants_reports_deltas(self):
        _, global_records = traced_compile(Variant.GLOBAL)
        _, slp_records = traced_compile(Variant.SLP)
        text = diff_records(global_records, slp_records, "global", "slp")
        assert "--- global" in text
        assert "+++ slp" in text
        assert "totals: cycles" in text
        assert "dcycles=" in text or "decisions only" in text

    def test_diff_of_identical_traces_is_all_shared(self):
        _, records = traced_compile()
        text = diff_records(records, records, "a", "b")
        assert "decisions only in a (0)" in text
        assert "decisions only in b (0)" in text


class TestDisabledCost:
    def test_disabled_span_is_shared_null_object(self):
        TRACE.disable()
        a = TRACE.span("x", foo=1)
        b = TRACE.span("y")
        assert a is b

    def test_disabled_event_records_nothing(self):
        TRACE.disable()
        TRACE.event("grouping.commit", prov="b0:S0+S1")
        assert TRACE.records()[1:] == []

    def test_reset_while_span_open_does_not_corrupt(self):
        TRACE.enable()
        span = TRACE.span("outer")
        span.__enter__()
        TRACE.reset()
        span.__exit__(None, None, None)  # stale exit: must be a no-op
        with TRACE.span("fresh"):
            TRACE.event("grouping.round", round=0, units=1, decided=0,
                        leftovers=1)
        names = [r.get("name") for r in TRACE.records()[1:]
                 if r.get("ev") == "span.begin"]
        assert names == ["fresh"]
