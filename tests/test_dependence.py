"""Intra-block dependence analysis: flow/anti/output, alias tests,
group-level relations."""

import pytest

from repro.analysis import (
    DepKind,
    DependenceGraph,
    refs_may_alias,
    refs_must_alias,
)
from repro.ir import Affine, ArrayRef, FLOAT32, parse_block

DECLS = "float A[256]; float B[256]; float a, b, c;"


def graph(src):
    return DependenceGraph(parse_block(src, DECLS))


def ref(array, **coeffs):
    const = coeffs.pop("const", 0)
    return ArrayRef(array, (Affine.of(const, **coeffs),), FLOAT32)


class TestAliasTests:
    def test_same_affine_must_alias(self):
        assert refs_must_alias(ref("A", i=4), ref("A", i=4))

    def test_different_array_never_aliases(self):
        assert not refs_may_alias(ref("A", i=4), ref("B", i=4))

    def test_constant_offset_difference_proves_independence(self):
        assert not refs_may_alias(ref("A", i=4), ref("A", i=4, const=3))

    def test_different_coefficients_may_alias(self):
        # A[4i] and A[2i] coincide at i = 0.
        assert refs_may_alias(ref("A", i=4), ref("A", i=2))
        assert not refs_must_alias(ref("A", i=4), ref("A", i=2))


class TestScalarDependences:
    def test_flow_dependence(self):
        g = graph("a = b + 1.0; c = a * 2.0;")
        kinds = {(d.src, d.dst, d.kind) for d in g.edges}
        assert (0, 1, DepKind.FLOW) in kinds

    def test_anti_dependence(self):
        g = graph("c = a * 2.0; a = b + 1.0;")
        kinds = {(d.src, d.dst, d.kind) for d in g.edges}
        assert (0, 1, DepKind.ANTI) in kinds

    def test_output_dependence(self):
        g = graph("a = b + 1.0; a = c + 2.0;")
        kinds = {(d.src, d.dst, d.kind) for d in g.edges}
        assert (0, 1, DepKind.OUTPUT) in kinds

    def test_independent_statements(self):
        g = graph("a = b + 1.0; c = b + 2.0;")
        assert g.independent(0, 1)


class TestArrayDependences:
    def test_provably_distinct_elements_independent(self):
        g = graph("A[0] = a; A[1] = b;")
        assert g.independent(0, 1)

    def test_may_alias_is_conservative(self):
        # A[0] vs A[0]: same element.
        g = graph("A[0] = a; b = A[0];")
        assert g.dependent(0, 1)

    def test_read_read_no_dependence(self):
        g = graph("a = A[0]; b = A[0];")
        assert g.independent(0, 1)


class TestGroupLevel:
    def test_group_depends_direction(self):
        g = graph("a = b + 1.0; c = a * 2.0; A[0] = c;")
        assert g.group_depends(frozenset({0}), frozenset({1}))
        assert not g.group_depends(frozenset({1}), frozenset({0}))

    def test_groups_conflict_on_shared_statement(self):
        g = graph("a = b + 1.0; c = b + 2.0; A[0] = b;")
        assert g.groups_conflict(frozenset({0, 1}), frozenset({1, 2}))

    def test_groups_conflict_on_dependence_cycle(self):
        # S0 -> S1 (flow on a), S2 -> S3 (flow on b): grouping {S0,S3}
        # with {S1,S2} creates a cycle.
        g = graph(
            "a = b + 1.0;"   # S0
            "c = a * 2.0;"   # S1 depends on S0
            "b = c + 3.0;"   # S2 depends on S1 (and anti on S0)
            "A[0] = b;"      # S3 depends on S2
        )
        assert g.groups_conflict(frozenset({0, 3}), frozenset({1, 2}))

    def test_predecessors_and_successors(self):
        g = graph("a = b + 1.0; c = a * 2.0;")
        assert g.successors(0) == frozenset({1})
        assert g.predecessors(1) == frozenset({0})
