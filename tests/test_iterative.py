"""Iterative grouping (Section 4.2.2): widening to fill the datapath."""

import pytest

from repro.analysis import DependenceGraph
from repro.ir import parse_block
from repro.slp import iterative_grouping

DECLS = "float A[512]; float B[512]; float p;"


def units_for(src, datapath):
    block = parse_block(src, DECLS)
    deps = DependenceGraph(block)
    units, traces = iterative_grouping(block, deps, datapath)
    return block, units, traces


EIGHT_ISOMORPHIC = "".join(
    f"B[{i}] = A[{i}] * p;" for i in range(8)
)


class TestWidening:
    def test_pairs_at_64_bits(self):
        _, units, traces = units_for(EIGHT_ISOMORPHIC, 64)
        sizes = sorted(u.size for u in units)
        assert sizes == [2, 2, 2, 2]
        assert len(traces) >= 1

    def test_quads_at_128_bits(self):
        _, units, _ = units_for(EIGHT_ISOMORPHIC, 128)
        assert sorted(u.size for u in units) == [4, 4]

    def test_full_width_at_256_bits(self):
        _, units, _ = units_for(EIGHT_ISOMORPHIC, 256)
        assert [u.size for u in units] == [8]

    def test_width_capped_by_datapath(self):
        _, units, _ = units_for(EIGHT_ISOMORPHIC, 512)
        # Only 8 statements exist: one 8-wide group, not 16-wide.
        assert [u.size for u in units] == [8]

    def test_wider_groups_merge_contiguously(self):
        _, units, _ = units_for(EIGHT_ISOMORPHIC, 256)
        group = units[0]
        # The 8-wide group covers B[0..7] in one contiguous superword.
        assert group.sids == tuple(range(8))


class TestOddCounts:
    def test_leftover_single_stays_scalar(self):
        src = "".join(f"B[{i}] = A[{i}] * p;" for i in range(5))
        _, units, _ = units_for(src, 256)
        sizes = sorted(u.size for u in units)
        assert sizes == [1, 4]

    def test_non_isomorphic_statements_never_merge(self):
        src = "B[0] = A[0] * p; B[1] = A[1] + p;"
        _, units, _ = units_for(src, 128)
        assert all(u.size == 1 for u in units)


class TestRoundStructure:
    def test_traces_one_per_round(self):
        _, units, traces = units_for(EIGHT_ISOMORPHIC, 256)
        # rounds: 2-wide, 4-wide, 8-wide (final round may be empty).
        assert len(traces) >= 3

    def test_partition_invariant(self):
        block, units, _ = units_for(EIGHT_ISOMORPHIC, 256)
        sids = sorted(s for u in units for s in u.sids)
        assert sids == [s.sid for s in block]
