"""The structured error API: hierarchy, context, pickling, diagnostics."""

import pickle

import pytest

from repro import (
    CompilerOptions,
    Diagnostic,
    OptionsError,
    ParseError,
    ReproError,
    ScheduleError,
    SuiteError,
    Variant,
    compile_program,
    intel_dunnington,
)
from repro.errors import (
    IRError,
    IRTypeError,
    ScheduleCycleError,
    SimulationError,
    StatementLookupError,
    VerifyError,
    format_failure,
)
from repro.ir import BasicBlock, parse_program


class TestHierarchy:
    """New code catches ``ReproError``; old ``except`` clauses keep
    working because every subclass keeps its historical builtin base."""

    @pytest.mark.parametrize(
        "cls, legacy",
        [
            (ParseError, ValueError),
            (IRError, ValueError),
            (IRTypeError, TypeError),
            (StatementLookupError, KeyError),
            (OptionsError, ValueError),
            (VerifyError, ValueError),
            (ScheduleError, ValueError),
            (ScheduleCycleError, RuntimeError),
            (SimulationError, ValueError),
        ],
    )
    def test_dual_inheritance(self, cls, legacy):
        assert issubclass(cls, ReproError)
        assert issubclass(cls, legacy)

    def test_parse_error_importable_from_old_location(self):
        # Deprecation shim: the historical home keeps working.
        from repro.ir.parser import ParseError as FromParser

        assert FromParser is ParseError

    def test_one_except_catches_the_family(self):
        with pytest.raises(ReproError):
            parse_program("float a; a = ;")

    def test_lookup_error_str_is_not_a_repr(self):
        # KeyError.__str__ would print the repr of the message.
        try:
            BasicBlock()[3]
        except StatementLookupError as exc:
            assert str(exc).startswith("no statement with sid 3")


class TestContext:
    def test_default_stage(self):
        assert ParseError("x").stage == "parse"
        assert ScheduleError("x").stage == "schedule"

    def test_with_context_fills_only_missing(self):
        err = VerifyError("bad", stage="schedule", rule="schedule.width")
        err.with_context(stage="codegen", block="b2")
        assert err.stage == "schedule"   # never overwritten
        assert err.block == "b2"

    def test_str_carries_context(self):
        err = VerifyError("bad pack", stage="schedule", block="b1",
                          rule="schedule.width")
        text = str(err)
        assert "bad pack" in text
        assert "stage=schedule" in text
        assert "block=b1" in text
        assert "rule=schedule.width" in text

    def test_pickle_roundtrip_keeps_context(self):
        err = VerifyError("bad", stage="plan", block="b0",
                          provenance="b0:S1+S2", rule="plan.lanes")
        back = pickle.loads(pickle.dumps(err))
        assert type(back) is VerifyError
        assert back.message == "bad"
        assert back.stage == "plan"
        assert back.block == "b0"
        assert back.provenance == "b0:S1+S2"
        assert back.rule == "plan.lanes"

    def test_suite_error_pickles_failures(self):
        err = SuiteError({"milc": "Traceback ...", "lbm": "Traceback ..."})
        back = pickle.loads(pickle.dumps(err))
        assert back.failures == err.failures
        assert "2 kernel(s) failed" in str(back)


class TestDiagnostic:
    def test_from_error_pulls_attributes(self):
        err = VerifyError("oversized", stage="schedule", block="b1",
                          rule="schedule.width")
        diag = Diagnostic.from_error(err)
        assert diag.stage == "schedule"
        assert diag.block == "b1"
        assert diag.rule == "schedule.width"
        assert diag.error == "VerifyError"
        assert diag.action == "fallback"

    def test_from_plain_exception(self):
        diag = Diagnostic.from_error(
            ZeroDivisionError("boom"), stage="codegen", block="b3"
        )
        assert diag.stage == "codegen"
        assert diag.block == "b3"
        assert diag.error == "ZeroDivisionError"

    def test_str(self):
        diag = Diagnostic("schedule", "b0", "VerifyError", "bad")
        assert "[schedule in b0]" in str(diag)
        assert "-> fallback" in str(diag)


class TestOptionsValidation:
    def test_unknown_on_error_rejected(self):
        program = parse_program("float a; a = 1.0;")
        with pytest.raises(OptionsError):
            compile_program(
                program, Variant.GLOBAL, intel_dunnington(),
                CompilerOptions(on_error="ignore"),
            )

    def test_unknown_checks_rejected(self):
        program = parse_program("float a; a = 1.0;")
        with pytest.raises(OptionsError):
            compile_program(
                program, Variant.GLOBAL, intel_dunnington(),
                CompilerOptions(checks="ir,bogus"),
            )


def test_format_failure_includes_traceback():
    try:
        raise ValueError("inner detail")
    except ValueError as exc:
        text = format_failure(exc)
    assert "inner detail" in text
    assert "Traceback" in text
