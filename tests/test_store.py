"""The content-addressed artifact store (``repro.store``).

Covers the promotion contract (the old ``CompileCache`` import path
stays alive), the robustness fix for corrupt on-disk entries, LRU
pruning, and — the part that matters for the service — many processes
hammering one store directory without torn reads or lost results.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro import ArtifactStore, Variant, compile_program
from repro.bench import KERNELS
from repro.store import CompileCache as StoreAlias
from repro.bench.suite import CompileCache as SuiteAlias
from repro.vm import MACHINES


@pytest.fixture()
def machine():
    return MACHINES["intel"]()


@pytest.fixture()
def compiled(machine):
    program = KERNELS["milc"].build(8)
    result = compile_program(program, Variant.GLOBAL, machine)
    key = ArtifactStore.key(program, Variant.GLOBAL, machine, None)
    return program, result, key


class TestPromotion:
    def test_old_import_paths_are_the_store(self):
        assert StoreAlias is ArtifactStore
        assert SuiteAlias is ArtifactStore

    def test_bench_package_exports_both(self):
        import repro.bench as bench

        assert bench.CompileCache is ArtifactStore
        assert bench.ArtifactStore is ArtifactStore

    def test_round_trip_equality(self, tmp_path, compiled):
        _program, result, key = compiled
        store = ArtifactStore(tmp_path)
        assert store.get(key) is None
        store.put(key, result)
        assert store.get(key) == result
        assert (store.hits, store.misses, store.puts) == (1, 1, 1)

    def test_key_covers_the_whole_compile_input(self, machine, compiled):
        program, _result, key = compiled
        other = KERNELS["lbm"].build(8)
        assert key != ArtifactStore.key(
            other, Variant.GLOBAL, machine, None
        )
        assert key != ArtifactStore.key(
            program, Variant.SLP, machine, None
        )
        assert key != ArtifactStore.key(
            program, Variant.GLOBAL, machine.with_datapath(256), None
        )


class TestCorruptEntries:
    def test_truncated_pickle_is_a_miss_and_evicted(
        self, tmp_path, compiled
    ):
        _program, result, key = compiled
        store = ArtifactStore(tmp_path)
        store.put(key, result)
        path = store._path(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])

        assert store.get(key) is None
        assert store.corrupt_evictions == 1
        assert not path.exists(), "the poisoned entry must be deleted"
        # The store recovers: a rewrite makes the key readable again.
        store.put(key, result)
        assert store.get(key) == result

    def test_garbage_bytes_are_a_miss_and_evicted(self, tmp_path, compiled):
        _program, result, key = compiled
        store = ArtifactStore(tmp_path)
        store._path(key).write_bytes(b"not a pickle at all")
        assert store.get(key) is None
        assert store.corrupt_evictions == 1
        assert store.stats().corrupt_evictions == 1
        assert store.stats().entries == 0

    def test_wrong_pickle_payload_still_loads(self, tmp_path, compiled):
        # A *valid* pickle of the wrong thing is not corruption — the
        # store is content-addressed, so this can only happen to code
        # that bypasses key(); it must not crash either way.
        _program, _result, key = compiled
        store = ArtifactStore(tmp_path)
        store._path(key).write_bytes(pickle.dumps({"not": "a result"}))
        assert store.get(key) == {"not": "a result"}


class TestStatsAndPrune:
    def test_stats_counts_entries_and_bytes(self, tmp_path, compiled):
        _program, result, key = compiled
        store = ArtifactStore(tmp_path)
        store.put(key, result)
        store.put(key + "b", result)
        stats = store.stats()
        assert stats.entries == 2
        assert stats.bytes == sum(
            p.stat().st_size for p in store.root.glob("*.pkl")
        )
        assert stats.bytes > 0

    def test_prune_evicts_lru_first(self, tmp_path, compiled):
        _program, result, key = compiled
        store = ArtifactStore(tmp_path)
        keys = [f"{key}{i}" for i in range(4)]
        for index, k in enumerate(keys):
            store.put(k, result)
            # Distinct, strictly increasing mtimes without sleeping.
            os.utime(store._path(k), (1000 + index, 1000 + index))
        # A hit refreshes recency: keys[0] becomes the newest.
        assert store.get(keys[0]) is not None
        entry_bytes = store._path(keys[0]).stat().st_size
        removed = store.prune(2 * entry_bytes)
        assert removed == 2
        assert store.pruned == 2
        # The oldest untouched entries (keys[1], keys[2]) went first.
        assert store.get(keys[0]) is not None
        assert store.get(keys[3]) is not None
        assert not store._path(keys[1]).exists()
        assert not store._path(keys[2]).exists()

    def test_prune_noop_under_budget(self, tmp_path, compiled):
        _program, result, key = compiled
        store = ArtifactStore(tmp_path)
        store.put(key, result)
        assert store.prune(1 << 30) == 0
        assert store.stats().entries == 1


# -- concurrent access ---------------------------------------------------------


def _hammer(payload):
    """One worker process: compile-through-the-store over a shared key
    space, occasionally poisoning an entry to simulate a torn write.
    Returns (cycles-per-key, corrupt_evictions) for cross-checking."""
    root, worker_index, rounds = payload
    from repro import ArtifactStore, Variant, compile_program
    from repro.bench import KERNELS
    from repro.vm import MACHINES, Simulator

    machine = MACHINES["intel"]()
    store = ArtifactStore(root)
    names = ("milc", "lbm", "cg")
    observed = {}
    for round_index in range(rounds):
        name = names[(worker_index + round_index) % len(names)]
        program = KERNELS[name].build(6)
        key = ArtifactStore.key(program, Variant.GLOBAL, machine, None)
        result = store.get(key)
        if result is None:
            result = compile_program(program, Variant.GLOBAL, machine)
            store.put(key, result)
        report, _memory = Simulator(result.machine).run(
            result.plan, seed=0
        )
        observed.setdefault(name, set()).add(report.cycles)
        if round_index == rounds // 2 and worker_index == 0:
            # Poison one entry mid-run; every process must shrug it off.
            store._path(key).write_bytes(b"\x80torn")
    return (
        {name: sorted(values) for name, values in observed.items()},
        store.corrupt_evictions,
    )


def _concurrent_pruner(payload):
    """One worker process: prune the shared directory toward a tiny
    budget, racing the other pruners. Returns entries removed; the
    regression under test is that losing a scan→unlink race
    (FileNotFoundError) is survivable, not an exception."""
    root, max_bytes = payload
    from repro import ArtifactStore

    store = ArtifactStore(root)
    total = 0
    for _ in range(3):
        total += store.prune(max_bytes)
    return total


class TestConcurrentAccess:
    def test_concurrent_pruners_tolerate_vanished_entries(
        self, tmp_path, compiled
    ):
        """Several processes prune the same directory at once: entries
        scanned by everyone are unlinked by exactly one — the rest must
        skip the FileNotFoundError, never crash, and the directory must
        land at (or under) the byte budget."""
        _program, result, key = compiled
        store = ArtifactStore(tmp_path)
        for index in range(24):
            k = f"{key[:-2]}{index:02x}"
            store.put(k, result)
            os.utime(store._path(k), (1000 + index, 1000 + index))
        entry_bytes = store._path(f"{key[:-2]}00").stat().st_size
        budget = 2 * entry_bytes
        workers = 4
        with ProcessPoolExecutor(max_workers=workers) as pool:
            removals = list(
                pool.map(
                    _concurrent_pruner,
                    [(str(tmp_path), budget)] * workers,
                )
            )
        # Every pruner returned (no exceptions), at most 24 removals
        # were claimed in total, and the store fits the budget.
        assert sum(removals) <= 24
        assert store.stats().bytes <= budget

    def test_prune_skips_entry_deleted_between_scan_and_unlink(
        self, tmp_path, compiled, monkeypatch
    ):
        """Deterministic single-process version of the race: an entry
        vanishes after the scan — prune must skip it, still count its
        bytes as reclaimed, and not report it as removed."""
        _program, result, key = compiled
        store = ArtifactStore(tmp_path)
        keys = [f"{key[:-1]}{i}" for i in range(3)]
        for index, k in enumerate(keys):
            store.put(k, result)
            os.utime(store._path(k), (1000 + index, 1000 + index))
        victim = store._path(keys[0])

        entries = store._entries()
        original_unlink = os.unlink

        def racing_unlink(path, *args, **kwargs):
            if os.fspath(path) == os.fspath(victim):
                # The "other pruner" wins the race first.
                original_unlink(path)
            return original_unlink(path, *args, **kwargs)

        monkeypatch.setattr(os, "unlink", racing_unlink)
        removed = store.prune(0)
        monkeypatch.undo()
        assert removed == len(entries) - 1  # victim didn't count
        assert store.stats().entries == 0

    def test_many_processes_one_directory(self, tmp_path):
        """No torn reads, no exceptions, and every process observes the
        same cycle count per kernel no matter who compiled it."""
        workers = 4
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(
                pool.map(
                    _hammer,
                    [(str(tmp_path), i, 8) for i in range(workers)],
                )
            )
        merged = {}
        for observed, _evictions in outcomes:
            for name, values in observed.items():
                merged.setdefault(name, set()).update(values)
        for name, values in merged.items():
            assert len(values) == 1, (
                f"{name}: processes observed different results {values}"
            )
        # The store ends healthy and fully readable.
        store = ArtifactStore(tmp_path)
        stats = store.stats()
        assert 1 <= stats.entries <= 3
