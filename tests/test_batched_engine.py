"""Differential guarantees of the batched execution engine.

The batched engine (``src/repro/vm/batched.py``) is purely a
simulation-speed optimization: for every plan it must produce an
``ExecutionReport`` — cycles, instruction counts, cache hits/misses,
per-array access stats, provenance attribution — and a final ``Memory``
that are *exactly equal* to the reference interpreter's, falling back
per-unit whenever its closed-form model does not apply. These tests pin
that contract on the full kernel × variant × machine matrix, on random
well-formed loops, and on kernels built to force the fallback path.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CompilerOptions, Variant, compile_program, parse_program
from repro.bench import ALL_KERNELS, KERNELS
from repro.bench.suite import CompileCache, DEFAULT_VARIANTS, run_kernel
from repro.ir import (
    Affine,
    ArrayRef,
    BasicBlock,
    BinOp,
    Const,
    FLOAT64,
    Loop,
    Program,
    Statement,
    Var,
)
from repro.perf import PERF
from repro.vm import (
    ENGINES,
    MACHINES,
    Simulator,
    amd_phenom_ii,
    intel_dunnington,
    resolve_engine,
)

MATRIX_MACHINES = [("intel", intel_dunnington), ("amd", amd_phenom_ii)]


def _run_both(plan, machine, seed=0):
    ref_report, ref_mem = Simulator(machine, engine="reference").run(
        plan, seed=seed
    )
    bat_report, bat_mem = Simulator(machine, engine="batched").run(
        plan, seed=seed
    )
    return (ref_report, ref_mem), (bat_report, bat_mem)


def _assert_identical(plan, machine, seed=0):
    (ref_report, ref_mem), (bat_report, bat_mem) = _run_both(
        plan, machine, seed=seed
    )
    # Dataclass equality covers counts, cycle charge buckets,
    # extra_cycles, cache hit/miss totals, per-array access/miss stats,
    # and the per-provenance cost breakdown.
    assert bat_report == ref_report
    assert bat_report.cycles == ref_report.cycles
    assert bat_mem.state_equal(ref_mem)


# -- the full paper matrix ---------------------------------------------------------


@pytest.mark.parametrize(
    "kernel", ALL_KERNELS, ids=[k.name for k in ALL_KERNELS]
)
def test_kernel_matrix_identical(kernel):
    """Every kernel × variant × machine combination produces reports and
    memories indistinguishable from the reference interpreter."""
    program = kernel.build(8)
    for _, factory in MATRIX_MACHINES:
        machine = factory()
        for variant in DEFAULT_VARIANTS:
            compiled = compile_program(program, variant, machine)
            _assert_identical(compiled.plan, compiled.machine)


def test_amd_non_dyadic_costs_identical():
    """AMD's fractional per-op costs (1.2/1.5/1.6 cycles) are the reason
    accounting uses exact integer charge buckets: summation order cannot
    perturb the float total. Pin one deeper run on that machine."""
    machine = amd_phenom_ii()
    for name in ("namd", "lbm", "milc"):
        program = KERNELS[name].build(32)
        for variant in (Variant.GLOBAL, Variant.GLOBAL_LAYOUT):
            compiled = compile_program(program, variant, machine)
            _assert_identical(compiled.plan, compiled.machine)


# -- fallback coverage -------------------------------------------------------------

REDUCTION_SRC = """
double A[64];
double s;
for (i = 0; i < 64; i += 1) {
    s = s + A[i];
}
"""

RECURRENCE_SRC = """
double A[66];
for (i = 0; i < 64; i += 1) {
    A[i + 1] = A[i] * 0.5;
}
"""

NESTED_SRC = """
double A[64];
double B[64];
for (i = 0; i < 8; i += 1) {
    for (j = 0; j < 8; j += 1) {
        A[i + j] = A[i + j] + B[j];
    }
}
"""

AFFINE_SRC = """
double A[64];
double B[64];
double C[64];
for (i = 0; i < 64; i += 1) {
    C[i] = A[i] * B[i] + 2.0;
}
"""


def _counters_for(src, variant=Variant.SCALAR):
    program = parse_program(src)
    machine = intel_dunnington()
    compiled = compile_program(program, variant, machine)
    PERF.reset()
    PERF.enable()
    try:
        Simulator(machine, engine="batched").run(compiled.plan)
    finally:
        PERF.disable()
    return (
        PERF.counters.get("simulate.batched_loops", 0),
        PERF.counters.get("simulate.batched_fallbacks", 0),
        compiled,
    )


@pytest.mark.parametrize(
    "src",
    [REDUCTION_SRC, RECURRENCE_SRC],
    ids=["scalar-reduction", "array-recurrence"],
)
def test_fallback_kernels_identical(src):
    """Loops with cross-iteration carries must take the reference path —
    and still match it exactly."""
    batched, fallbacks, compiled = _counters_for(src)
    assert fallbacks >= 1
    assert batched == 0
    _assert_identical(compiled.plan, compiled.machine)


def test_nested_loop_outer_falls_back_inner_batches():
    """Loop nests decompose: the outer loop (which carries an inner
    loop) is not batchable, but each inner instance — affine once the
    outer index is bound — batches on its own."""
    batched, fallbacks, compiled = _counters_for(NESTED_SRC)
    assert fallbacks >= 1      # the outer loop, once
    assert batched == 8        # the inner loop, per outer trip
    _assert_identical(compiled.plan, compiled.machine)


def test_affine_kernel_takes_batched_path():
    batched, fallbacks, compiled = _counters_for(AFFINE_SRC)
    assert batched >= 1
    assert fallbacks == 0
    _assert_identical(compiled.plan, compiled.machine)


def test_vectorized_fallback_mix_identical():
    """A real kernel whose loops split between the two paths (reductions
    fall back, streaming loops batch) still reconciles globally."""
    program = KERNELS["cg"].build(16)
    machine = intel_dunnington()
    for variant in DEFAULT_VARIANTS:
        compiled = compile_program(program, variant, machine)
        _assert_identical(compiled.plan, compiled.machine)


# -- random programs ---------------------------------------------------------------

SCALARS = ["s0", "s1", "s2", "s3"]
ARRAYS = ["X", "Y", "Z"]


@st.composite
def affine_subscripts(draw):
    coeff = draw(st.sampled_from([1, 1, 1, 2, 3]))
    const = draw(st.integers(min_value=0, max_value=8))
    return Affine.of(const, i=coeff)


@st.composite
def leaf_exprs(draw):
    kind = draw(st.sampled_from(["var", "ref", "const", "ref"]))
    if kind == "var":
        return Var(draw(st.sampled_from(SCALARS)), FLOAT64)
    if kind == "const":
        return Const(
            float(draw(st.integers(min_value=1, max_value=9))), FLOAT64
        )
    array = draw(st.sampled_from(ARRAYS))
    return ArrayRef(array, (draw(affine_subscripts()),), FLOAT64)


@st.composite
def exprs(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(leaf_exprs())
    op = draw(st.sampled_from(["+", "-", "*", "+", "/"]))
    return BinOp(op, draw(exprs(depth=depth - 1)), draw(exprs(depth=depth - 1)))


@st.composite
def statements(draw, sid):
    if draw(st.booleans()):
        target = Var(draw(st.sampled_from(SCALARS)), FLOAT64)
    else:
        target = ArrayRef(
            draw(st.sampled_from(ARRAYS)),
            (draw(affine_subscripts()),),
            FLOAT64,
        )
    return Statement(sid, target, draw(exprs()))


@st.composite
def programs(draw):
    count = draw(st.integers(min_value=2, max_value=8))
    body = BasicBlock([draw(statements(sid)) for sid in range(count)])
    program = Program("random")
    for name in ARRAYS:
        program.declare_array(name, (64,), FLOAT64)
    for name in SCALARS:
        program.declare_scalar(name, FLOAT64)
    program.add(Loop("i", 0, 8, 1, body))
    return program


COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRandomDifferential:
    @given(
        program=programs(),
        variant=st.sampled_from([Variant.SCALAR, Variant.GLOBAL]),
        seed=st.integers(min_value=0, max_value=3),
    )
    @settings(**COMMON)
    def test_reports_and_memory_identical(self, program, variant, seed):
        compiled = compile_program(program, variant, intel_dunnington())
        _assert_identical(compiled.plan, compiled.machine, seed=seed)


# -- engine selection plumbing -----------------------------------------------------


class TestEngineSelection:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert resolve_engine(None) == "reference"
        assert Simulator(intel_dunnington()).engine == "reference"

    def test_env_var_selects_batched(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "batched")
        assert resolve_engine(None) == "batched"
        assert Simulator(intel_dunnington()).engine == "batched"

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "batched")
        assert Simulator(
            intel_dunnington(), engine="reference"
        ).engine == "reference"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_engine("simd-ultra")

    def test_engines_registry(self):
        assert ENGINES == ("reference", "batched", "compiled")
        assert set(MACHINES) == {"intel", "amd"}


class TestOptionsPlumbing:
    def test_run_kernel_engine_option_matches_reference(self):
        machine = intel_dunnington()
        kernel = KERNELS["lbm"]
        ref = run_kernel(kernel, machine, n=8)
        bat = run_kernel(
            kernel, machine, n=8, options=CompilerOptions(engine="batched")
        )
        for variant in DEFAULT_VARIANTS:
            assert bat.runs[variant].report == ref.runs[variant].report
            assert bat.runs[variant].memory.state_equal(
                ref.runs[variant].memory
            )

    def test_compile_cache_key_ignores_engine(self):
        machine = intel_dunnington()
        program = KERNELS["mg"].build(8)
        base = CompileCache.key(program, Variant.GLOBAL, machine, None)
        assert base == CompileCache.key(
            program,
            Variant.GLOBAL,
            machine,
            CompilerOptions(engine="batched"),
        )
        assert base == CompileCache.key(
            program,
            Variant.GLOBAL,
            machine,
            CompilerOptions(engine="reference"),
        )
