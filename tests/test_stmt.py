"""Statements: operand views, isomorphism, rewriting."""

import pytest

from repro.ir import (
    Affine,
    ArrayRef,
    BinOp,
    Const,
    FLOAT32,
    INT32,
    Statement,
    Var,
)


def ref(array, **coeffs):
    const = coeffs.pop("const", 0)
    return ArrayRef(array, (Affine.of(const, **coeffs),), FLOAT32)


def stmt(sid, target, expr):
    return Statement(sid, target, expr)


@pytest.fixture()
def mac():
    # a = b * A[4i] + c
    return stmt(
        0,
        Var("a", FLOAT32),
        BinOp(
            "+",
            BinOp("*", Var("b", FLOAT32), ref("A", i=4)),
            Var("c", FLOAT32),
        ),
    )


class TestOperandViews:
    def test_uses_excludes_constants(self, mac):
        with_const = stmt(
            1,
            Var("x", FLOAT32),
            BinOp("+", Var("y", FLOAT32), Const(1.0, FLOAT32)),
        )
        assert [str(u) for u in with_const.uses()] == ["y"]

    def test_operand_positions_start_with_target(self, mac):
        positions = mac.operand_positions()
        assert str(positions[0]) == "a"
        assert [str(p) for p in positions[1:]] == ["b", "A[4*i]", "c"]

    def test_array_refs_include_target(self):
        s = stmt(0, ref("C", i=2), BinOp("+", ref("A", i=1), ref("B", i=1)))
        assert sorted(r.array for r in s.array_refs()) == ["A", "B", "C"]

    def test_count_ops(self, mac):
        assert mac.count_ops() == 2


class TestIsomorphism:
    def test_isomorphic_same_shape(self, mac):
        other = stmt(
            5,
            Var("d", FLOAT32),
            BinOp(
                "+",
                BinOp("*", Var("q", FLOAT32), ref("B", i=4, const=2)),
                Var("r", FLOAT32),
            ),
        )
        assert mac.is_isomorphic_to(other)

    def test_not_isomorphic_different_ops(self, mac):
        other = stmt(
            5,
            Var("d", FLOAT32),
            BinOp(
                "-",
                BinOp("*", Var("q", FLOAT32), ref("B", i=4)),
                Var("r", FLOAT32),
            ),
        )
        assert not mac.is_isomorphic_to(other)

    def test_not_isomorphic_different_types(self, mac):
        other = stmt(
            5,
            Var("d", INT32),
            BinOp(
                "+",
                BinOp("*", Var("q", INT32), ArrayRef("K", (Affine.var("i"),), INT32)),
                Var("r", INT32),
            ),
        )
        assert not mac.is_isomorphic_to(other)

    def test_target_kind_matters(self):
        to_scalar = stmt(0, Var("a", FLOAT32), Var("b", FLOAT32))
        to_memory = stmt(1, ref("A", i=1), Var("b", FLOAT32))
        assert not to_scalar.is_isomorphic_to(to_memory)


class TestRewriting:
    def test_substitute_indices_hits_target_and_sources(self):
        s = stmt(0, ref("A", i=2), BinOp("+", ref("B", i=1), ref("B", i=1, const=1)))
        shifted = s.substitute_indices({"i": Affine.var("i") + 3})
        assert str(shifted.target) == "A[2*i + 6]"
        assert "B[i + 3]" in str(shifted.expr)

    def test_with_sid_preserves_content(self, mac):
        renumbered = mac.with_sid(9)
        assert renumbered.sid == 9
        assert renumbered.expr == mac.expr
        assert renumbered.target == mac.target
