"""The end-to-end framework driver: variants, cost gate, layout stage,
differential correctness."""

import pytest

from repro import (
    CompilerOptions,
    Variant,
    compile_program,
    intel_dunnington,
    simulate,
)
from repro.ir import parse_program
from repro.vm import CompiledCopy, CompiledLoop, CompiledStraight

REUSE_RICH = """
double U[4096]; double V[4096]; double W[4096];
double tl, tr, lap;
for (i = 1; i < 257; i += 1) {
    tl = U[i - 1] + U[i];
    tr = U[i] + U[i + 1];
    lap = tr - tl;
    V[i] = V[i] + lap * 0.5;
    W[i] = W[i] + lap * 0.25;
}
"""


def compile_and_run(variant, src=REUSE_RICH, **options):
    program = parse_program(src)
    result = compile_program(
        program, variant, intel_dunnington(), CompilerOptions(**options)
    )
    report, memory = simulate(result)
    return result, report, memory


class TestVariants:
    def test_scalar_plan_has_no_vector_code(self):
        result, report, _ = compile_and_run(Variant.SCALAR)
        assert report.counts.get("vector_op", 0) == 0
        assert result.stats.superword_statements == 0

    def test_global_vectorizes_and_wins(self):
        scalar, s_report, s_mem = compile_and_run(Variant.SCALAR)
        result, report, memory = compile_and_run(Variant.GLOBAL)
        assert result.stats.superword_statements > 0
        assert report.cycles < s_report.cycles
        assert memory.state_equal(s_mem)

    def test_all_variants_preserve_semantics(self):
        _, _, base = compile_and_run(Variant.SCALAR)
        for variant in Variant:
            _, _, memory = compile_and_run(variant)
            assert memory.state_equal(base), variant.value

    def test_compile_stats_populated(self):
        result, _, _ = compile_and_run(Variant.GLOBAL)
        stats = result.stats
        assert stats.blocks_total >= 1
        assert stats.total_statements > 0
        assert 0.0 < stats.grouped_fraction <= 1.0
        assert stats.compile_seconds > 0


class TestCostGate:
    UNPROFITABLE = """
    double X[256]; double Y[256];
    for (i = 0; i < 32; i += 1) {
        Y[17 + 2*i] = X[31 + 2*i] / X[2*i];
    }
    """

    def test_gate_falls_back_to_scalar(self):
        # Strided loads + strided stores + a lone statement per group:
        # vectorization cannot pay for the gathers.
        result, report, _ = compile_and_run(
            Variant.GLOBAL, self.UNPROFITABLE
        )
        gated, gated_report, _ = compile_and_run(
            Variant.GLOBAL, self.UNPROFITABLE, cost_gate=False
        )
        # Either the gate fired (no vector ops) or vectorizing was
        # genuinely profitable; in both cases the gated build must not
        # be slower than the ungated one.
        assert report.cycles <= gated_report.cycles + 1e-9

    def test_gate_never_worse_than_scalar(self):
        _, scalar_report, _ = compile_and_run(
            Variant.SCALAR, self.UNPROFITABLE
        )
        _, report, _ = compile_and_run(Variant.GLOBAL, self.UNPROFITABLE)
        assert report.cycles <= scalar_report.cycles + 1e-9


class TestLayoutStage:
    STRIDED = """
    double F[4096]; double R[512];
    for (i = 0; i < 128; i += 1) {
        R[i] = F[9*i] + F[9*i + 1];
    }
    """

    def test_layout_variant_creates_replicas(self):
        result, report, memory = compile_and_run(
            Variant.GLOBAL_LAYOUT, self.STRIDED
        )
        assert result.stats.replications > 0
        copies = [
            u for u in result.plan.units if isinstance(u, CompiledCopy)
        ]
        assert copies
        assert any(
            name.startswith("__slp_rep") for name in memory.arrays
        )

    def test_layout_beats_plain_global_on_strided_code(self):
        _, plain, _ = compile_and_run(Variant.GLOBAL, self.STRIDED)
        _, layout, _ = compile_and_run(Variant.GLOBAL_LAYOUT, self.STRIDED)
        assert layout.cycles < plain.cycles

    def test_layout_preserves_semantics(self):
        _, _, base = compile_and_run(Variant.SCALAR, self.STRIDED)
        _, _, memory = compile_and_run(Variant.GLOBAL_LAYOUT, self.STRIDED)
        assert memory.state_equal(base)

    def test_budget_disables_replication(self):
        result, _, _ = compile_and_run(
            Variant.GLOBAL_LAYOUT,
            self.STRIDED,
            layout_budget_elements=4,
        )
        assert result.stats.replications == 0


class TestOptions:
    def test_datapath_override(self):
        program = parse_program(REUSE_RICH)
        wide = compile_program(
            program,
            Variant.GLOBAL,
            intel_dunnington(),
            CompilerOptions(datapath_bits=256),
        )
        assert wide.machine.datapath_bits == 256

    def test_unroll_disabled_keeps_loop_rolled(self):
        program = parse_program(
            "double X[64]; for (i = 0; i < 32; i += 1) "
            "{ X[i] = X[i] + 1.0; }"
        )
        result = compile_program(
            program,
            Variant.GLOBAL,
            intel_dunnington(),
            CompilerOptions(unroll=False),
        )
        loops = [
            u for u in result.plan.units if isinstance(u, CompiledLoop)
        ]
        assert loops[0].spec.step == 1

    def test_remainder_loop_executes(self):
        # 30 trips with unroll factor 2: 15 main + no remainder; with
        # 31 trips the remainder loop must cover the last iteration.
        src = (
            "double X[64]; for (i = 0; i < 31; i += 1) "
            "{ X[i] = X[i] * 2.0; }"
        )
        _, _, base = compile_and_run(Variant.SCALAR, src)
        result, _, memory = compile_and_run(Variant.GLOBAL, src)
        assert memory.state_equal(base)

    def test_straight_line_blocks_compile(self):
        src = """
        double a, b, c, d;
        double X[8];
        a = X[0]; b = X[1];
        X[2] = a * 2.0; X[3] = b * 2.0;
        """
        _, _, base = compile_and_run(Variant.SCALAR, src)
        result, _, memory = compile_and_run(Variant.GLOBAL, src)
        assert memory.state_equal(base)

    def test_nested_loops_compile_and_match(self):
        src = """
        double M[1024];
        for (i = 0; i < 8; i += 1) {
            for (j = 0; j < 16; j += 1) {
                M[64 + 16*i + j] = M[16*i + j] * 2.0;
            }
        }
        """
        _, _, base = compile_and_run(Variant.SCALAR, src)
        _, _, memory = compile_and_run(Variant.GLOBAL, src)
        assert memory.state_equal(base)
