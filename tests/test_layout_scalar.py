"""Scalar superword layout: occurrence-ranked offset assignment."""

import pytest

from repro.analysis import DependenceGraph
from repro.ir import parse_program
from repro.layout import (
    default_scalar_layout,
    optimized_scalar_layout,
    pack_is_contiguous,
    scalar_packs_of,
)
from repro.slp import Schedule, SuperwordStatement, holistic_slp_schedule

DECLS = """
float A[512]; float B[512];
float w, x, y, z;
"""


def program_and_schedule(src):
    program = parse_program(DECLS + src)
    block = next(iter(program.blocks()))
    deps = DependenceGraph(block)
    schedule = holistic_slp_schedule(block, deps, 64)
    return program, schedule


class TestDefaultLayout:
    def test_declaration_order_slots(self):
        program = parse_program(DECLS)
        arenas = default_scalar_layout(program)
        arena = arenas["float"]
        assert arena.slot("w") == 0
        assert arena.slot("x") == 1
        assert arena.slot("z") == 3

    def test_types_get_separate_arenas(self):
        program = parse_program("float a; double b;")
        arenas = default_scalar_layout(program)
        assert set(arenas) == {"float", "double"}
        assert arenas["float"].slot("a") == 0
        assert arenas["double"].slot("b") == 0


class TestScalarPackExtraction:
    def test_collects_all_scalar_packs(self):
        program, schedule = program_and_schedule(
            "x = A[0]; w = A[7]; B[0] = x * y; B[1] = w * y;"
        )
        packs = scalar_packs_of(schedule)
        datas = {tuple(sorted(p)) for p in packs}
        assert (("var", "w"), ("var", "x")) in datas


class TestOptimizedLayout:
    def test_most_frequent_pack_gets_contiguous_slots(self):
        program, schedule = program_and_schedule(
            "x = A[0]; w = A[7]; B[0] = x * y; B[1] = w * y;"
        )
        arenas = optimized_scalar_layout(program, [schedule])
        arena = arenas["float"]
        # <x, w> (in schedule lane order) must be adjacent and aligned.
        slots = sorted((arena.slot("x"), arena.slot("w")))
        assert slots[1] - slots[0] == 1
        assert slots[0] % 2 == 0

    def test_conflicting_pack_is_skipped(self):
        # Two packs sharing a variable cannot both be contiguous.
        program = parse_program(DECLS)
        block_src = (
            "x = A[0]; w = A[7];"
            "B[0] = x * y; B[1] = w * y;"
            "B[2] = x * z; B[3] = y * z;"
        )
        program = parse_program(DECLS + block_src)
        block = next(iter(program.blocks()))
        deps = DependenceGraph(block)
        schedule = holistic_slp_schedule(block, deps, 64)
        arenas = optimized_scalar_layout(program, [schedule])
        # Every scalar still gets exactly one slot.
        arena = arenas["float"]
        slots = [arena.slot(n) for n in ("w", "x", "y", "z")]
        assert len(set(slots)) == 4

    def test_every_declared_scalar_is_placed(self):
        program, schedule = program_and_schedule("x = A[0]; w = A[7];")
        arenas = optimized_scalar_layout(program, [schedule])
        placed = set()
        for arena in arenas.values():
            placed |= set(arena.slots)
        assert placed == set(program.scalars)

    def test_splat_pack_not_placed_contiguously(self):
        program = parse_program(DECLS)
        arenas = optimized_scalar_layout(program, [])
        # Falls back to declaration order without packs.
        assert arenas["float"].slot("w") == 0


class TestContiguityPredicate:
    def test_contiguous_aligned_pack(self):
        program, schedule = program_and_schedule(
            "x = A[0]; w = A[7]; B[0] = x * y; B[1] = w * y;"
        )
        arenas = optimized_scalar_layout(program, [schedule])
        elem = program.scalars["x"].type
        sw = next(
            sw
            for sw in schedule.superwords()
            if all(k[0] == "var" for k in sw.target_pack())
        )
        assert pack_is_contiguous(sw.target_pack(), arenas, elem)

    def test_default_layout_pack_usually_not_contiguous(self):
        program, schedule = program_and_schedule(
            "x = A[0]; w = A[7]; B[0] = x * y; B[1] = w * y;"
        )
        arenas = default_scalar_layout(program)
        elem = program.scalars["x"].type
        # <x, w> sits at default slots 1 and 0: reversed, and the lane
        # order from scheduling is (x, w) -> offsets (1, 0): not
        # ascending-contiguous.
        pack = (("var", "x"), ("var", "w"))
        assert not pack_is_contiguous(pack, arenas, elem)
