"""Array-reference superword layout: eligibility, mapping, rewriting."""

import pytest

from repro.analysis import DependenceGraph
from repro.ir import ArrayRef, parse_program
from repro.layout import (
    LoopContext,
    apply_array_layout,
    plan_array_layout,
    written_arrays,
)
from repro.slp import holistic_slp_schedule
from repro.transform import unroll_program


def compile_kernel(src, datapath=128):
    program = unroll_program(parse_program(src), datapath)
    loop = next(iter(program.loops()))
    block = loop.body
    deps = DependenceGraph(block)
    # Grouping is told the layout stage will run (as the Global+Layout
    # pipeline does), so strided read-only gathers are worth grouping.
    from repro.slp import PenaltyContext

    replicable = frozenset(program.arrays) - written_arrays(program)
    schedule = holistic_slp_schedule(
        block,
        deps,
        datapath,
        lambda n: program.arrays[n],
        PenaltyContext(replicable),
    )
    ctx = LoopContext(loop.index, loop.start, loop.stop, loop.step)
    return program, block, schedule, ctx


STRIDED = """
double F[4096]; double R[512];
for (i = 0; i < 128; i += 1) {
    R[i] = F[9*i] + F[9*i + 1];
}
"""


class TestWrittenArrays:
    def test_detects_store_targets(self):
        program = parse_program(STRIDED)
        assert written_arrays(program) == {"R"}


class TestPlanning:
    def test_strided_readonly_pack_is_replicated(self):
        program, block, schedule, ctx = compile_kernel(STRIDED)
        plan = plan_array_layout(program, schedule, ctx, budget_elements=1 << 20)
        assert plan.replications, "the F gathers should be replicated"
        assert all(r.source == "F" for r in plan.replications)
        assert plan.rewrites

    def test_written_array_is_not_replicated(self):
        src = """
        double F[4096];
        for (i = 0; i < 128; i += 1) {
            F[9*i] = F[9*i] + 1.0;
        }
        """
        program, block, schedule, ctx = compile_kernel(src)
        plan = plan_array_layout(program, schedule, ctx, budget_elements=1 << 20)
        assert not plan.replications

    def test_contiguous_pack_not_replicated(self):
        src = """
        double F[4096]; double R[4096];
        for (i = 0; i < 128; i += 1) {
            R[i] = F[i] * 2.0;
        }
        """
        program, block, schedule, ctx = compile_kernel(src)
        plan = plan_array_layout(program, schedule, ctx, budget_elements=1 << 20)
        assert not plan.replications

    def test_budget_is_respected(self):
        program, block, schedule, ctx = compile_kernel(STRIDED)
        plan = plan_array_layout(program, schedule, ctx, budget_elements=4)
        assert not plan.replications

    def test_duplicate_packs_share_one_replica(self):
        src = """
        double F[4096]; double R[512]; double S[512];
        for (i = 0; i < 128; i += 1) {
            R[i] = F[9*i] * 2.0;
            S[i] = F[9*i] * 3.0;
        }
        """
        program, block, schedule, ctx = compile_kernel(src)
        plan = plan_array_layout(program, schedule, ctx, budget_elements=1 << 20)
        sources = [
            tuple(str(f) for f in r.lane_flats) for r in plan.replications
        ]
        assert len(sources) == len(set(sources))


class TestMappingSemantics:
    def test_copy_pairs_realize_stride_L(self):
        program, block, schedule, ctx = compile_kernel(STRIDED)
        plan = plan_array_layout(program, schedule, ctx, budget_elements=1 << 20)
        rep = plan.replications[0]
        pairs = list(rep.copy_pairs())
        # Destination indices are exactly 0..elements-1 (dense, stride-L
        # interleaving of the lanes).
        dsts = sorted(d for d, _ in pairs)
        assert dsts == list(range(rep.elements))

    def test_new_subscript_matches_copy(self):
        """B[new_subscript(lane)] evaluated at iteration i must hold
        A[original flat index at i] — the defining property."""
        program, block, schedule, ctx = compile_kernel(STRIDED)
        plan = plan_array_layout(program, schedule, ctx, budget_elements=1 << 20)
        rep = plan.replications[0]
        image = dict()
        for dst, src in rep.copy_pairs():
            image[dst] = src
        for lane, flat in enumerate(rep.lane_flats):
            for i in range(ctx.start, ctx.stop, ctx.step):
                new_index = rep.new_subscript(lane).evaluate({ctx.index: i})
                assert image[new_index] == flat.evaluate({ctx.index: i})


class TestRewriting:
    def test_apply_rewrites_block_and_schedule(self):
        program, block, schedule, ctx = compile_kernel(STRIDED)
        plan = plan_array_layout(program, schedule, ctx, budget_elements=1 << 20)
        new_block, new_schedule = apply_array_layout(block, schedule, plan)
        rewritten_arrays = {
            ref.array
            for stmt in new_block
            for ref in stmt.array_refs()
        }
        assert any(a.startswith("__slp_rep") for a in rewritten_arrays)
        # Same structure: every superword statement maps across by sids.
        old = [sw.sids for sw in schedule.superwords()]
        new = [sw.sids for sw in new_schedule.superwords()]
        assert old == new

    def test_noop_plan_returns_inputs(self):
        program, block, schedule, ctx = compile_kernel(STRIDED)
        from repro.layout import ArrayLayoutPlan

        empty = ArrayLayoutPlan([], {})
        same_block, same_schedule = apply_array_layout(
            block, schedule, empty
        )
        assert same_block is block and same_schedule is schedule
