"""The bench harness: KernelResult metrics, run_kernel/run_suite/
run_multicore, table rendering."""

import pytest

from repro import Variant
from repro.bench import (
    DEFAULT_VARIANTS,
    KERNELS,
    ascii_table,
    intel_dunnington,
    percent,
    run_kernel,
    run_multicore,
    run_suite,
)


@pytest.fixture(scope="module")
def soplex_result():
    return run_kernel(KERNELS["soplex"], intel_dunnington(), n=16)


class TestKernelResult:
    def test_runs_all_default_variants(self, soplex_result):
        assert set(soplex_result.runs) == set(DEFAULT_VARIANTS)

    def test_time_reduction_of_scalar_is_zero(self, soplex_result):
        assert soplex_result.time_reduction(Variant.SCALAR) == 0.0

    def test_time_reduction_consistent_with_cycles(self, soplex_result):
        scalar = soplex_result.cycles(Variant.SCALAR)
        glob = soplex_result.cycles(Variant.GLOBAL)
        assert soplex_result.time_reduction(Variant.GLOBAL) == pytest.approx(
            1 - glob / scalar
        )

    def test_semantics_preserved(self, soplex_result):
        assert soplex_result.semantics_preserved()

    def test_dyn_instr_elimination_positive_when_vectorized(
        self, soplex_result
    ):
        assert soplex_result.dyn_instr_elimination(Variant.GLOBAL) > 0

    def test_reduction_metrics_between_variants(self, soplex_result):
        value = soplex_result.dyn_instr_reduction_over(
            Variant.GLOBAL, Variant.SLP
        )
        assert -1.0 <= value <= 1.0


class TestRunSuite:
    def test_subset_of_kernels(self):
        subset = [KERNELS["cg"], KERNELS["wrf"]]
        results = run_suite(
            intel_dunnington(),
            kernels=subset,
            variants=(Variant.SCALAR, Variant.GLOBAL),
            n=8,
        )
        assert set(results) == {"cg", "wrf"}
        for result in results.values():
            assert set(result.runs) == {Variant.SCALAR, Variant.GLOBAL}


class TestRunMulticore:
    def test_slice_scales_with_cores(self):
        machine = intel_dunnington()
        one = run_multicore(
            KERNELS["cg"], machine, Variant.GLOBAL, cores=1, n=256
        )
        four = run_multicore(
            KERNELS["cg"], machine, Variant.GLOBAL, cores=4, n=256
        )
        # A 4-core slice simulates a quarter of the iterations; the
        # added sync/contention overhead must not swamp that.
        assert four.scalar_cycles < one.scalar_cycles
        assert one.cores == 1 and four.cores == 4

    def test_reduction_sign_matches_single_core(self):
        machine = intel_dunnington()
        point = run_multicore(
            KERNELS["cg"], machine, Variant.GLOBAL, cores=2, n=64
        )
        assert point.reduction > 0


class TestRendering:
    def test_ascii_table_alignment(self):
        table = ascii_table(
            ("name", "value"), [("a", "1"), ("long-name", "2")]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:2])

    def test_percent_formatting(self):
        assert percent(0.152).strip() == "15.2%"
        assert percent(-0.05).strip() == "-5.0%"
