"""The pluggable engine registry (``repro.engines``).

Every layer that names an engine — ``CompilerOptions``, the simulator,
the CLI, the fuzzer, the service wire — resolves through the one
registry; these tests pin the registration contract (duplicates are
loud, unknown names raise one structured ``OptionsError`` listing what
is registered), the legacy string literals and tuple constants, the
custom-engine extension path end to end through ``compile_program``,
and that README's engine table stays generated from the registry.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import CompilerOptions, Variant, compile_program
from repro.bench import KERNELS, intel_dunnington
from repro.engines import (
    engine_names,
    engines,
    markdown_table,
    register,
    register_grouping_engine,
    register_sim_engine,
    resolve,
    temporary_engine,
    unregister,
)
from repro.errors import OptionsError, ReproError
from repro.service import ServiceError, options_from_dict, options_to_dict
from repro.vm import Simulator

README = pathlib.Path(__file__).parent.parent / "README.md"


class TestRegistry:
    def test_builtins_in_legacy_order(self):
        # Pinned: existing tuple constants and docs enumerate these in
        # exactly this order.
        assert engine_names("grouping") == (
            "incremental", "reference", "optimal",
        )
        assert engine_names("sim") == ("reference", "batched", "compiled")

    def test_legacy_tuple_constants_come_from_the_registry(self):
        from repro.slp import grouping as grouping_mod
        from repro.vm import simulator as simulator_mod

        assert grouping_mod.ENGINES == engine_names("grouping")
        assert simulator_mod.ENGINES == engine_names("sim")

    def test_duplicate_registration_is_an_error(self):
        with pytest.raises(OptionsError, match="duplicate"):
            register_grouping_engine("incremental", lambda g: None)
        with pytest.raises(OptionsError, match="duplicate"):
            register_sim_engine("batched", lambda sim, plan, state: None)

    def test_unknown_kind_is_an_error(self):
        with pytest.raises(OptionsError, match="unknown engine kind"):
            register("scheduler", "x", lambda: None)
        with pytest.raises(OptionsError, match="unknown engine kind"):
            resolve("scheduler", "x")
        with pytest.raises(OptionsError, match="unknown engine kind"):
            engine_names("scheduler")

    def test_unknown_name_lists_registered_engines(self):
        with pytest.raises(OptionsError) as err:
            resolve("grouping", "astar")
        message = str(err.value)
        assert "astar" in message
        for name in engine_names("grouping"):
            assert name in message

    def test_equivalence_and_optimality_flags(self):
        by_name = {e.name: e for e in engines("grouping")}
        assert by_name["incremental"].equivalence == "greedy"
        assert by_name["reference"].equivalence == "greedy"
        assert by_name["optimal"].equivalence != "greedy"
        assert by_name["optimal"].proves_optimal
        assert not by_name["incremental"].proves_optimal

    def test_temporary_engine_scopes_the_registration(self):
        with temporary_engine("grouping", "toy", lambda g: None):
            assert "toy" in engine_names("grouping")
            with pytest.raises(OptionsError, match="duplicate"):
                register_grouping_engine("toy", lambda g: None)
        assert "toy" not in engine_names("grouping")
        unregister("grouping", "toy")  # idempotent on absent names


class TestResolutionPaths:
    def test_compiler_options_reject_unknown_grouping_engine(self):
        with pytest.raises(OptionsError, match="unknown grouping engine"):
            CompilerOptions(grouping_engine="astar")

    def test_compiler_options_reject_unknown_sim_engine(self):
        with pytest.raises(OptionsError, match="unknown sim engine"):
            CompilerOptions(engine="turbo")

    def test_simulator_rejects_unknown_engine(self):
        with pytest.raises(OptionsError, match="unknown sim engine"):
            Simulator(intel_dunnington(), engine="turbo")

    def test_simulator_rejects_unknown_env_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "turbo")
        with pytest.raises(OptionsError, match="unknown sim engine"):
            Simulator(intel_dunnington())

    def test_cli_rejects_unknown_engine_names(self, capsys):
        from repro.cli import main

        # argparse choices come from the registry: both flags fail fast
        # with a usage error, not deep in the pipeline.
        with pytest.raises(SystemExit) as err:
            main(["bench", "--grouping-engine", "astar"])
        assert err.value.code == 2
        assert "astar" in capsys.readouterr().err
        with pytest.raises(SystemExit) as err:
            main(["bench", "--engine", "turbo"])
        assert err.value.code == 2

    def test_cli_engines_lists_the_registry(self, capsys):
        from repro.cli import main

        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for kind in ("grouping", "sim"):
            for name in engine_names(kind):
                assert name in out
        assert "proves-optimal" in out

    def test_cli_engines_markdown_matches_registry(self, capsys):
        from repro.cli import main

        assert main(["engines", "--markdown"]) == 0
        assert capsys.readouterr().out.strip() == markdown_table().strip()

    def test_service_wire_rejects_unknown_engine(self):
        # The wire schema accepts the field; the value is validated by
        # CompilerOptions itself, so a bad engine name is a structured
        # client error (HTTP 400 via the ReproError path), not a 500.
        with pytest.raises(ReproError, match="unknown grouping engine"):
            options_from_dict({"grouping_engine": "astar"})
        with pytest.raises(ServiceError, match="unknown compiler option"):
            options_from_dict({"grouping_enigne": "optimal"})

    def test_service_wire_round_trips_engine_options(self):
        options = CompilerOptions(
            grouping_engine="optimal", optimal_node_budget=123
        )
        payload = options_to_dict(options)
        assert payload["grouping_engine"] == "optimal"
        assert payload["optimal_node_budget"] == 123
        assert options_from_dict(payload) == options


class TestCustomEngine:
    def test_custom_grouping_engine_compiles_end_to_end(self):
        # A degenerate engine that refuses every candidate: valid (all
        # statements stay scalar), observably different from greedy, and
        # reachable purely through the public registry + options path.
        from repro.slp.grouping import GroupingTrace

        def no_packing(grouping):
            return GroupingTrace([])

        program = KERNELS["milc"].build(16)
        machine = intel_dunnington()
        with temporary_engine(
            "grouping", "nopack", no_packing, description="test stub"
        ):
            result = compile_program(
                program, Variant.GLOBAL, machine,
                CompilerOptions(grouping_engine="nopack"),
            )
            baseline = compile_program(
                program, Variant.SCALAR, machine
            )
            report, memory = Simulator(machine).run(result.plan)
            ref_report, ref_memory = Simulator(machine).run(baseline.plan)
            assert memory.state_equal(ref_memory)
            # No packing happened: the plan spends at least as many
            # dynamic instructions as the greedy compile.
            greedy = compile_program(program, Variant.GLOBAL, machine)
            greedy_report, _ = Simulator(machine).run(greedy.plan)
            assert report.cycles >= greedy_report.cycles
        with pytest.raises(OptionsError, match="unknown grouping engine"):
            CompilerOptions(grouping_engine="nopack")

    def test_custom_sim_engine_resolves_through_simulator(self):
        sentinel = object()
        seen = {}

        def factory(simulator, plan, state):
            seen["called"] = True
            return None  # fall through to the reference interpreter

        program = KERNELS["cg"].build(8)
        machine = intel_dunnington()
        plan = compile_program(program, Variant.SCALAR, machine).plan
        with temporary_engine("sim", "spy", factory):
            report, _ = Simulator(machine, engine="spy").run(plan)
        assert seen["called"]
        assert report.cycles > 0
        assert sentinel  # keep flake quiet about the unused sentinel


class TestReadmeTable:
    def test_readme_engine_table_is_generated_from_the_registry(self):
        text = README.read_text()
        begin = text.index("<!-- engines:begin")
        begin = text.index("\n", begin) + 1
        end = text.index("<!-- engines:end -->")
        assert text[begin:end].strip() == markdown_table().strip(), (
            "README engine table is stale; regenerate with "
            "`python -m repro engines --markdown`"
        )
