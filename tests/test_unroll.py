"""Loop unrolling with scalar renaming."""

import pytest

from repro.ir import Var, parse_program
from repro.transform import choose_unroll_factor, unroll_loop, unroll_program

SRC = """
float A[64]; float B[64];
float t;
for (i = 0; i < 16; i += 1) {
    t = A[i] * 2.0;
    B[i] = t + 1.0;
}
"""


def loop_of(program):
    return next(iter(program.loops()))


class TestFactorSelection:
    def test_factor_fills_datapath_float32(self):
        loop = loop_of(parse_program(SRC))
        assert choose_unroll_factor(loop, 128) == 4
        assert choose_unroll_factor(loop, 256) == 8

    def test_factor_for_float64(self):
        program = parse_program(
            "double X[8]; for (i = 0; i < 8; i += 1) { X[i] = X[i] + 1.0; }"
        )
        assert choose_unroll_factor(loop_of(program), 128) == 2


class TestUnrollLoop:
    def test_body_replication_and_index_shift(self):
        loop = loop_of(parse_program(SRC))
        result = unroll_loop(loop, 4, {"t"})
        assert result.main.step == 4
        assert len(result.main.body) == 8
        subs = [str(s) for s in result.main.body]
        assert any("A[i + 3]" in s for s in subs)

    def test_scalar_renaming_last_copy_keeps_name(self):
        loop = loop_of(parse_program(SRC))
        result = unroll_loop(loop, 4, {"t"})
        defs = [
            s.target.name
            for s in result.main.body
            if isinstance(s.target, Var)
        ]
        assert defs == ["t__0", "t__1", "t__2", "t"]
        assert dict(result.new_scalars) == {
            "t__0": "t", "t__1": "t", "t__2": "t",
        }

    def test_renamed_uses_follow_their_copy(self):
        loop = loop_of(parse_program(SRC))
        result = unroll_loop(loop, 2, {"t"})
        statements = list(result.main.body)
        # copy 0: t__0 = ...; B[i] = t__0 + 1.0
        assert "t__0" in str(statements[1].expr)
        # copy 1 (last): t = ...; B[i+1] = t + 1.0
        assert "t__0" not in str(statements[3].expr)

    def test_remainder_loop_for_nondivisible_trips(self):
        program = parse_program(
            "float A[32]; for (i = 0; i < 10; i += 1) { A[i] = A[i] + 1.0; }"
        )
        result = unroll_loop(loop_of(program), 4, set())
        assert result.main.stop == 8
        assert result.remainder is not None
        assert (result.remainder.start, result.remainder.stop) == (8, 10)

    def test_factor_one_is_identity(self):
        loop = loop_of(parse_program(SRC))
        result = unroll_loop(loop, 1, set())
        assert result.main is loop
        assert result.remainder is None

    def test_reduction_stays_serialized(self):
        program = parse_program(
            "float A[16]; float s;"
            "for (i = 0; i < 16; i += 1) { s = s + A[i]; }"
        )
        result = unroll_loop(loop_of(program), 2, {"s"})
        first, second = list(result.main.body)
        # Copy 1 reads copy 0's renamed value: the chain is preserved.
        assert "s__0" in str(second.expr)
        assert first.target.name == "s__0"
        assert second.target.name == "s"


class TestUnrollProgram:
    def test_program_level_declares_renamed_scalars(self):
        program = parse_program(SRC)
        unrolled = unroll_program(program, 128)
        assert "t__0" in unrolled.scalars
        assert unrolled.scalars["t__0"].type == program.scalars["t"].type

    def test_rejects_nested_remainders(self):
        program = parse_program(
            """
            float A[32];
            for (i = 0; i < 4; i += 1) {
                for (j = 0; j < 7; j += 1) {
                    A[j] = A[j] + 1.0;
                }
            }
            """
        )
        with pytest.raises(ValueError):
            unroll_program(program, 128)

    def test_straight_blocks_pass_through(self):
        program = parse_program("float a, b; a = b + 1.0;")
        unrolled = unroll_program(program, 128)
        blocks = list(unrolled.blocks())
        assert len(blocks) == 1 and len(blocks[0]) == 1
