"""Machine models, reports, and the builder front end."""

import pytest

from repro.ir import (
    FLOAT32,
    FLOAT64,
    BlockBuilder,
    ProgramBuilder,
    format_program,
)
from repro.vm import (
    ExecutionReport,
    OP_COSTS,
    amd_phenom_ii,
    intel_dunnington,
    reduction,
)


class TestMachineModels:
    def test_table1_intel(self):
        m = intel_dunnington()
        assert m.datapath_bits == 128
        assert m.l1.size_bytes == 32 * 1024
        assert m.l1.ways == 8
        assert m.l1.line_bytes == 64
        assert m.cores == 12

    def test_table2_amd(self):
        m = amd_phenom_ii()
        assert m.l1.size_bytes == 64 * 1024
        assert m.l1.ways == 2
        assert m.cores == 4

    def test_amd_pack_costs_exceed_intel(self):
        intel, amd = intel_dunnington(), amd_phenom_ii()
        assert amd.lane_insert > intel.lane_insert
        assert amd.lane_extract > intel.lane_extract
        assert amd.shuffle > intel.shuffle

    def test_lanes_for(self):
        m = intel_dunnington()
        assert m.lanes_for(32) == 4
        assert m.lanes_for(64) == 2
        assert m.with_datapath(512).lanes_for(64) == 8

    def test_with_datapath_preserves_everything_else(self):
        m = intel_dunnington()
        wide = m.with_datapath(1024)
        assert wide.datapath_bits == 1024
        assert wide.l1 == m.l1 and wide.cores == m.cores

    def test_op_costs_cover_all_ir_operators(self):
        from repro.ir import BINARY_OPS, UNARY_OPS

        for op in list(BINARY_OPS) + list(UNARY_OPS):
            assert op in OP_COSTS

    def test_expensive_ops_cost_more(self):
        assert OP_COSTS["/"] > OP_COSTS["*"] > OP_COSTS["+"]


class TestReports:
    def test_charge_accumulates_cycles_and_counts(self):
        report = ExecutionReport()
        report.charge("scalar_op", 3, 2.0)
        assert report.counts["scalar_op"] == 3
        assert report.cycles == 6.0

    def test_reduction_helper(self):
        assert reduction(100.0, 80.0) == pytest.approx(0.2)
        assert reduction(0.0, 10.0) == 0.0

    def test_pack_unpack_partition(self):
        report = ExecutionReport()
        report.charge("vector_op", 5, 1.0)
        report.charge("lane_insert", 3, 1.0)
        report.charge("shuffle", 2, 1.0)
        assert report.pack_unpack_ops == 5
        assert report.dynamic_instructions == 5
        assert report.total_instructions == 10


class TestBuilder:
    def test_nested_loop_builder(self):
        b = ProgramBuilder("nest")
        M = b.array("M", (8, 8), FLOAT64)
        with b.loop("i", 0, 8):
            with b.loop("j", 0, 8) as j:
                pass
        program = b.build()
        loop = next(iter(program.loops()))
        assert loop.index == "i" and loop.inner.index == "j"

    def test_two_loops_in_one_body_rejected(self):
        b = ProgramBuilder("bad")
        with pytest.raises(ValueError):
            with b.loop("i", 0, 8):
                with b.loop("j", 0, 4):
                    pass
                with b.loop("k", 0, 4):
                    pass

    def test_build_inside_loop_rejected(self):
        b = ProgramBuilder("bad")
        with pytest.raises(RuntimeError):
            with b.loop("i", 0, 8):
                b.build()

    def test_operator_overloads(self):
        b = BlockBuilder()
        pb = ProgramBuilder()
        A = pb.array("A", (16,), FLOAT32)
        x = pb.scalar("x", FLOAT32)
        stmt = b.assign(x, (2.0 - A[3]) / x + (-x).abs())
        text = str(stmt.expr)
        assert "2.0 - A[3]" in text and "abs(neg(x))" in text

    def test_subscript_arithmetic(self):
        pb = ProgramBuilder()
        A = pb.array("A", (64,), FLOAT32)
        with pb.loop("i", 0, 8) as i:
            pb.assign(A[4 * i + 3], A[3 - i] + 1.0)
        program = pb.build()
        stmt = next(iter(program.loops())).body.statements[0]
        assert str(stmt.target) == "A[4*i + 3]"
        assert "A[3 - i]" in str(stmt.expr) or "A[-i + 3]" in str(stmt.expr)

    def test_mixed_statements_and_loops(self):
        b = ProgramBuilder()
        x = b.scalar("x", FLOAT32)
        y = b.scalar("y", FLOAT32)
        b.assign(x, 1.0)
        with b.loop("i", 0, 4):
            b.assign(y, x + 1.0)
        b.assign(x, 2.0)
        program = b.build()
        # straight block, loop, straight block
        assert len(program.body) == 3

    def test_printer_round_trip_via_builder(self):
        b = ProgramBuilder()
        A = b.array("A", (32,), FLOAT64)
        s = b.scalar("s", FLOAT64)
        with b.loop("i", 1, 31) as i:
            b.assign(s, A[i - 1].max(A[i + 1]))
            b.assign(A[i], s * 0.5)
        text = format_program(b.build())
        from repro.ir import parse_program

        assert format_program(parse_program(text)) == text
