"""Unit tests for :mod:`repro.telemetry.metrics`.

The Histogram contract matters most: it is the direct migration of the
latency histogram that lived in ``repro.service.server``, and the JSON
``/metrics`` body is pinned to its ``snapshot()`` shape — bucket keys,
boundary semantics, everything.
"""

from __future__ import annotations

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)


# -- primitives ----------------------------------------------------------------


def test_counter_is_monotonic():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(MetricError):
        counter.inc(-1)
    assert counter.value == 3.5


def test_gauge_moves_both_ways():
    gauge = Gauge()
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(2)
    assert gauge.value == 13.0


# -- histogram: the migrated service latency histogram -------------------------


def test_histogram_bucket_boundary_is_inclusive():
    """An observation landing exactly on a bound goes in that bucket
    (``ms <= bound``) — the original server histogram's semantics."""
    hist = Histogram()
    hist.observe(0.001)   # exactly 1 ms -> le_1
    hist.observe(0.0010001)  # just over -> le_2
    snap = hist.snapshot()
    assert snap["buckets"]["le_1"] == 1
    assert snap["buckets"]["le_2"] == 1


def test_histogram_overflow_goes_to_inf():
    hist = Histogram()
    hist.observe(6.0)  # 6000 ms, past the last 5000 ms bound
    snap = hist.snapshot()
    assert snap["buckets"]["inf"] == 1
    assert snap["count"] == 1


def test_histogram_snapshot_shape_is_the_service_json_shape():
    """The exact keys the service's JSON ``/metrics`` has always
    exposed; changing any of these breaks deployed consumers."""
    hist = Histogram()
    hist.observe(0.003)
    snap = hist.snapshot()
    assert set(snap) == {"count", "sum_ms", "buckets"}
    assert list(snap["buckets"]) == [
        "le_1", "le_2", "le_5", "le_10", "le_20", "le_50", "le_100",
        "le_200", "le_500", "le_1000", "le_2000", "le_5000", "inf",
    ]
    assert snap["count"] == 1
    assert snap["sum_ms"] == 3.0


def test_histogram_merge_adds_everything():
    a, b = Histogram(), Histogram()
    a.observe(0.001)
    a.observe(0.5)
    b.observe(0.001)
    b.observe(9.0)
    a.merge(b)
    snap = a.snapshot()
    assert snap["count"] == 4
    assert snap["buckets"]["le_1"] == 2
    assert snap["buckets"]["le_500"] == 1
    assert snap["buckets"]["inf"] == 1
    assert snap["sum_ms"] == pytest.approx(1 + 500 + 1 + 9000)


def test_histogram_merge_rejects_mismatched_bounds():
    with pytest.raises(MetricError):
        Histogram().merge(Histogram(bounds=(1, 10)))


def test_histogram_bounds_must_increase():
    with pytest.raises(MetricError):
        Histogram(bounds=(10, 5))
    with pytest.raises(MetricError):
        Histogram(bounds=(5, 5))


def test_histogram_cumulative_ends_at_inf_total():
    hist = Histogram(bounds=(1, 10))
    for seconds in (0.0005, 0.005, 0.5):
        hist.observe(seconds)
    pairs = hist.cumulative()
    assert pairs[0] == (1, 1)
    assert pairs[1] == (10, 2)
    assert pairs[-1] == (float("inf"), 3)
    cumulative = [count for _, count in pairs]
    assert cumulative == sorted(cumulative)


# -- families and labels -------------------------------------------------------


def test_labeled_family_children_are_distinct():
    registry = MetricsRegistry()
    family = registry.counter("jobs_total", labels=("shard",))
    family.labels(shard=0).inc()
    family.labels(shard=1).inc(2)
    family.labels(shard=0).inc()
    assert family.labels(shard=0).value == 2
    assert family.labels(shard=1).value == 2
    # Label values coerce to strings — shard=0 and shard="0" are one child.
    assert family.labels(shard="0").value == 2


def test_family_rejects_wrong_label_names():
    registry = MetricsRegistry()
    family = registry.counter("x_total", labels=("shard",))
    with pytest.raises(MetricError):
        family.labels(worker=1)
    with pytest.raises(MetricError):
        family.labels()


def test_unlabeled_family_proxies_child_methods():
    registry = MetricsRegistry()
    counter = registry.counter("plain_total")
    counter.inc(3)
    assert counter.value == 3
    hist = registry.histogram("lat_ms")
    hist.observe(0.001)
    assert hist.labels().total == 1


def test_labeled_family_refuses_bare_proxy():
    registry = MetricsRegistry()
    family = registry.counter("y_total", labels=("a",))
    with pytest.raises(MetricError):
        family.inc()


def test_invalid_names_rejected():
    registry = MetricsRegistry()
    with pytest.raises(MetricError):
        registry.counter("0bad")
    with pytest.raises(MetricError):
        registry.counter("ok_total", labels=("0bad",))
    with pytest.raises(MetricError):
        registry.counter("ok_total", labels=("__reserved",))
    with pytest.raises(MetricError):
        registry.counter("dup_total", labels=("a", "a"))


# -- registry ------------------------------------------------------------------


def test_registration_is_idempotent():
    registry = MetricsRegistry()
    first = registry.counter("hits_total", labels=("path",))
    again = registry.counter("hits_total", labels=("path",))
    assert first is again


def test_registration_conflicts_raise():
    registry = MetricsRegistry()
    registry.counter("m_total", labels=("a",))
    with pytest.raises(MetricError):
        registry.gauge("m_total", labels=("a",))  # kind conflict
    with pytest.raises(MetricError):
        registry.counter("m_total", labels=("b",))  # label conflict


def test_registry_snapshot_is_json_safe():
    import json

    registry = MetricsRegistry()
    registry.counter("a_total", "help a", labels=("k",)).labels(k="v").inc()
    registry.gauge("b").set(2)
    registry.histogram("c_ms").observe(0.002)
    snap = registry.snapshot()
    json.dumps(snap)  # must not raise
    assert snap["a_total"]["kind"] == "counter"
    assert snap["a_total"]["values"]["v"] == 1
    assert snap["c_ms"]["values"][""]["count"] == 1


def test_instance_registries_do_not_bleed():
    """Two registries with the same metric names stay independent —
    the property embedded test servers rely on."""
    r1, r2 = MetricsRegistry(), MetricsRegistry()
    r1.counter("served_total").inc(5)
    r2.counter("served_total").inc(1)
    assert r1.counter("served_total").value == 5
    assert r2.counter("served_total").value == 1
