"""Tests for structured JSON-lines logging and correlation IDs."""

from __future__ import annotations

import io
import json
import threading

from repro.telemetry.log import (
    JsonLogger,
    bind_request_id,
    current_request_id,
    new_request_id,
    parse_jsonl,
)


def test_new_request_id_shape_and_uniqueness():
    ids = {new_request_id() for _ in range(64)}
    assert len(ids) == 64
    for rid in ids:
        assert len(rid) == 16
        int(rid, 16)  # hex


def test_bind_request_id_scopes_the_context():
    assert current_request_id() is None
    with bind_request_id("abc123"):
        assert current_request_id() == "abc123"
        with bind_request_id("nested"):
            assert current_request_id() == "nested"
        assert current_request_id() == "abc123"
    assert current_request_id() is None


def test_disabled_logger_is_a_noop():
    log = JsonLogger()
    assert not log.enabled
    log.event("anything", key="value")  # must not raise, writes nowhere


def test_event_writes_one_json_line_with_context_id():
    log = JsonLogger()
    sink = io.StringIO()
    log.configure(stream=sink, service="test")
    with bind_request_id("feedbeefcafe0001"):
        log.event("request.done", kind="compile", ms=1.25)
    (record,) = parse_jsonl(sink.getvalue())
    assert record["event"] == "request.done"
    assert record["request_id"] == "feedbeefcafe0001"
    assert record["service"] == "test"
    assert record["kind"] == "compile"
    assert record["ms"] == 1.25
    assert isinstance(record["ts"], float)


def test_explicit_request_id_wins_over_context():
    log = JsonLogger()
    sink = io.StringIO()
    log.configure(stream=sink)
    with bind_request_id("context-id"):
        log.event("x", request_id="explicit-id")
    (record,) = parse_jsonl(sink.getvalue())
    assert record["request_id"] == "explicit-id"


def test_none_fields_are_dropped():
    log = JsonLogger()
    sink = io.StringIO()
    log.configure(stream=sink)
    log.event("x", present=1, absent=None)
    (record,) = parse_jsonl(sink.getvalue())
    assert "absent" not in record
    assert record["present"] == 1


def test_disable_stops_writing():
    log = JsonLogger()
    sink = io.StringIO()
    log.configure(stream=sink)
    log.event("before")
    log.disable()
    log.event("after")
    records = parse_jsonl(sink.getvalue())
    assert [r["event"] for r in records] == ["before"]


def test_configure_path_appends_jsonl(tmp_path):
    log = JsonLogger()
    target = tmp_path / "events.jsonl"
    log.configure(path=str(target))
    log.event("one")
    log.disable()
    log.configure(path=str(target))
    log.event("two")
    log.disable()
    records = parse_jsonl(target.read_text())
    assert [r["event"] for r in records] == ["one", "two"]


def test_concurrent_writers_produce_valid_lines():
    log = JsonLogger()
    sink = io.StringIO()
    log.configure(stream=sink)

    def write(worker: int) -> None:
        with bind_request_id(f"req-{worker}"):
            for index in range(50):
                log.event("tick", worker=worker, index=index)

    threads = [
        threading.Thread(target=write, args=(worker,)) for worker in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    records = parse_jsonl(sink.getvalue())
    assert len(records) == 200
    for record in records:
        assert record["request_id"] == f"req-{record['worker']}"


def test_bound_id_crosses_thread_spawn_explicitly():
    """contextvars don't auto-propagate into threads — the pool binds
    the job's ID inside the worker explicitly; mirror that pattern."""
    log = JsonLogger()
    sink = io.StringIO()
    log.configure(stream=sink)
    rid = new_request_id()

    def worker() -> None:
        with bind_request_id(rid):
            log.event("in-thread")

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    (record,) = parse_jsonl(sink.getvalue())
    assert record["request_id"] == rid


def test_unjsonable_values_degrade_to_str():
    log = JsonLogger()
    sink = io.StringIO()
    log.configure(stream=sink)
    log.event("x", payload=object())
    (record,) = parse_jsonl(sink.getvalue())
    assert "object object" in record["payload"]
    json.dumps(record)
