"""Smoke tests: every example script runs to completion and prints what
its docstring promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "faster" in out
    assert "semantics preserved: True" in out
    assert "instruction mix" in out


def test_figure15_walkthrough():
    out = run_example("figure15_walkthrough.py")
    assert "1 superword reuse(s)" in out
    assert "3 superword reuse(s)" in out
    assert "weight" in out


def test_complex_multiply():
    out = run_example("complex_multiply.py")
    assert "global+layout" in out
    assert "__slp_rep" in out


def test_stencil_sweep():
    out = run_example("stencil_sweep.py")
    assert "1024-bit" in out
    assert "superword statements" in out


def test_clamp_stencil():
    out = run_example("clamp_stencil.py")
    assert "select((s > U[i]), U[i], s)" in out
    assert "branch-semantics oracle matched: True" in out
    # The global variant must actually emit a blend, not fall back.
    global_row = next(
        line for line in out.splitlines() if line.strip().startswith("global")
    )
    assert global_row.split()[-1] == "1"


def test_inspect_pipeline():
    out = run_example("inspect_pipeline.py")
    assert "weight" in out
    assert "vpack" in out
    assert "max live superwords" in out
    assert "spills: 0" in out
