"""Loop peeling for alignment (pre-processing extension)."""

import pytest

from repro import (
    CompilerOptions,
    Variant,
    compile_program,
    intel_dunnington,
    simulate,
)
from repro.ir import parse_program
from repro.transform import choose_peel_count, peel_loop, peel_program

MISALIGNED = """
double U[4096]; double V[4096];
for (i = 1; i < 1023; i += 1) {
    V[i] = U[i] * 2.0;
}
"""


def loop_of(src):
    program = parse_program(src)
    return program, next(iter(program.loops()))


class TestPeelChoice:
    def test_misaligned_stream_wants_one_peel(self):
        program, loop = loop_of(MISALIGNED)
        # Lanes = 2 (double at 128 bits); start = 1 -> residue 1 -> peel 1.
        assert choose_peel_count(loop, program, 2) == 1

    def test_aligned_stream_wants_none(self):
        program, loop = loop_of(
            "double U[64]; double V[64];"
            "for (i = 0; i < 64; i += 1) { V[i] = U[i] * 2.0; }"
        )
        assert choose_peel_count(loop, program, 2) == 0

    def test_majority_vote_across_streams(self):
        program, loop = loop_of(
            "double U[64]; double V[64]; double W[64];"
            "for (i = 1; i < 63; i += 1) {"
            "  V[i] = U[i] * 2.0; W[i] = U[i] + 1.0; }"
        )
        assert choose_peel_count(loop, program, 2) == 1

    def test_fixed_residue_refs_do_not_vote(self):
        # Stride-2 subscript with 2 lanes: residue never changes.
        program, loop = loop_of(
            "double U[256]; double V[256];"
            "for (i = 1; i < 63; i += 1) { V[2*i] = U[2*i] + 1.0; }"
        )
        assert choose_peel_count(loop, program, 2) == 0

    def test_nested_loops_not_peeled(self):
        program = parse_program(
            "double M[64];"
            "for (i = 0; i < 4; i += 1) {"
            "  for (j = 1; j < 9; j += 1) { M[8*i + j] = 1.0; } }"
        )
        loop = next(iter(program.loops()))
        assert choose_peel_count(loop, program, 2) == 0


class TestPeelMechanics:
    def test_split_bounds(self):
        program, loop = loop_of(MISALIGNED)
        prologue, main = peel_loop(loop, 1)
        assert prologue is not None
        assert (prologue.start, prologue.stop) == (1, 2)
        assert (main.start, main.stop) == (2, 1023)

    def test_zero_peel_is_identity(self):
        program, loop = loop_of(MISALIGNED)
        prologue, main = peel_loop(loop, 0)
        assert prologue is None and main is loop

    def test_peel_program_counts(self):
        program, _ = loop_of(MISALIGNED)
        peeled_program, count = peel_program(program, 2)
        assert count == 1
        loops = list(peeled_program.loops())
        assert len(loops) == 2


class TestEndToEnd:
    def test_peeling_preserves_semantics(self):
        program = parse_program(MISALIGNED)
        base = compile_program(program, Variant.SCALAR, intel_dunnington())
        _, base_memory = simulate(base)
        peeled = compile_program(
            parse_program(MISALIGNED),
            Variant.GLOBAL,
            intel_dunnington(),
            CompilerOptions(peel_for_alignment=True),
        )
        _, memory = simulate(peeled)
        assert memory.state_equal(base_memory)

    def test_peeling_aligns_the_main_loop(self):
        from repro.vm import PackMode, VPack

        def modes(options):
            result = compile_program(
                parse_program(MISALIGNED),
                Variant.GLOBAL,
                intel_dunnington(),
                options,
            )
            out = []
            for unit in result.plan.units:
                body = getattr(unit, "body", [])
                out.extend(
                    i.mode for i in body if isinstance(i, VPack)
                )
            return out

        without = modes(CompilerOptions())
        with_peel = modes(CompilerOptions(peel_for_alignment=True))
        assert PackMode.CONTIG_UNALIGNED in without
        assert PackMode.CONTIG_ALIGNED in with_peel
        assert PackMode.CONTIG_UNALIGNED not in with_peel

    def test_peeling_not_slower(self):
        plain = compile_program(
            parse_program(MISALIGNED), Variant.GLOBAL, intel_dunnington()
        )
        plain_report, _ = simulate(plain)
        peeled = compile_program(
            parse_program(MISALIGNED),
            Variant.GLOBAL,
            intel_dunnington(),
            CompilerOptions(peel_for_alignment=True),
        )
        peeled_report, _ = simulate(peeled)
        assert peeled_report.cycles <= plain_report.cycles
