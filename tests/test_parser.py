"""The tiny C-like DSL front end."""

import pytest

from repro.ir import (
    ArrayRef,
    BasicBlock,
    Const,
    FLOAT32,
    FLOAT64,
    Loop,
    ParseError,
    Var,
    format_program,
    parse_block,
    parse_program,
)


class TestDeclarations:
    def test_array_and_scalar_declarations(self):
        program = parse_program("float A[16]; double x, y;")
        assert program.arrays["A"].shape == (16,)
        assert program.arrays["A"].type == FLOAT32
        assert program.scalars["x"].type == FLOAT64
        assert set(program.scalars) == {"x", "y"}

    def test_multidimensional_array(self):
        program = parse_program("float M[4][8];")
        assert program.arrays["M"].shape == (4, 8)
        assert program.arrays["M"].size == 32

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ValueError):
            parse_program("float a; int a;")

    def test_line_and_block_comments_are_skipped(self):
        # Regression: the `/` operator used to eat the first slash of
        # `//`, so the comment alternative never matched.
        program = parse_program(
            """
            // leading line comment (with / * punctuation ; inside)
            float A[8]; /* block
            comment spanning lines */ float b;
            for (i = 0; i < 4; i += 1) {
                A[2*i] = A[2*i] / 2.0;  // trailing comment
            }
            """
        )
        assert set(program.arrays) == {"A"}
        assert set(program.scalars) == {"b"}
        loop = next(iter(program.loops()))
        assert len(loop.body.statements) == 1


class TestStatements:
    def test_simple_assignment(self):
        block = parse_block("a = b * 2.0;", "float a, b;")
        stmt = block.statements[0]
        assert isinstance(stmt.target, Var)
        assert "2.0" in str(stmt.expr)

    def test_precedence(self):
        block = parse_block("a = b + c * d;", "float a, b, c, d;")
        assert str(block.statements[0].expr) == "(b + (c * d))"

    def test_parentheses(self):
        block = parse_block("a = (b + c) * d;", "float a, b, c, d;")
        assert str(block.statements[0].expr) == "((b + c) * d)"

    def test_min_max_sqrt(self):
        block = parse_block(
            "a = min(b, c) + sqrt(d);", "float a, b, c, d;"
        )
        text = str(block.statements[0].expr)
        assert "min(b, c)" in text and "sqrt(d)" in text

    def test_unary_minus(self):
        block = parse_block("a = -b;", "float a, b;")
        assert str(block.statements[0].expr) == "neg(b)"

    def test_constant_folding_of_literals(self):
        block = parse_block("a = b + 2 * 3;", "float a, b;")
        expr = block.statements[0].expr
        # 2*3 folds before typing against b.
        assert "6" in str(expr)

    def test_undeclared_identifier_rejected(self):
        with pytest.raises(ParseError):
            parse_block("a = zz;", "float a;")

    def test_assignment_to_undeclared_rejected(self):
        with pytest.raises(ParseError):
            parse_block("zz = 1.0;", "float a;")


class TestLoops:
    SRC = """
    float A[64]; float B[64];
    for (i = 0; i < 16; i += 1) {
        A[2*i] = B[i] + 1.0;
    }
    """

    def test_loop_bounds(self):
        program = parse_program(self.SRC)
        loop = next(iter(program.loops()))
        assert (loop.start, loop.stop, loop.step) == (0, 16, 1)
        assert len(loop.body) == 1

    def test_affine_subscripts(self):
        program = parse_program(self.SRC)
        loop = next(iter(program.loops()))
        target = loop.body.statements[0].target
        assert isinstance(target, ArrayRef)
        assert target.subscripts[0].coeff("i") == 2

    def test_nested_loops(self):
        program = parse_program(
            """
            float M[8][8];
            for (i = 0; i < 8; i += 1) {
                for (j = 0; j < 8; j += 1) {
                    M[i][j] = M[i][j] * 2.0;
                }
            }
            """
        )
        loop = next(iter(program.loops()))
        assert loop.index == "i"
        assert loop.inner is not None and loop.inner.index == "j"

    def test_two_nested_loops_in_one_body_rejected(self):
        with pytest.raises(ParseError):
            parse_program(
                """
                float A[8];
                for (i = 0; i < 8; i += 1) {
                    for (j = 0; j < 2; j += 1) { A[j] = 1.0; }
                    for (k = 0; k < 2; k += 1) { A[k] = 2.0; }
                }
                """
            )

    def test_subscript_requires_enclosing_index(self):
        with pytest.raises(ParseError):
            parse_program(
                "float A[8]; for (i = 0; i < 4; i += 1) { A[j] = 1.0; }"
            )


class TestRoundTrip:
    def test_print_then_reparse(self):
        src = """
        float A[64]; float B[64];
        float s;
        for (i = 1; i < 15; i += 1) {
            s = A[i - 1] + A[i + 1];
            B[2*i] = s * 0.5;
        }
        """
        program = parse_program(src)
        printed = format_program(program)
        reparsed = parse_program(printed)
        assert format_program(reparsed) == printed

    def test_parse_block_rejects_loops(self):
        with pytest.raises(ParseError):
            parse_block(
                "for (i = 0; i < 4; i += 1) { a = 1.0; }", "float a;"
            )
