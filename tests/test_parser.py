"""The tiny C-like DSL front end."""

import pytest

from repro.ir import (
    ArrayRef,
    BasicBlock,
    Const,
    FLOAT32,
    FLOAT64,
    Loop,
    ParseError,
    Var,
    format_program,
    parse_block,
    parse_program,
)


class TestDeclarations:
    def test_array_and_scalar_declarations(self):
        program = parse_program("float A[16]; double x, y;")
        assert program.arrays["A"].shape == (16,)
        assert program.arrays["A"].type == FLOAT32
        assert program.scalars["x"].type == FLOAT64
        assert set(program.scalars) == {"x", "y"}

    def test_multidimensional_array(self):
        program = parse_program("float M[4][8];")
        assert program.arrays["M"].shape == (4, 8)
        assert program.arrays["M"].size == 32

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ValueError):
            parse_program("float a; int a;")

    def test_line_and_block_comments_are_skipped(self):
        # Regression: the `/` operator used to eat the first slash of
        # `//`, so the comment alternative never matched.
        program = parse_program(
            """
            // leading line comment (with / * punctuation ; inside)
            float A[8]; /* block
            comment spanning lines */ float b;
            for (i = 0; i < 4; i += 1) {
                A[2*i] = A[2*i] / 2.0;  // trailing comment
            }
            """
        )
        assert set(program.arrays) == {"A"}
        assert set(program.scalars) == {"b"}
        loop = next(iter(program.loops()))
        assert len(loop.body.statements) == 1


class TestStatements:
    def test_simple_assignment(self):
        block = parse_block("a = b * 2.0;", "float a, b;")
        stmt = block.statements[0]
        assert isinstance(stmt.target, Var)
        assert "2.0" in str(stmt.expr)

    def test_precedence(self):
        block = parse_block("a = b + c * d;", "float a, b, c, d;")
        assert str(block.statements[0].expr) == "(b + (c * d))"

    def test_parentheses(self):
        block = parse_block("a = (b + c) * d;", "float a, b, c, d;")
        assert str(block.statements[0].expr) == "((b + c) * d)"

    def test_min_max_sqrt(self):
        block = parse_block(
            "a = min(b, c) + sqrt(d);", "float a, b, c, d;"
        )
        text = str(block.statements[0].expr)
        assert "min(b, c)" in text and "sqrt(d)" in text

    def test_unary_minus(self):
        block = parse_block("a = -b;", "float a, b;")
        assert str(block.statements[0].expr) == "neg(b)"

    def test_constant_folding_of_literals(self):
        block = parse_block("a = b + 2 * 3;", "float a, b;")
        expr = block.statements[0].expr
        # 2*3 folds before typing against b.
        assert "6" in str(expr)

    def test_undeclared_identifier_rejected(self):
        with pytest.raises(ParseError):
            parse_block("a = zz;", "float a;")

    def test_assignment_to_undeclared_rejected(self):
        with pytest.raises(ParseError):
            parse_block("zz = 1.0;", "float a;")


class TestLoops:
    SRC = """
    float A[64]; float B[64];
    for (i = 0; i < 16; i += 1) {
        A[2*i] = B[i] + 1.0;
    }
    """

    def test_loop_bounds(self):
        program = parse_program(self.SRC)
        loop = next(iter(program.loops()))
        assert (loop.start, loop.stop, loop.step) == (0, 16, 1)
        assert len(loop.body) == 1

    def test_affine_subscripts(self):
        program = parse_program(self.SRC)
        loop = next(iter(program.loops()))
        target = loop.body.statements[0].target
        assert isinstance(target, ArrayRef)
        assert target.subscripts[0].coeff("i") == 2

    def test_nested_loops(self):
        program = parse_program(
            """
            float M[8][8];
            for (i = 0; i < 8; i += 1) {
                for (j = 0; j < 8; j += 1) {
                    M[i][j] = M[i][j] * 2.0;
                }
            }
            """
        )
        loop = next(iter(program.loops()))
        assert loop.index == "i"
        assert loop.inner is not None and loop.inner.index == "j"

    def test_two_nested_loops_in_one_body_rejected(self):
        with pytest.raises(ParseError):
            parse_program(
                """
                float A[8];
                for (i = 0; i < 8; i += 1) {
                    for (j = 0; j < 2; j += 1) { A[j] = 1.0; }
                    for (k = 0; k < 2; k += 1) { A[k] = 2.0; }
                }
                """
            )

    def test_subscript_requires_enclosing_index(self):
        with pytest.raises(ParseError):
            parse_program(
                "float A[8]; for (i = 0; i < 4; i += 1) { A[j] = 1.0; }"
            )


class TestConditionals:
    def test_if_else_region_parses(self):
        program = parse_program(
            """
            float A[8]; float B[8]; float c;
            if (A[0] > c) {
                B[0] = A[0];
            } else {
                B[0] = c;
            }
            """
        )
        block = program.body[0]
        assert block.has_regions
        region = block.statements[0]
        assert len(region.then_body) == 1
        assert len(region.else_body) == 1

    def test_select_call_parses(self):
        program = parse_program(
            "float A[8]; float c;\nA[0] = select(A[1] > c, c, A[1]);"
        )
        stmt = program.body[0].statements[0]
        assert stmt.expr.op == "select"

    def test_all_literal_select_folds(self):
        program = parse_program("float a;\na = select(1.0, 2.0, 3.0);")
        stmt = program.body[0].statements[0]
        assert isinstance(stmt.expr, Const)
        assert stmt.expr.value == 2.0

    def test_region_in_loop_parses(self):
        program = parse_program(
            """
            float A[16]; float c;
            for (i = 0; i < 8; i += 1) {
                if (A[i] > c) {
                    A[i] = c;
                }
            }
            """
        )
        loop = next(iter(program.loops()))
        assert loop.body.has_regions

    def test_nested_if_rejected_with_position(self):
        src = (
            "float A[8]; float c;\n"
            "if (A[0] > c) {\n"
            "  if (c > A[1]) {\n"
            "    A[0] = c;\n"
            "  }\n"
            "}"
        )
        with pytest.raises(ParseError) as exc:
            parse_program(src)
        assert exc.value.line == 3
        assert exc.value.column == 3
        assert "single-level" in str(exc.value)
        assert "line 3:3" in str(exc.value)

    def test_loop_in_branch_rejected_with_position(self):
        src = (
            "float A[8]; float c;\n"
            "if (A[0] > c) {\n"
            "  for (i = 0; i < 4; i += 1) {\n"
            "    A[i] = c;\n"
            "  }\n"
            "}"
        )
        with pytest.raises(ParseError) as exc:
            parse_program(src)
        assert (exc.value.line, exc.value.column) == (3, 3)

    def test_empty_then_branch_rejected_with_position(self):
        with pytest.raises(ParseError) as exc:
            parse_program("float A[8]; float c;\nif (c > A[0]) {\n}")
        assert exc.value.line == 2
        assert exc.value.column == 1

    def test_condition_operand_write_rejected_with_position(self):
        src = (
            "float A[8]; float B[8]; float c;\n"
            "if (A[0] > c) {\n"
            "  A[1] = c;\n"
            "  B[0] = A[1];\n"
            "}"
        )
        with pytest.raises(ParseError) as exc:
            parse_program(src)
        assert (exc.value.line, exc.value.column) == (2, 1)
        assert "'A'" in str(exc.value)
        assert "condition" in str(exc.value)

    def test_final_statement_may_write_condition_operand(self):
        # The in-place clamp idiom: the last lowered statement never
        # poisons a later condition re-evaluation, so it stays legal.
        program = parse_program(
            """
            float A[16]; float c;
            for (i = 0; i < 8; i += 1) {
                if (A[i] > c) {
                    A[i] = c;
                }
            }
            """
        )
        assert next(iter(program.loops())).body.has_regions

    def test_all_literal_condition_rejected(self):
        with pytest.raises(ParseError) as exc:
            parse_program("float A[8];\nif (1.0 > 2.0) {\n  A[0] = 1.0;\n}")
        assert "typed operand" in str(exc.value)
        assert exc.value.line == 2

    def test_unclosed_region_rejected_with_position(self):
        with pytest.raises(ParseError) as exc:
            parse_program(
                "float A[8]; float c;\nif (c > A[0]) {\n  A[0] = c;\n"
            )
        assert exc.value.line == 4
        assert "expected '}'" in str(exc.value)

    def test_chained_comparison_rejected_with_position(self):
        with pytest.raises(ParseError) as exc:
            parse_program("float A[8]; float c;\nA[0] = (c < A[1] < A[2]);")
        assert (exc.value.line, exc.value.column) == (2, 18)
        assert "parenthesize" in str(exc.value)

    def test_region_round_trips(self):
        src = """
        double U[64]; double C[64];
        double s;
        for (i = 1; i < 15; i += 1) {
            s = (U[i - 1] + U[i + 1]) * 0.5;
            if (s > U[i]) {
                C[i] = U[i];
            } else {
                C[i] = s;
            }
        }
        """
        printed = format_program(parse_program(src))
        assert format_program(parse_program(printed)) == printed
        assert "if ((s > U[i])) {" in printed
        assert "} else {" in printed


class TestRoundTrip:
    def test_print_then_reparse(self):
        src = """
        float A[64]; float B[64];
        float s;
        for (i = 1; i < 15; i += 1) {
            s = A[i - 1] + A[i + 1];
            B[2*i] = s * 0.5;
        }
        """
        program = parse_program(src)
        printed = format_program(program)
        reparsed = parse_program(printed)
        assert format_program(reparsed) == printed

    def test_parse_block_rejects_loops(self):
        with pytest.raises(ParseError):
            parse_block(
                "for (i = 0; i < 4; i += 1) { a = 1.0; }", "float a;"
            )
