"""Defensive behavior: malformed inputs fail loudly and early."""

import pytest

from repro import CompilerOptions, Variant, compile_program, intel_dunnington
from repro.ir import (
    Affine,
    ArrayRef,
    BasicBlock,
    FLOAT32,
    Loop,
    ParseError,
    Program,
    Statement,
    Var,
    parse_program,
)


class TestParserErrors:
    @pytest.mark.parametrize(
        "src",
        [
            "float a; a = ;",                       # missing expression
            "float a; a = b;",                      # undeclared identifier
            "float A[2]; A[0 = 1.0;",               # unclosed subscript
            "float a; for (i = 0; j < 4; i += 1) { a = 1.0; }",
            "float a; for (i = 0; i < 4; j += 1) { a = 1.0; }",
            "float A[x];",                          # non-literal dimension
            "float A[4]; A[1.5] = 1.0;",            # fractional subscript
            "float a; a = min(a);",                 # arity error
        ],
    )
    def test_malformed_source_raises(self, src):
        with pytest.raises((ParseError, ValueError)):
            parse_program(src)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse_program(
                "float M[2][2]; for (i = 0; i < 2; i += 1) "
                "{ M[i] = 1.0; }"
            )


class TestIrGuards:
    def test_loop_needs_positive_step(self):
        with pytest.raises(ValueError):
            Loop("i", 0, 4, 0, BasicBlock())

    def test_affine_lane_scale_type(self):
        with pytest.raises(TypeError):
            Affine.var("i") * "x"  # type: ignore[operator]

    def test_program_rejects_shadowing(self):
        program = Program()
        program.declare_scalar("x", FLOAT32)
        with pytest.raises(ValueError):
            program.declare_array("x", (4,), FLOAT32)


class TestCompilerGuards:
    def test_unknown_decision_mode_rejected(self):
        from repro.slp import BasicGrouping, GroupNode
        from repro.analysis import DependenceGraph

        program = parse_program("float a, b; a = b + 1.0;")
        block = next(iter(program.blocks()))
        deps = DependenceGraph(block)
        units = [GroupNode.of_statement(s) for s in block]
        with pytest.raises(ValueError):
            BasicGrouping(units, deps, 128, decision_mode="bogus")

    def test_incompatible_datapath_for_type(self):
        from repro.ir import FLOAT64

        with pytest.raises(ValueError):
            FLOAT64.lanes(100)  # 100 bits not a multiple of 64

    def test_out_of_bounds_access_surfaces(self):
        # With the verifier off, the bad access still surfaces — at
        # simulation time, from the memory model itself.
        src = """
        double A[4];
        for (i = 0; i < 8; i += 1) { A[i] = 1.0; }
        """
        result = compile_program(
            parse_program(src), Variant.SCALAR, intel_dunnington(),
            CompilerOptions(checks="none"),
        )
        from repro.vm import Simulator

        with pytest.raises(IndexError):
            Simulator(result.machine).run(result.plan)

    def test_out_of_bounds_access_caught_at_compile_time(self):
        from repro import VerifyError

        src = """
        double A[4];
        for (i = 0; i < 8; i += 1) { A[i] = 1.0; }
        """
        with pytest.raises(VerifyError) as excinfo:
            compile_program(
                parse_program(src), Variant.SCALAR, intel_dunnington(),
                CompilerOptions(checks="ir"),
            )
        assert excinfo.value.rule == "ir.bounds"


class TestScheduleGuards:
    def test_unroll_negative_factor(self):
        from repro.transform import unroll_loop

        program = parse_program(
            "float A[8]; for (i = 0; i < 8; i += 1) { A[i] = 1.0; }"
        )
        loop = next(iter(program.loops()))
        with pytest.raises(ValueError):
            unroll_loop(loop, 0, set())

    def test_cache_config_validation(self):
        from repro.vm import CacheConfig

        with pytest.raises(ValueError):
            _ = CacheConfig(64, 64, 4, 10.0).sets
