"""Differential and unit guarantees of the compiled kernel engine.

The compiled engine (``src/repro/vm/compiled.py``) emits one
specialized NumPy function per affine loop, runs a superoptimizing
peephole pass before emission, and caches emitted kernels in-process
and in the ``ArtifactStore``. Like the batched engine it is purely a
simulation-speed optimization: reports and memories must be *exactly
equal* to the reference interpreter's on every plan, with per-unit
fallback to the batched path where codegen does not apply. These tests
pin that contract on the full kernel × variant × machine matrix, the
kernel-cache keying and invalidation rules, the fallback counters, the
peephole rewrites (including idempotence and a deliberately broken
rewrite the differential oracle must catch), and the bulk cache-replay
path the engine relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Variant, compile_program, parse_program
from repro.bench import ALL_KERNELS, KERNELS
from repro.bench.suite import DEFAULT_VARIANTS
from repro.fuzz import buggy_peephole_mutator, differential_check
from repro.ir import Affine
from repro.perf import PERF
from repro.store import ArtifactStore
from repro.vm import (
    Cache,
    CacheConfig,
    MemRef,
    PackMode,
    Simulator,
    StoreMode,
    VOp,
    VPack,
    VShuffle,
    VStore,
    amd_phenom_ii,
    intel_dunnington,
)
from repro.vm import compiled as compiled_mod
from repro.vm import peephole
from repro.vm.compiled import (
    clear_kernel_memo,
    emit_plan_kernels,
    kernel_fingerprint,
)
from repro.vm.peephole import VCopy, peephole_optimize

MATRIX_MACHINES = [("intel", intel_dunnington), ("amd", amd_phenom_ii)]


@pytest.fixture(autouse=True)
def _fresh_kernel_memo():
    clear_kernel_memo()
    yield
    clear_kernel_memo()


def _run_engines(plan, machine, seed=0, kernel_store=None):
    out = {}
    for engine in ("reference", "batched", "compiled"):
        sim = Simulator(machine, engine=engine, kernel_store=kernel_store)
        out[engine] = sim.run(plan, seed=seed)
    return out


def _assert_identical(plan, machine, seed=0):
    runs = _run_engines(plan, machine, seed=seed)
    ref_report, ref_mem = runs["reference"]
    for engine in ("batched", "compiled"):
        report, mem = runs[engine]
        # Dataclass equality covers counts, cycle charge buckets,
        # extra_cycles, cache hit/miss totals, per-array access/miss
        # stats, and the per-provenance cost breakdown.
        assert report == ref_report, engine
        assert report.cycles == ref_report.cycles
        assert mem.state_equal(ref_mem), engine


# -- the full paper matrix ---------------------------------------------------------


@pytest.mark.parametrize(
    "kernel", ALL_KERNELS, ids=[k.name for k in ALL_KERNELS]
)
def test_kernel_matrix_identical(kernel):
    """Every kernel × variant × machine combination produces reports and
    memories indistinguishable from the reference interpreter and the
    batched engine."""
    program = kernel.build(8)
    for _, factory in MATRIX_MACHINES:
        machine = factory()
        for variant in DEFAULT_VARIANTS:
            compiled = compile_program(program, variant, machine)
            _assert_identical(compiled.plan, compiled.machine)


def test_amd_non_dyadic_costs_identical():
    """AMD's fractional per-op costs exercise the exact-integer charge
    buckets the compiled engine replays in bulk."""
    machine = amd_phenom_ii()
    for name in ("namd", "lbm", "milc"):
        program = KERNELS[name].build(32)
        for variant in (Variant.GLOBAL, Variant.GLOBAL_LAYOUT):
            compiled = compile_program(program, variant, machine)
            _assert_identical(compiled.plan, compiled.machine)


# -- fallback coverage -------------------------------------------------------------

REDUCTION_SRC = """
double A[64];
double s;
for (i = 0; i < 64; i += 1) {
    s = s + A[i];
}
"""

RECURRENCE_SRC = """
double A[66];
for (i = 0; i < 64; i += 1) {
    A[i + 1] = A[i] * 0.5;
}
"""

NESTED_SRC = """
double A[64];
double B[64];
for (i = 0; i < 8; i += 1) {
    for (j = 0; j < 8; j += 1) {
        A[i + j] = A[i + j] + B[j];
    }
}
"""

AFFINE_SRC = """
double A[64];
double B[64];
double C[64];
for (i = 0; i < 64; i += 1) {
    C[i] = A[i] * B[i] + 2.0;
}
"""


def _counters_for(src, variant=Variant.SCALAR, kernel_store=None):
    program = parse_program(src)
    machine = intel_dunnington()
    compiled = compile_program(program, variant, machine)
    PERF.reset()
    PERF.enable()
    try:
        Simulator(
            machine, engine="compiled", kernel_store=kernel_store
        ).run(compiled.plan)
    finally:
        PERF.disable()
    return dict(PERF.counters), compiled


@pytest.mark.parametrize(
    "src",
    [REDUCTION_SRC, RECURRENCE_SRC],
    ids=["scalar-reduction", "array-recurrence"],
)
def test_fallback_kernels_identical(src):
    """Loops with cross-iteration carries take the batched engine's
    fallback decision path — and still match the reference exactly."""
    counters, compiled = _counters_for(src)
    assert counters.get("simulate.compiled_fallbacks", 0) >= 1
    assert counters.get("simulate.compiled_loops", 0) == 0
    _assert_identical(compiled.plan, compiled.machine)


def test_nested_loop_outer_falls_back_inner_compiles():
    """Loop nests decompose: the outer loop falls back, but each inner
    instance runs the emitted kernel with its dynamic base offsets."""
    counters, compiled = _counters_for(NESTED_SRC)
    assert counters.get("simulate.compiled_fallbacks", 0) >= 1
    assert counters.get("simulate.compiled_loops", 0) == 8
    _assert_identical(compiled.plan, compiled.machine)


def test_affine_kernel_takes_compiled_path():
    counters, compiled = _counters_for(AFFINE_SRC)
    assert counters.get("simulate.compiled_loops", 0) >= 1
    assert counters.get("simulate.compiled_fallbacks", 0) == 0
    assert counters.get("compiled.emissions", 0) == 1
    _assert_identical(compiled.plan, compiled.machine)


def test_full_kernel_set_has_no_fallbacks():
    """The affine benchmark kernels must all take the compiled path —
    this is the population the ≥50x speedup gate is measured on."""
    machine = intel_dunnington()
    for name in ("cactusADM", "soplex", "lbm", "milc"):
        program = KERNELS[name].build(16)
        compiled = compile_program(program, Variant.GLOBAL, machine)
        PERF.reset()
        PERF.enable()
        try:
            Simulator(machine, engine="compiled").run(compiled.plan)
        finally:
            PERF.disable()
        assert PERF.counters.get("simulate.compiled_fallbacks", 0) == 0
        assert PERF.counters.get("simulate.compiled_loops", 0) >= 1


# -- kernel caching ----------------------------------------------------------------


def _affine_plan(machine=None):
    machine = machine or intel_dunnington()
    program = parse_program(AFFINE_SRC)
    return compile_program(program, Variant.GLOBAL, machine), machine


class TestKernelCache:
    def test_fingerprint_is_deterministic_across_compiles(self):
        compiled_a, machine = _affine_plan()
        compiled_b, _ = _affine_plan()
        assert compiled_a.plan is not compiled_b.plan
        assert kernel_fingerprint(
            compiled_a.plan, machine
        ) == kernel_fingerprint(compiled_b.plan, machine)

    def test_fingerprint_differs_across_machines(self):
        compiled, _ = _affine_plan()
        assert kernel_fingerprint(
            compiled.plan, intel_dunnington()
        ) != kernel_fingerprint(compiled.plan, amd_phenom_ii())

    def test_codegen_version_bump_invalidates(self, monkeypatch):
        """Bumping CODEGEN_VERSION must change every fingerprint — a
        store shared between old and new workers can never serve a
        stale kernel."""
        compiled, machine = _affine_plan()
        before = kernel_fingerprint(compiled.plan, machine)
        monkeypatch.setattr(
            compiled_mod, "CODEGEN_VERSION", compiled_mod.CODEGEN_VERSION + 1
        )
        after = kernel_fingerprint(compiled.plan, machine)
        assert before != after

    def test_memo_hit_skips_emission(self):
        compiled, machine = _affine_plan()
        sim = Simulator(machine, engine="compiled")
        PERF.reset()
        PERF.enable()
        try:
            sim.run(compiled.plan)
            sim.run(compiled.plan)
        finally:
            PERF.disable()
        assert PERF.counters.get("compiled.emissions", 0) == 1
        assert PERF.counters.get("compiled.kernel_memo_hits", 0) == 1

    def test_store_round_trip_zero_second_emissions(self, tmp_path):
        """A warm worker sharing the store loads the pickled kernel
        artifact instead of re-emitting — the acceptance criterion for
        warm service workers."""
        store = ArtifactStore(tmp_path)
        compiled, machine = _affine_plan()
        counters, _ = _counters_for(AFFINE_SRC, Variant.GLOBAL, store)
        assert counters.get("compiled.emissions", 0) == 1
        assert counters.get("kernel_store.puts", 0) == 1
        # Simulate a fresh process: drop the in-process memo.
        clear_kernel_memo()
        counters, _ = _counters_for(AFFINE_SRC, Variant.GLOBAL, store)
        assert counters.get("compiled.emissions", 0) == 0
        assert counters.get("compiled.kernel_store_hits", 0) == 1
        assert counters.get("kernel_store.hits", 0) == 1

    def test_store_artifact_runs_identically(self, tmp_path):
        store = ArtifactStore(tmp_path)
        compiled, machine = _affine_plan()
        Simulator(machine, engine="compiled", kernel_store=store).run(
            compiled.plan
        )
        clear_kernel_memo()
        ref_report, ref_mem = Simulator(machine, engine="reference").run(
            compiled.plan
        )
        report, mem = Simulator(
            machine, engine="compiled", kernel_store=store
        ).run(compiled.plan)
        assert report == ref_report
        assert mem.state_equal(ref_mem)

    def test_corrupt_kernel_entry_evicted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        compiled, machine = _affine_plan()
        fingerprint = kernel_fingerprint(compiled.plan, machine)
        artifact = emit_plan_kernels(compiled.plan, machine)
        store.put_kernel(fingerprint, artifact)
        path = store._kernel_path(fingerprint)
        path.write_bytes(b"not a pickle")
        assert store.get_kernel(fingerprint) is None
        assert store.corrupt_evictions == 1
        assert not path.exists()
        # And the engine recovers by re-emitting.
        report, mem = Simulator(
            machine, engine="compiled", kernel_store=store
        ).run(compiled.plan)
        ref_report, ref_mem = Simulator(machine, engine="reference").run(
            compiled.plan
        )
        assert report == ref_report
        assert mem.state_equal(ref_mem)

    def test_kernel_entries_counted_and_pruned(self, tmp_path):
        store = ArtifactStore(tmp_path)
        compiled, machine = _affine_plan()
        fingerprint = kernel_fingerprint(compiled.plan, machine)
        store.put_kernel(fingerprint, emit_plan_kernels(compiled.plan, machine))
        assert store.stats().entries == 1
        assert store.prune(0) == 1
        assert store.get_kernel(fingerprint) is None


# -- peephole pass -----------------------------------------------------------------


def _mem(array, const):
    return MemRef(array, Affine((), const))


def _pack(dst, refs):
    return VPack(dst, tuple(refs), PackMode.GATHER)


class TestPeephole:
    def test_shuffle_of_shuffle_composes_to_copy(self):
        body = [
            VOp("+", 1, (8, 9), 4),
            VShuffle(2, 1, (1, 0, 3, 2)),
            VShuffle(3, 2, (1, 0, 3, 2)),
        ]
        optimized, events = peephole_optimize(body)
        kinds = [e.kind for e in events]
        assert "shuffle_compose" in kinds
        assert optimized[2] == VCopy(3, 1)

    def test_identity_shuffle_becomes_copy(self):
        body = [VOp("+", 1, (8, 9), 4), VShuffle(2, 1, (0, 1, 2, 3))]
        optimized, events = peephole_optimize(body)
        assert [e.kind for e in events] == ["identity_shuffle"]
        assert optimized[1] == VCopy(2, 1)

    def test_partial_identity_shuffle_is_not_a_copy(self):
        """An identity permutation narrower than the source register
        must stay a shuffle — a copy would change the register width."""
        body = [VOp("+", 1, (8, 9), 4), VShuffle(2, 1, (0, 1))]
        optimized, events = peephole_optimize(body)
        assert events == []
        assert optimized == body

    def test_pack_forwarding(self):
        refs = [_mem("A", k) for k in range(4)]
        body = [
            VOp("+", 1, (8, 9), 4),
            VStore(tuple(refs), 1, StoreMode.CONTIG_ALIGNED),
            _pack(2, reversed(refs)),
        ]
        optimized, events = peephole_optimize(body)
        assert [e.kind for e in events] == ["pack_forward"]
        assert optimized[2] == VShuffle(2, 1, (3, 2, 1, 0))

    def test_aliasing_store_blocks_forwarding(self):
        """An intervening same-array store may overwrite the forwarded
        location at some iteration, so the pack must stay a reload."""
        refs = [_mem("A", k) for k in range(4)]
        body = [
            VOp("+", 1, (8, 9), 4),
            VStore(tuple(refs), 1, StoreMode.CONTIG_ALIGNED),
            VStore((_mem("A", 64),), 1, StoreMode.SCATTER),
            _pack(2, refs),
        ]
        optimized, events = peephole_optimize(body)
        assert events == []
        assert optimized == body

    def test_dead_definition_removed(self):
        body = [
            VOp("+", 1, (8, 9), 4),
            VOp("*", 1, (8, 9), 4),
            VStore((_mem("A", 0),), 1, StoreMode.SCATTER),
        ]
        optimized, events = peephole_optimize(body)
        assert [e.kind for e in events] == ["dead_def"]
        assert len(optimized) == 2

    def test_live_out_definition_kept(self):
        """The engine publishes final register values, so a definition
        never redefined stays even if the body never reads it."""
        body = [VOp("+", 1, (8, 9), 4)]
        optimized, events = peephole_optimize(body)
        assert events == []
        assert optimized == body

    def test_events_carry_provenance(self):
        body = [
            VOp("+", 1, (8, 9), 4, prov="s1"),
            VShuffle(2, 1, (0, 1, 2, 3), prov="s2"),
        ]
        _, events = peephole_optimize(body)
        assert events and events[0].provs == ("s2",)

    def test_idempotent_on_real_plans(self):
        """Running the pass on its own output performs zero rewrites,
        on every loop body of every benchmark kernel plan."""
        machine = intel_dunnington()
        for name in ("cactusADM", "lbm", "milc", "cg"):
            program = KERNELS[name].build(16)
            for variant in DEFAULT_VARIANTS:
                compiled = compile_program(program, variant, machine)
                for _, unit in compiled_mod._walk_loops(compiled.plan):
                    once, _ = peephole_optimize(list(unit.body))
                    twice, events = peephole_optimize(once)
                    assert events == []
                    assert twice == once


# -- the oracle catches a broken rewrite -------------------------------------------


class TestMutation:
    def test_buggy_peephole_caught_by_differential_oracle(self):
        """Installing the deliberately broken rewrite must surface as a
        divergence on the compiled engine — proof the 3-engine matrix
        actually guards the peephole pass."""
        program = parse_program(AFFINE_SRC)
        assert differential_check(program).status == "ok"
        peephole.DEBUG_MUTATOR = buggy_peephole_mutator
        clear_kernel_memo()
        try:
            result = differential_check(program)
        finally:
            peephole.DEBUG_MUTATOR = None
            clear_kernel_memo()
        assert result.status == "diverged"
        assert result.divergence.sim_engine == "compiled"
        # And the poison never leaks into the caches.
        assert differential_check(program).status == "ok"

    def test_mutator_bypasses_kernel_store(self, tmp_path):
        """Kernels emitted under a mutator must not be persisted — a
        later clean run sharing the store would replay the bug."""
        store = ArtifactStore(tmp_path)
        compiled, machine = _affine_plan()
        peephole.DEBUG_MUTATOR = buggy_peephole_mutator
        clear_kernel_memo()
        try:
            Simulator(machine, engine="compiled", kernel_store=store).run(
                compiled.plan
            )
        finally:
            peephole.DEBUG_MUTATOR = None
            clear_kernel_memo()
        fingerprint = kernel_fingerprint(compiled.plan, machine)
        assert store.get_kernel(fingerprint) is None


# -- bulk cache replay -------------------------------------------------------------


class TestBulkReplay:
    def _random_stream(self, rng, lines):
        # Mix hot loops, strides, and random touches: the access shapes
        # kernel replay actually produces.
        parts = [
            rng.integers(0, 32, size=200),
            np.arange(lines) % lines,
            rng.integers(0, lines, size=400),
            np.repeat(rng.integers(0, lines, size=50), 4),
        ]
        return np.concatenate(parts)

    @pytest.mark.parametrize("machine", [intel_dunnington, amd_phenom_ii])
    def test_bulk_matches_sequential(self, machine):
        rng = np.random.default_rng(7)
        config = machine().l1
        lines = (config.size_bytes // config.line_bytes) * 2
        for trial in range(5):
            stream = self._random_stream(rng, lines)
            seq, bulk = Cache(config), Cache(config)
            a = seq.replay_lines(stream)
            b = bulk.replay_lines_bulk(stream)
            assert np.array_equal(a, b)
            assert (seq.hits, seq.misses) == (bulk.hits, bulk.misses)

    @pytest.mark.parametrize(
        "bad",
        [np.array([[0, 1], [2, 3]]), np.array([0.5, 1.0]), [0, -3]],
        ids=["2d", "float", "negative"],
    )
    def test_malformed_stream_raises_structured_error(self, bad):
        """Both replay paths validate their input: a malformed line
        stream (the kind a codegen bug would produce) raises a
        structured SimulationError instead of silently corrupting the
        set state."""
        from repro.errors import SimulationError

        for method in ("replay_lines", "replay_lines_bulk"):
            cache = Cache(intel_dunnington().l1)
            with pytest.raises(SimulationError) as exc:
                getattr(cache, method)(bad)
            assert exc.value.rule == "cache.replay-stream"

    def test_bulk_matches_after_interleaving(self):
        """Chained calls against one cache instance must agree with a
        sequential replay of the concatenated stream."""
        rng = np.random.default_rng(11)
        config = intel_dunnington().l1
        chunks = [self._random_stream(rng, 1024) for _ in range(3)]
        seq, bulk = Cache(config), Cache(config)
        a = seq.replay_lines(np.concatenate(chunks))
        b = np.concatenate(
            [bulk.replay_lines_bulk(chunk) for chunk in chunks]
        )
        assert np.array_equal(a, b)
        assert (seq.hits, seq.misses) == (bulk.hits, bulk.misses)


# -- engine selection plumbing -----------------------------------------------------


class TestPlumbing:
    def test_env_var_selects_compiled(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "compiled")
        assert Simulator(intel_dunnington()).engine == "compiled"

    def test_artifact_kinds_do_not_collide(self, tmp_path):
        """A compile entry and a kernel entry with the same hash string
        live at different paths."""
        store = ArtifactStore(tmp_path)
        assert store._path("deadbeef") != store._kernel_path("deadbeef")
