"""The paper's Section 6 worked example (Figure 15).

Input code (one superword holds two variables):

    S0: a = A[i];
    S1: c = a * B[4i];
    S2: g = q * B[4i-2];
    S3: b = A[i+1];
    S4: d = b * B[4i+4];
    S5: h = r * B[4i+2];
    S6: A[2i] = d + a*c;
    S7: A[2i+2] = g + r*h;

The original SLP algorithm groups {<S0,S3>, <S1,S4>, <S2,S5>, <S6,S7>}
and catches one superword reuse (<a,b>). Global instead groups
{<S0,S3>, <S4,S2>, <S1,S5>, <S6,S7>}, catching three reuses
(<d,g>, <c,h>, <a,r>).
"""

import pytest

from repro.analysis import DependenceGraph
from repro.ir import parse_block
from repro.slp import (
    greedy_slp_schedule,
    holistic_slp_schedule,
    iterative_grouping,
)

DECLS = """
float A[8192]; float B[8192];
float a, b, c, d, g, h, q, r;
"""

# The paper writes the block symbolically in i; we pin i = 4 so the
# subscripts are concrete block-level constants (any i >= 1 works).
I = 4
CODE = f"""
a = A[{I}];
c = a * B[{4 * I}];
g = q * B[{4 * I - 2}];
b = A[{I + 1}];
d = b * B[{4 * I + 4}];
h = r * B[{4 * I + 2}];
A[{2 * I}] = d + a * c;
A[{2 * I + 2}] = g + r * h;
"""


@pytest.fixture()
def block():
    return parse_block(CODE, DECLS)


@pytest.fixture()
def deps(block):
    return DependenceGraph(block)


def group_sets(schedule):
    return {frozenset(sw.sids) for sw in schedule.superwords()}


class TestGlobalGrouping:
    def test_global_finds_the_reuse_maximizing_grouping(self, block, deps):
        units, _ = iterative_grouping(block, deps, datapath_bits=64)
        groups = {u.sid_set for u in units if u.size > 1}
        # Figure 15(c): {S0,S3}, {S4,S2}, {S1,S5}, {S6,S7}
        assert groups == {
            frozenset({0, 3}),
            frozenset({4, 2}),
            frozenset({1, 5}),
            frozenset({6, 7}),
        }

    def test_global_schedule_is_valid(self, block, deps):
        schedule = holistic_slp_schedule(block, deps, datapath_bits=64)
        schedule.validate(deps, datapath_bits=64)

    def test_global_keeps_all_four_superwords(self, block, deps):
        schedule = holistic_slp_schedule(block, deps, datapath_bits=64)
        assert len(list(schedule.superwords())) == 4
        assert not list(schedule.singles())


class TestBaselineGrouping:
    def test_slp_baseline_groups_along_chains(self, block, deps):
        schedule = greedy_slp_schedule(
            block, deps, lambda n: _decl(block, n), datapath_bits=64
        )
        groups = group_sets(schedule)
        # Figure 15(b): the greedy chain-following solution.
        assert frozenset({0, 3}) in groups       # <S0,S3> seed: A[i], A[i+1]
        assert frozenset({1, 4}) in groups       # <S1,S4> via def-use of <a,b>
        schedule.validate(deps, datapath_bits=64)

    def test_slp_and_global_differ_on_this_block(self, block, deps):
        slp = group_sets(
            greedy_slp_schedule(
                block, deps, lambda n: _decl(block, n), datapath_bits=64
            )
        )
        glob = group_sets(holistic_slp_schedule(block, deps, 64))
        assert slp != glob


def _decl(block, name):
    from repro.ir import parse_program

    return parse_program(DECLS).arrays[name]
