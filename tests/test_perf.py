"""The compile-time observability registry (`repro.perf`)."""

from __future__ import annotations

import json
import time

from repro.perf import PERF, PerfRegistry, count, section


def test_disabled_registry_records_nothing():
    reg = PerfRegistry()
    with reg.section("anything"):
        pass
    reg.count("events", 5)
    assert reg.sections == {}
    assert reg.counters == {}


def test_sections_accumulate_time_and_calls():
    reg = PerfRegistry()
    reg.enable()
    for _ in range(3):
        with reg.section("stage"):
            time.sleep(0.001)
    stat = reg.sections["stage"]
    assert stat.calls == 3
    assert stat.seconds >= 0.003


def test_nested_sections_record_the_path():
    reg = PerfRegistry()
    reg.enable()
    with reg.section("outer"):
        with reg.section("inner"):
            pass
    assert set(reg.sections) == {"outer", "inner", "outer;inner"}
    # The flat report hides the nesting paths; the nested one shows them.
    assert "outer;inner" not in reg.report()
    assert "outer;inner" in reg.report(nested=True)


def test_counters_accumulate():
    reg = PerfRegistry()
    reg.enable()
    reg.count("scores")
    reg.count("scores", 4)
    assert reg.counters == {"scores": 5}


def test_snapshot_merge_and_json():
    worker = PerfRegistry()
    worker.enable()
    with worker.section("compile"):
        pass
    worker.count("kernels", 2)

    parent = PerfRegistry()
    parent.enable()
    with parent.section("compile"):
        pass
    parent.count("kernels", 1)
    parent.merge(worker.snapshot())
    assert parent.counters["kernels"] == 3
    assert parent.sections["compile"].calls == 2

    decoded = json.loads(parent.to_json())
    assert decoded["counters"]["kernels"] == 3


def test_reset_clears_everything():
    reg = PerfRegistry()
    reg.enable()
    with reg.section("s"):
        reg.count("c")
    reg.reset()
    assert reg.sections == {} and reg.counters == {}


def test_reset_while_section_open_does_not_desync_the_stack():
    reg = PerfRegistry()
    reg.enable()
    outer = reg.section("outer")
    outer.__enter__()
    reg.reset()  # stack cleared, generation bumped — outer is now stale
    outer.__exit__(None, None, None)  # must not pop or record anything
    assert reg.sections == {}
    assert reg._stack == []
    # The registry still works: fresh sections nest and record cleanly.
    with reg.section("a"):
        with reg.section("b"):
            pass
    assert set(reg.sections) == {"a", "b", "a;b"}
    assert reg._stack == []


def test_reset_inside_open_section_leaves_new_epoch_intact():
    reg = PerfRegistry()
    reg.enable()
    with reg.section("old"):
        reg.reset()
        # A section of the new epoch opened before the stale exit runs.
        inner = reg.section("new")
        inner.__enter__()
    # "old"'s exit ran while "new" held the stack top: nothing popped.
    assert reg._stack == ["new"]
    inner.__exit__(None, None, None)
    assert reg._stack == []
    assert set(reg.sections) == {"new"}


def test_disable_while_section_open_drops_partial_timing():
    reg = PerfRegistry()
    reg.enable()
    with reg.section("timed"):
        reg.disable()
    assert reg.sections == {}
    assert reg._stack == []


def test_module_level_shorthands_hit_the_global_registry():
    PERF.reset()
    PERF.enable()
    try:
        with section("global-stage"):
            count("global-counter")
    finally:
        PERF.disable()
    assert PERF.sections["global-stage"].calls == 1
    assert PERF.counters["global-counter"] == 1
    PERF.reset()


def test_compile_populates_registry():
    from repro import CompilerOptions, Variant, compile_program
    from repro.bench import KERNELS, intel_dunnington

    PERF.reset()
    PERF.enable()
    try:
        compile_program(
            KERNELS["mg"].build(8),
            Variant.GLOBAL,
            intel_dunnington(),
            CompilerOptions(),
        )
    finally:
        PERF.disable()
    assert "compile.schedule" in PERF.sections
    assert "grouping" in PERF.sections
    assert PERF.counters.get("grouping.rounds", 0) > 0
    PERF.reset()


def test_snapshot_merge_is_associative():
    """Shard perf snapshots may arrive in any order; the merged result
    must not depend on it — (a+b)+c == a+(b+c)."""

    from repro.perf import SectionStat

    def registry(seconds, calls, kernels):
        reg = PerfRegistry()
        reg.enable()
        stat = reg.sections["compile"] = SectionStat()
        stat.seconds, stat.calls = seconds, calls
        reg.counters["kernels"] = kernels
        return reg

    snaps = [
        registry(0.5, 1, 2).snapshot(),
        registry(0.25, 3, 5).snapshot(),
        registry(1.0, 2, 1).snapshot(),
    ]

    left = PerfRegistry()
    left.enable()
    left.merge(snaps[0])
    left.merge(snaps[1])
    left.merge(snaps[2])

    inner = PerfRegistry()
    inner.enable()
    inner.merge(snaps[1])
    inner.merge(snaps[2])
    right = PerfRegistry()
    right.enable()
    right.merge(snaps[0])
    right.merge(inner.snapshot())

    assert left.snapshot() == right.snapshot()
    assert left.counters["kernels"] == 8
    assert left.sections["compile"].calls == 6
    assert left.sections["compile"].seconds == 1.75


def test_report_nested_renders_paths_with_timings():
    reg = PerfRegistry()
    reg.enable()
    with reg.section("outer"):
        with reg.section("inner"):
            time.sleep(0.001)
    reg.count("events", 7)

    flat = reg.report()
    nested = reg.report(nested=True)
    for text in (flat, nested):
        assert text.startswith("-- timings --")
        assert "-- counters --" in text
        assert "events" in text and "7" in text
    # Flat view lists only top-level names; nested adds the `;` paths.
    assert "outer;inner" not in flat
    nested_lines = [l for l in nested.splitlines() if "outer;inner" in l]
    assert len(nested_lines) == 1
    assert "ms" in nested_lines[0] and "x1" in nested_lines[0]
