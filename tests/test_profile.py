"""Tests for the collapsed-stack profilers and ``repro profile``."""

from __future__ import annotations

import time

from repro.cli import main
from repro.telemetry.profile import (
    SamplingProfiler,
    stage_collapsed,
    stage_tree,
)

# A synthetic perf snapshot shaped exactly like PerfRegistry.snapshot():
# flat totals include every nested occurrence; nested paths carry the
# ``;``-joined dynamic nesting.
SNAPSHOT = {
    "sections": {
        "compile": (1.0, 2),
        "grouping": (0.4, 2),
        "codegen": (0.2, 2),
        "compile;grouping": (0.4, 2),
        "compile;grouping;decide": (0.1, 6),
        "compile;codegen": (0.2, 2),
    },
    "counters": {},
}


# -- deterministic stage profile -----------------------------------------------


def test_stage_tree_attributes_root_share():
    tree = stage_tree(SNAPSHOT)
    # grouping/codegen totals are fully explained by their nested
    # occurrences under compile, so they get no root-level node.
    assert ("grouping",) not in tree
    assert ("codegen",) not in tree
    assert tree[("compile",)] == 1.0
    assert tree[("compile", "grouping")] == 0.4
    assert tree[("compile", "grouping", "decide")] == 0.1
    assert tree[("compile", "codegen")] == 0.2


def test_stage_tree_keeps_genuine_top_level_sections():
    snapshot = {
        "sections": {"simulate": (0.5, 1), "compile": (1.0, 1)},
        "counters": {},
    }
    tree = stage_tree(snapshot)
    assert tree[("simulate",)] == 0.5
    assert tree[("compile",)] == 1.0


def test_stage_collapsed_emits_self_times_in_microseconds():
    lines = dict(
        line.rsplit(" ", 1)
        for line in stage_collapsed(SNAPSHOT).splitlines()
    )
    # compile self = 1.0 - (0.4 grouping + 0.2 codegen) = 0.4s
    assert int(lines["compile"]) == 400_000
    # grouping self = 0.4 - 0.1 = 0.3s
    assert int(lines["compile;grouping"]) == 300_000
    assert int(lines["compile;grouping;decide"]) == 100_000
    assert int(lines["compile;codegen"]) == 200_000


def test_stage_collapsed_totals_reconstruct_by_summation():
    lines = stage_collapsed(SNAPSHOT).splitlines()
    total_us = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
    # Every self-time sums back to the root total — the flame-graph
    # invariant a viewer relies on.
    assert total_us == 1_000_000


def test_stage_collapsed_is_deterministic():
    assert stage_collapsed(SNAPSHOT) == stage_collapsed(SNAPSHOT)


def test_stage_collapsed_empty_snapshot():
    assert stage_collapsed({"sections": {}, "counters": {}}) == ""


# -- wall-clock sampler --------------------------------------------------------


def _busy(deadline: float) -> None:
    while time.perf_counter() < deadline:
        sum(range(200))


def test_sampling_profiler_catches_a_busy_function():
    profiler = SamplingProfiler(interval=0.001)
    with profiler:
        _busy(time.perf_counter() + 0.15)
    assert profiler.samples > 10
    text = profiler.collapsed(trim_prefix=False)
    assert "_busy" in text
    for line in text.splitlines():
        stack, count = line.rsplit(" ", 1)
        assert stack
        assert int(count) > 0


def test_sampling_profiler_restart_guard():
    import pytest

    profiler = SamplingProfiler(interval=0.01).start()
    try:
        with pytest.raises(RuntimeError):
            profiler.start()
    finally:
        profiler.stop()
    # A stopped profiler may be started again.
    profiler.start()
    profiler.stop()


# -- the CLI -------------------------------------------------------------------


def test_profile_cli_stages_mode(tmp_path, capsys):
    out = tmp_path / "cg.collapsed"
    status = main(
        ["profile", "--kernel", "cg", "--n", "8", "--out", str(out)]
    )
    assert status == 0
    lines = out.read_text().splitlines()
    assert lines, "stage profile must not be empty"
    assert any(line.startswith("compile") for line in lines)
    for line in lines:
        stack, count = line.rsplit(" ", 1)
        assert int(count) > 0


def test_profile_cli_run_includes_simulation(tmp_path):
    out = tmp_path / "cg_run.collapsed"
    assert (
        main(
            [
                "profile", "--kernel", "cg", "--n", "8", "--run",
                "--out", str(out),
            ]
        )
        == 0
    )
    assert any(
        line.startswith("simulate")
        for line in out.read_text().splitlines()
    )


def test_profile_cli_sampled_mode(tmp_path):
    out = tmp_path / "sampled.collapsed"
    status = main(
        [
            "profile", "--kernel", "cg", "--n", "8", "--mode", "sampled",
            "--repeat", "30", "--interval", "0.001", "--out", str(out),
        ]
    )
    assert status == 0
    # Sampling is statistical; the file exists and every present line
    # is well-formed collapsed-stack syntax.
    for line in out.read_text().splitlines():
        stack, count = line.rsplit(" ", 1)
        assert ";" in stack or stack
        assert int(count) > 0
