"""The differential fuzzer: determinism, a clean smoke campaign, and
the seeded-bug acceptance path (oracle catches it, reducer shrinks it,
fallback survives it)."""

import pytest

from repro import (
    CompilerOptions,
    Variant,
    compile_program,
    intel_dunnington,
    parse_program,
    simulate,
)
from repro.fuzz import (
    buggy_swap_mutator,
    differential_check,
    fuzz,
    generate_case,
    match_predicate,
    reduce_program,
    statement_count,
)


class TestGenerator:
    def test_same_seed_same_program(self):
        a = generate_case(42)
        b = generate_case(42)
        assert a.source == b.source

    def test_different_seeds_differ(self):
        sources = {generate_case(seed).source for seed in range(20)}
        assert len(sources) > 15

    def test_generated_programs_are_well_formed(self):
        from repro.verify import verify_program

        for seed in range(30):
            case = generate_case(seed)
            verify_program(case.program)

    def test_generated_source_reparses_to_same_program(self):
        case = generate_case(7)
        reparsed = parse_program(case.source)
        assert statement_count(reparsed) == statement_count(case.program)
        assert [
            str(stmt) for blk in reparsed.blocks() for stmt in blk
        ] == [
            str(stmt) for blk in case.program.blocks() for stmt in blk
        ]


class TestOracle:
    def test_clean_compiler_has_no_divergence(self):
        case = generate_case(3)
        result = differential_check(case.program, case_seed=3)
        assert result.status in ("ok", "skipped")
        assert result.divergence is None

    def test_smoke_campaign_is_clean(self):
        report = fuzz(seed=0, count=25, reduce_failures=False)
        assert report.divergences == []
        assert report.ok + report.skipped == 25
        assert report.ok > 0

    def test_oracle_catches_seeded_scheduler_bug(self):
        # A mutator that reverses every multi-item schedule violates
        # dependences; the oracle must notice against the scalar
        # baseline, and the reducer must shrink the witness.
        buggy = CompilerOptions(
            cost_gate=False,
            checks="none",
            debug_schedule_mutator=buggy_swap_mutator,
        )
        report = fuzz(
            seed=0, count=20, options=buggy,
            reduce_failures=True, max_divergences=1,
        )
        assert report.divergences, "seeded bug escaped the oracle"
        divergence = report.divergences[0]
        assert divergence.kind in ("memory", "crash")
        assert divergence.reduced_source is not None
        reduced = parse_program(divergence.reduced_source)
        assert statement_count(reduced) <= 6
        # The reduced witness still reproduces the divergence.
        assert match_predicate(divergence, intel_dunnington(), buggy)(reduced)


class TestReducer:
    def test_reduces_to_minimal_dependent_pair(self):
        program = parse_program(
            "float A[64]; float B[64];\n"
            "A[0] = 1.0;\n"
            "A[1] = A[0] + 1.0;\n"
            "A[2] = B[5];\n"
            "A[3] = B[6];\n"
            "A[4] = B[7];\n"
        )

        def has_dependent_pair(candidate):
            blocks = list(candidate.blocks())
            if not blocks:
                return False
            from repro.analysis import DependenceGraph

            return any(
                DependenceGraph(blk).predecessors(stmt.sid)
                for blk in blocks
                for stmt in blk
            )

        reduced = reduce_program(program, has_dependent_pair)
        assert has_dependent_pair(reduced)
        assert statement_count(reduced) == 2

    def test_reducer_never_returns_nonmatching(self):
        program = parse_program("float A[8]; A[0] = 1.0;")
        reduced = reduce_program(program, lambda p: statement_count(p) >= 1)
        assert statement_count(reduced) == 1


class TestFallbackEndToEnd:
    def test_buggy_corpus_compiles_with_scalar_semantics(self):
        # With the seeded bug active and on_error="fallback", every
        # generated program must compile end to end; any block the
        # verifier rejects falls back to scalar, and final memory is
        # bit-identical to the scalar baseline.
        machine = intel_dunnington()
        buggy_fallback = CompilerOptions(
            cost_gate=False,
            checks="all",
            on_error="fallback",
            debug_schedule_mutator=buggy_swap_mutator,
        )
        saw_fallback = False
        for seed in range(8):
            case = generate_case(seed)
            scalar = compile_program(
                case.program, Variant.SCALAR, machine,
                CompilerOptions(checks="none"),
            )
            _, base_memory = simulate(scalar, seed=seed)
            for variant in (Variant.SLP, Variant.GLOBAL):
                result = compile_program(
                    case.program, variant, machine, buggy_fallback
                )
                if result.fallback_blocks:
                    saw_fallback = True
                    assert result.diagnostics
                _, memory = simulate(result, seed=seed)
                assert memory.state_equal(base_memory), (
                    f"seed {seed} {variant}: fallback compile diverged "
                    f"from scalar"
                )
        assert saw_fallback, "the seeded bug never tripped the verifier"
