"""Tests for the Prometheus text exposition and its validator.

The renderer and the validator check each other: everything the
service renders must validate clean, and the validator must reject the
classic exposition mistakes (non-cumulative buckets, missing ``+Inf``,
duplicate samples, TYPE after samples) — otherwise the CI step that
runs it against a live server proves nothing.
"""

from __future__ import annotations

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.promtext import (
    CONTENT_TYPE,
    escape_label_value,
    perf_registry,
    render_prometheus,
    validate_exposition,
)


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "repro_http_requests_total", "Requests by path", labels=("path",)
    ).labels(path="/metrics").inc(3)
    registry.gauge("repro_queue_depth", "In-flight jobs").set(2)
    hist = registry.histogram(
        "repro_latency_ms", "Latency", labels=("stage",)
    )
    hist.labels(stage="total").observe(0.004)
    hist.labels(stage="total").observe(1.5)
    return registry


# -- rendering -----------------------------------------------------------------


def test_rendered_exposition_validates_clean():
    text = render_prometheus(_registry())
    assert validate_exposition(text) == []


def test_content_type_pins_format_version():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def test_histogram_renders_cumulative_buckets_and_inf():
    text = render_prometheus(_registry())
    lines = [l for l in text.splitlines() if "repro_latency_ms" in l]
    bucket_values = [
        int(line.rsplit(" ", 1)[1])
        for line in lines
        if "_bucket" in line
    ]
    assert bucket_values == sorted(bucket_values)
    assert any('le="+Inf"' in line for line in lines)
    assert any(line.startswith("repro_latency_ms_sum") for line in lines)
    count_line = next(
        line for line in lines if line.startswith("repro_latency_ms_count")
    )
    assert count_line.endswith(" 2")


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    registry.counter("weird_total", labels=("key",)).labels(
        key='a"b\\c\nd'
    ).inc()
    text = render_prometheus(registry)
    assert r'key="a\"b\\c\nd"' in text
    assert validate_exposition(text) == []


def test_escape_label_value_round_trip_forms():
    assert escape_label_value('say "hi"\\') == r'say \"hi\"\\'
    assert escape_label_value("two\nlines") == r"two\nlines"


def test_colliding_families_across_registries_raise():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("same_total").inc()
    b.counter("same_total").inc()
    with pytest.raises(ValueError):
        render_prometheus(a, b)


# -- the repro.perf bridge -----------------------------------------------------


def test_perf_bridge_exports_flat_sections_only():
    snapshot = {
        "sections": {
            "compile": (1.5, 3),
            "compile;grouping": (0.5, 3),  # nesting path: excluded
        },
        "counters": {"compile_cache.hits": 7},
    }
    text = render_prometheus(perf_snapshot=snapshot)
    assert (
        'repro_perf_section_seconds_total{section="compile"} 1.5' in text
    )
    assert 'repro_perf_section_calls_total{section="compile"} 3' in text
    assert (
        'repro_perf_counter_total{counter="compile_cache.hits"} 7' in text
    )
    assert "compile;grouping" not in text
    assert validate_exposition(text) == []


# -- the validator's teeth -----------------------------------------------------


def test_validator_accepts_minimal_valid_exposition():
    assert validate_exposition(
        "# TYPE up gauge\nup 1\n"
    ) == []


def test_validator_rejects_missing_trailing_newline():
    assert validate_exposition("# TYPE up gauge\nup 1") != []


def test_validator_rejects_malformed_sample():
    problems = validate_exposition("# TYPE up gauge\nup one\n")
    assert any("malformed" in p or "unparsable" in p for p in problems)


def test_validator_rejects_type_after_samples():
    text = "up 1\n# TYPE up gauge\n"
    assert any("after its samples" in p for p in validate_exposition(text))


def test_validator_rejects_duplicate_samples():
    text = '# TYPE a counter\na{x="1"} 1\na{x="1"} 2\n'
    assert any("duplicate sample" in p for p in validate_exposition(text))


def test_validator_rejects_non_contiguous_family():
    text = (
        "# TYPE a counter\n# TYPE b counter\n"
        "a 1\nb 1\na 2\n"
    )
    problems = validate_exposition(text)
    assert any("not contiguous" in p for p in problems)


def test_validator_rejects_non_cumulative_histogram():
    text = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\nh_bucket{le="+Inf"} 5\n'
        "h_sum 1\nh_count 5\n"
    )
    assert any(
        "not cumulative" in p for p in validate_exposition(text)
    )


def test_validator_rejects_histogram_without_inf_bucket():
    text = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 1\nh_bucket{le="2"} 2\n'
        "h_sum 1\nh_count 2\n"
    )
    assert any("+Inf" in p for p in validate_exposition(text))


def test_validator_rejects_count_inf_disagreement():
    text = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 1\nh_bucket{le="+Inf"} 2\n'
        "h_sum 1\nh_count 9\n"
    )
    assert any("_count" in p for p in validate_exposition(text))


def test_validator_rejects_bad_label_syntax():
    text = "# TYPE a counter\na{x=unquoted} 1\n"
    assert validate_exposition(text) != []


def test_validator_cli_entry(tmp_path, capsys):
    from repro.telemetry.promtext import main

    good = tmp_path / "good.prom"
    good.write_text(render_prometheus(_registry()))
    assert main([str(good)]) == 0
    bad = tmp_path / "bad.prom"
    bad.write_text("up one\n")
    assert main([str(bad)]) == 1
