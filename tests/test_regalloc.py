"""Linear-scan vector register allocation."""

import pytest

from repro import Variant, compile_program, intel_dunnington
from repro.bench import ALL_KERNELS
from repro.ir import parse_program
from repro.vm.isa import VOp, VPack, ImmRef, PackMode
from repro.vm.regalloc import (
    AllocationResult,
    LiveRange,
    allocate_plan,
    linear_scan,
    live_ranges,
)


def vpack(dst):
    return VPack(dst, (ImmRef(1.0), ImmRef(2.0)), PackMode.IMMEDIATE)


def vop(dst, *srcs):
    return VOp("+", dst, tuple(srcs), 2)


class TestLiveRanges:
    def test_def_to_last_use(self):
        instrs = [vpack(0), vpack(1), vop(2, 0, 1), vop(3, 2, 0)]
        ranges = {r.vreg: r for r in live_ranges(instrs)}
        assert ranges[0].start == 0 and ranges[0].end == 3
        assert ranges[1].end == 2
        assert ranges[2].end == 3
        assert ranges[3].start == 3

    def test_live_out_extends_to_horizon(self):
        instrs = [vpack(0), vop(1, 0, 0)]
        ranges = {r.vreg: r for r in live_ranges(instrs, live_out=[0])}
        assert ranges[0].end == len(instrs)

    def test_upstream_use_becomes_live_in(self):
        instrs = [vop(1, 0, 0)]  # vreg 0 defined elsewhere
        ranges = {r.vreg: r for r in live_ranges(instrs)}
        assert ranges[0].start == 0


class TestLinearScan:
    def test_no_spills_under_capacity(self):
        ranges = [LiveRange(i, i, i + 1) for i in range(8)]
        result = linear_scan(ranges, 4)
        assert result.spill_count == 0
        assert result.max_pressure <= 2

    def test_disjoint_ranges_share_registers(self):
        ranges = [LiveRange(0, 0, 1), LiveRange(1, 2, 3)]
        result = linear_scan(ranges, 1)
        assert result.spill_count == 0

    def test_spills_when_over_capacity(self):
        ranges = [LiveRange(i, 0, 10) for i in range(5)]
        result = linear_scan(ranges, 4)
        assert result.spill_count == 1
        assert result.max_pressure == 4

    def test_furthest_end_spilled_first(self):
        ranges = [
            LiveRange(0, 0, 100),
            LiveRange(1, 0, 2),
            LiveRange(2, 1, 3),
        ]
        result = linear_scan(ranges, 2)
        assert result.spilled == {0}

    def test_assignments_do_not_overlap(self):
        ranges = [LiveRange(i, i % 3, i % 3 + 4) for i in range(9)]
        result = linear_scan(ranges, 6)
        # No two simultaneously-live vregs share a physical register.
        for a in ranges:
            for b in ranges:
                if a.vreg >= b.vreg:
                    continue
                overlap = not (a.end < b.start or b.end < a.start)
                ra = result.assignment.get(a.vreg)
                rb = result.assignment.get(b.vreg)
                if overlap and ra is not None and rb is not None:
                    assert ra != rb, (a, b)


class TestPlanAllocation:
    @pytest.mark.parametrize(
        "kernel", ALL_KERNELS[:6], ids=lambda k: k.name
    )
    def test_kernel_pressure_fits_the_register_file(self, kernel):
        """The property the paper's backend relies on: these loop bodies
        never exceed 16 live superwords."""
        result = compile_program(
            kernel.build(16), Variant.GLOBAL, intel_dunnington()
        )
        allocation = allocate_plan(result.plan)
        assert allocation.max_pressure <= 16
        assert allocation.total_spills == 0

    def test_tight_register_file_spills(self):
        src = "double A[64]; double B[64];" + "".join(
            f"B[{i}] = A[{i}] / A[{i + 8}];" for i in range(8)
        )
        result = compile_program(
            parse_program(src), Variant.GLOBAL, intel_dunnington()
        )
        generous = allocate_plan(result.plan, physical_registers=16)
        tight = allocate_plan(result.plan, physical_registers=2)
        assert generous.total_spills <= tight.total_spills
        assert tight.max_pressure <= generous.max_pressure or True
        assert tight.max_pressure <= 2
