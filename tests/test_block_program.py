"""Basic blocks, loops, programs, operand keys."""

import pytest

from repro.analysis import (
    is_const_key,
    is_memory_key,
    is_scalar_key,
    operand_key,
)
from repro.ir import (
    Affine,
    ArrayRef,
    BasicBlock,
    BinOp,
    Const,
    FLOAT32,
    Loop,
    Program,
    Statement,
    Var,
)


def stmt(sid, name="a"):
    return Statement(
        sid, Var(name, FLOAT32), Const(float(sid), FLOAT32)
    )


class TestBasicBlock:
    def test_append_and_lookup(self):
        block = BasicBlock([stmt(0), stmt(1, "b")])
        assert len(block) == 2
        assert block[1].target.name == "b"
        assert block.position(1) == 1

    def test_duplicate_sid_rejected(self):
        with pytest.raises(ValueError):
            BasicBlock([stmt(0), stmt(0)])

    def test_missing_sid_raises(self):
        block = BasicBlock([stmt(0)])
        with pytest.raises(KeyError):
            block[7]
        with pytest.raises(KeyError):
            block.position(7)

    def test_replace_statement(self):
        block = BasicBlock([stmt(0), stmt(1)])
        replacement = Statement(
            1, Var("z", FLOAT32), Const(9.0, FLOAT32)
        )
        updated = block.replace_statement(replacement)
        assert updated[1].target.name == "z"
        assert block[1].target.name == "a"  # original untouched

    def test_renumbered(self):
        block = BasicBlock([stmt(3), stmt(7)])
        fresh = block.renumbered()
        assert [s.sid for s in fresh] == [0, 1]


class TestLoop:
    def test_trip_count(self):
        body = BasicBlock([stmt(0)])
        assert Loop("i", 0, 10, 1, body).trip_count == 10
        assert Loop("i", 0, 10, 3, body).trip_count == 4
        assert Loop("i", 10, 10, 1, body).trip_count == 0

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            Loop("i", 0, 10, -1, BasicBlock())

    def test_indices_and_innermost(self):
        inner = Loop("j", 0, 4, 1, BasicBlock([stmt(0)]))
        outer = Loop("i", 0, 4, 1, BasicBlock(), inner=inner)
        assert outer.indices() == ("i", "j")
        assert outer.innermost() is inner


class TestProgram:
    def test_declarations_unique(self):
        program = Program()
        program.declare_array("A", (8,), FLOAT32)
        with pytest.raises(ValueError):
            program.declare_scalar("A", FLOAT32)

    def test_blocks_iterates_loop_bodies(self):
        program = Program()
        inner = Loop("j", 0, 4, 1, BasicBlock([stmt(0)]))
        outer = Loop("i", 0, 4, 1, BasicBlock([stmt(0)]), inner=inner)
        program.add(outer)
        program.add(BasicBlock([stmt(0)]))
        assert len(list(program.blocks())) == 3

    def test_clone_shell_shares_decls_not_body(self):
        program = Program("p")
        program.declare_array("A", (8,), FLOAT32)
        program.add(BasicBlock([stmt(0)]))
        twin = program.clone_shell()
        assert "A" in twin.arrays
        assert twin.body == []

    def test_array_flatten_index(self):
        program = Program()
        decl = program.declare_array("M", (4, 8), FLOAT32)
        assert decl.flatten_index((2, 3)) == 19
        with pytest.raises(ValueError):
            decl.flatten_index((1,))


class TestOperandKeys:
    def test_var_key(self):
        key = operand_key(Var("x", FLOAT32))
        assert is_scalar_key(key)
        assert not is_memory_key(key)

    def test_ref_key_includes_subscripts(self):
        a = operand_key(ArrayRef("A", (Affine.of(0, i=4),), FLOAT32))
        b = operand_key(ArrayRef("A", (Affine.of(1, i=4),), FLOAT32))
        assert is_memory_key(a)
        assert a != b

    def test_const_key_by_value(self):
        a = operand_key(Const(2.0, FLOAT32))
        b = operand_key(Const(2.0, FLOAT32))
        assert a == b
        assert is_const_key(a)

    def test_interior_node_rejected(self):
        expr = BinOp("+", Var("x", FLOAT32), Var("y", FLOAT32))
        with pytest.raises(TypeError):
            operand_key(expr)
