"""Scheduler behaviors the paper's Figure 11 prescribes: reuse-driven
group selection and proximity of reuses."""

import pytest

from repro.analysis import DependenceGraph
from repro.ir import parse_block
from repro.slp import (
    GroupNode,
    Scheduler,
    SuperwordStatement,
    iterative_grouping,
)

DECLS = "float A[512]; float B[512]; float C[512]; float a, b, c, d, p, q;"


def scheduled(src, datapath=64):
    block = parse_block(src, DECLS)
    deps = DependenceGraph(block)
    units, _ = iterative_grouping(block, deps, datapath)
    return Scheduler(block, deps, units).run(), block


class TestReuseDrivenSelection:
    def test_consumer_scheduled_right_after_producer(self):
        """Among ready groups, the one reusing a live superword runs
        first — bringing reuses close (Figure 11 lines 15-18)."""
        src = """
        a = A[0]; b = A[1];
        c = A[8]; d = A[9];
        B[0] = a * p; B[1] = b * p;
        B[8] = c * q; B[9] = d * q;
        """
        schedule, block = scheduled(src)
        order = [tuple(sw.sids) for sw in schedule.superwords()]
        # Whichever load pair runs second, its consumer must follow it
        # immediately (the consumer reuses the just-defined pack).
        for position, sids in enumerate(order[:-1]):
            if sids == (0, 1):
                consumer = order.index((4, 5))
                assert consumer == position + 1 or order[position + 1] in (
                    (2, 3),
                    (6, 7),
                )

    def test_live_set_tracks_across_groups(self):
        src = """
        a = A[0]; b = A[1];
        B[0] = a * p; B[1] = b * p;
        C[0] = a * q; C[1] = b * q;
        """
        schedule, block = scheduled(src)
        supers = list(schedule.superwords())
        assert len(supers) == 3
        # Both consumers keep the producer's lane order: direct reuse.
        producer = supers[0].target_pack()
        for consumer in supers[1:]:
            matching = [
                pack
                for pack in consumer.source_packs()
                if sorted(pack) == sorted(producer)
            ]
            assert matching and matching[0] == producer


class TestDependencePreservation:
    def test_singles_respect_flow_into_groups(self):
        src = """
        p = A[0] / q;
        B[0] = a * p; B[1] = b * p;
        """
        schedule, block = scheduled(src)
        kinds = [type(item).__name__ for item in schedule.items]
        assert kinds[0] == "ScheduledSingle"

    def test_groups_respect_flow_into_singles(self):
        src = """
        a = A[0]; b = A[1];
        q = a / b;
        """
        schedule, block = scheduled(src)
        sequence = [sorted(item.sid_set) for item in schedule.items]
        assert sequence.index([0, 1]) < sequence.index([2])

    def test_anti_dependence_ordering(self):
        src = """
        B[0] = a + p; B[1] = b + p;
        a = A[0]; b = A[1];
        """
        schedule, block = scheduled(src)
        sequence = [sorted(item.sid_set) for item in schedule.items]
        assert sequence.index([0, 1]) < sequence.index([2, 3])


class TestIntraGroupOrdering:
    def test_store_contiguity_orders_lanes_without_reuse(self):
        # No live packs: the memory-order fallback puts lanes in
        # ascending address order.
        src = "B[1] = a * p; B[0] = b * p;"
        schedule, block = scheduled(src)
        sw = next(schedule.superwords())
        targets = [str(m.target) for m in sw.members]
        assert targets == ["B[0]", "B[1]"]

    def test_direct_reuse_beats_memory_order(self):
        """When a direct reuse ordering exists, it wins even though the
        stores then come out in descending order."""
        src = """
        a = A[0]; b = A[1];
        B[1] = a * p; B[0] = b * p;
        """
        schedule, block = scheduled(src)
        consumer = [sw for sw in schedule.superwords() if sw.sids != (0, 1)]
        assert consumer
        source = [
            pack
            for pack in consumer[0].source_packs()
            if sorted(k[1] for k in pack) == ["a", "b"]
        ]
        assert source and source[0] == (("var", "a"), ("var", "b"))
