"""The scheduling phase: live superword set, reuse-driven selection,
intra-group ordering, permutation minimization, cycle demotion."""

import pytest

from repro.analysis import DependenceGraph, operand_key
from repro.ir import parse_block
from repro.slp import (
    GroupNode,
    LiveSuperwordSet,
    Scheduler,
    SuperwordStatement,
    iterative_grouping,
    keys_may_alias,
)
from repro.slp.model import pack_data
from repro.slp.scheduling import _match_orderings

DECLS = "float A[512]; float B[512]; float a, b, c, d, p, q, r, s;"


def schedule_of(src, datapath=64):
    block = parse_block(src, DECLS)
    deps = DependenceGraph(block)
    units, _ = iterative_grouping(block, deps, datapath)
    return Scheduler(block, deps, units).run(), block, deps


class TestLiveSuperwordSet:
    def test_insert_and_exact_lookup(self):
        live = LiveSuperwordSet()
        pack = (("var", "a"), ("var", "b"))
        live.insert(pack)
        assert live.lookup(pack_data(pack)) == pack

    def test_same_data_new_order_replaces(self):
        live = LiveSuperwordSet()
        live.insert((("var", "a"), ("var", "b")))
        live.insert((("var", "b"), ("var", "a")))
        assert live.lookup(pack_data((("var", "a"), ("var", "b")))) == (
            ("var", "b"),
            ("var", "a"),
        )
        assert len(live) == 1

    def test_invalidation_on_write(self):
        live = LiveSuperwordSet()
        live.insert((("var", "a"), ("var", "b")))
        live.insert((("var", "c"), ("var", "d")))
        live.invalidate_written([("var", "a")])
        assert live.lookup(pack_data((("var", "a"), ("var", "b")))) is None
        assert len(live) == 1

    def test_invalidation_of_may_aliasing_ref(self):
        from repro.ir import Affine

        live = LiveSuperwordSet()
        k1 = ("ref", "A", (Affine.of(0, i=4),))
        k2 = ("ref", "A", (Affine.of(1, i=4),))
        live.insert((k1, k2))
        # A write to A[2i] may alias A[4i]: the pack must die.
        live.invalidate_written([("ref", "A", (Affine.of(0, i=2),))])
        assert len(live) == 0


class TestKeysMayAlias:
    def test_vars_alias_by_name(self):
        assert keys_may_alias(("var", "x"), ("var", "x"))
        assert not keys_may_alias(("var", "x"), ("var", "y"))

    def test_var_never_aliases_ref(self):
        from repro.ir import Affine

        assert not keys_may_alias(
            ("var", "x"), ("ref", "A", (Affine.of(0),))
        )

    def test_refs_with_const_delta_do_not_alias(self):
        from repro.ir import Affine

        a = ("ref", "A", (Affine.of(0, i=1),))
        b = ("ref", "A", (Affine.of(5, i=1),))
        assert not keys_may_alias(a, b)


class TestMatchOrderings:
    def test_unique_keys_single_match(self):
        keys = [("var", "a"), ("var", "b")]
        live = (("var", "b"), ("var", "a"))
        orders = list(_match_orderings(keys, live, 10))
        assert orders == [(1, 0)]

    def test_duplicate_keys_multiple_matches(self):
        keys = [("var", "a"), ("var", "a")]
        live = (("var", "a"), ("var", "a"))
        orders = list(_match_orderings(keys, live, 10))
        assert set(orders) == {(0, 1), (1, 0)}

    def test_no_match_when_multiset_differs(self):
        keys = [("var", "a"), ("var", "b")]
        live = (("var", "c"), ("var", "a"))
        assert list(_match_orderings(keys, live, 10)) == []


class TestScheduling:
    def test_schedule_is_valid(self):
        schedule, block, deps = schedule_of(
            """
            a = A[0]; b = A[1];
            c = a * p; d = b * p;
            B[0] = c + a; B[1] = d + b;
            """
        )
        schedule.validate(deps, datapath_bits=64)

    def test_direct_reuse_preserves_lane_order(self):
        """A group whose source pack is the previous group's target must
        come out in the same lane order (direct reuse, no permutation)."""
        schedule, block, deps = schedule_of(
            """
            a = A[0]; b = A[1];
            B[0] = a * p; B[1] = b * p;
            """
        )
        supers = list(schedule.superwords())
        assert len(supers) == 2
        producer, consumer = supers
        produced = producer.target_pack()
        consumed = [
            pack
            for pack in consumer.source_packs()
            if pack_data(pack) == pack_data(produced)
        ]
        assert consumed and consumed[0] == produced

    def test_singles_scheduled_between_groups(self):
        schedule, block, deps = schedule_of(
            """
            a = A[0]; b = A[1];
            p = a / b;
            B[0] = a * p; B[1] = b * p;
            """
        )
        kinds = [type(item).__name__ for item in schedule.items]
        assert "ScheduledSingle" in kinds
        schedule.validate(deps, datapath_bits=64)

    def test_cycle_demotion_keeps_correctness(self):
        # Grouping {S0,S3} and {S1,S2} would create a unit-level cycle;
        # the scheduler must demote one group rather than deadlock.
        src = """
        a = p + q;
        b = a * r;
        c = s * r;
        d = c + q;
        """
        block = parse_block(src, DECLS)
        deps = DependenceGraph(block)
        units = [
            GroupNode.merge(
                GroupNode.of_statement(block[0]),
                GroupNode.of_statement(block[3]),
            ),
            GroupNode.merge(
                GroupNode.of_statement(block[1]),
                GroupNode.of_statement(block[2]),
            ),
        ]
        schedule = Scheduler(block, deps, units).run()
        schedule.validate(deps, datapath_bits=64)

    def test_every_statement_scheduled_exactly_once(self):
        schedule, block, deps = schedule_of(
            """
            a = A[0]; b = A[1]; c = A[2]; d = A[3];
            B[0] = a + b; B[1] = c + d;
            """
        )
        seen = []
        for item in schedule.items:
            seen.extend(sorted(item.sid_set))
        assert sorted(seen) == [s.sid for s in block]
