"""Tests for the consistent-hash router (``repro.service.router``).

The :class:`HashRing` properties are tested directly (distribution,
minimal remap on membership change). The :class:`RouterService` is
tested end to end: real ``ServiceThread`` backends, real HTTP through
a ``RouterThread``, with node failure injected by stopping a backend
mid-run — including the satellite case where a leader's worker crash
on one node is retried on a sibling node and succeeds.
"""

from __future__ import annotations

import collections

import pytest

from repro import FLOAT32, ProgramBuilder
from repro.ir.printer import format_program
from repro.service.client import ServiceClient
from repro.service.router import HashRing, RouterThread
from repro.service.server import ServiceThread


def unique_source(tag: int) -> str:
    builder = ProgramBuilder(f"routed{tag}")
    X = builder.array("X", (16,), FLOAT32)
    Y = builder.array("Y", (16,), FLOAT32)
    with builder.loop("i", 0, 16) as i:
        builder.assign(Y[i], X[i] * (tag + 2) + Y[i])
    return format_program(builder.build())


# -- the ring ------------------------------------------------------------------


def test_ring_spreads_keys_roughly_evenly():
    ring = HashRing(["a", "b", "c"])
    owners = collections.Counter(
        ring.preference(f"key-{i}")[0] for i in range(3000)
    )
    assert set(owners) == {"a", "b", "c"}
    for node, hits in owners.items():
        assert 500 < hits < 1700, (node, owners)


def test_ring_preference_is_stable_and_complete():
    ring = HashRing(["a", "b", "c", "d"])
    for i in range(50):
        prefs = ring.preference(f"key-{i}")
        assert sorted(prefs) == ["a", "b", "c", "d"]
        assert prefs == ring.preference(f"key-{i}")


def test_ring_minimal_remap_on_node_loss():
    """Consistent hashing's defining property: removing one of N nodes
    remaps only the lost node's keys — every key owned by a survivor
    keeps its owner, so survivors' L1 stores stay warm."""
    before = HashRing(["a", "b", "c"])
    after = HashRing(["a", "b"])
    moved = 0
    for i in range(2000):
        key = f"key-{i}"
        owner_before = before.preference(key)[0]
        owner_after = after.preference(key)[0]
        if owner_before != "c":
            assert owner_after == owner_before, key
        else:
            moved += 1
    assert 300 < moved < 1400  # ~1/3 of the key space


def test_ring_failover_owner_matches_shrunk_ring():
    """The failover walk is itself consistent: key owned by the dead
    node falls to the *same* node the shrunk ring would pick."""
    ring = HashRing(["a", "b", "c"])
    shrunk = HashRing(["a", "b"])
    for i in range(500):
        key = f"key-{i}"
        prefs = ring.preference(key)
        if prefs[0] == "c":
            fallback = prefs[1]
            assert shrunk.preference(key)[0] == fallback, key


def test_ring_rejects_empty():
    with pytest.raises(Exception):
        HashRing([])


# -- the router, end to end ----------------------------------------------------


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    """Two serve nodes + a router, all embedded; test_hooks on so the
    crash-injection tests can run through the stack."""
    base = tmp_path_factory.mktemp("router-cluster")
    node1 = ServiceThread(
        shards=1, cache_dir=str(base / "n1"), test_hooks=True
    ).start()
    node2 = ServiceThread(
        shards=1, cache_dir=str(base / "n2"), test_hooks=True
    ).start()
    router = RouterThread(
        [node1.url, node2.url], health_interval=0.2
    ).start()
    yield router, node1, node2
    router.stop()
    node1.stop()
    node2.stop()


def submit_with_hooks(client, source, **hooks):
    request = ServiceClient._job_request(
        source, None, 0, "global", "intel", None, None, seed=0,
        trace=False,
    )
    request.update(hooks)
    return client._submit("compile", request)


def test_routed_submit_round_trips(cluster):
    router, _n1, _n2 = cluster
    client = ServiceClient(router.url, timeout=120.0)
    out = client.simulate(source=unique_source(1))
    assert out.result is not None and out.report is not None
    # Same key → same node → the repeat is a warm store hit.
    again = client.simulate(source=unique_source(1))
    assert again.cached
    assert again.result == out.result


def test_router_healthz_and_metrics(cluster):
    router, _n1, _n2 = cluster
    client = ServiceClient(router.url, timeout=30.0)
    health = client.healthz()
    assert health["ok"] and health["role"] == "router"
    assert len(health["nodes"]) == 2
    assert all(n["alive"] for n in health["nodes"].values())
    metrics = client.metrics()
    assert set(metrics["router"]["nodes"]) == set(health["nodes"])
    prom = client.metrics_prometheus()
    assert "repro_router_node_up" in prom


def test_router_spreads_distinct_keys(cluster):
    router, node1, node2 = cluster
    client = ServiceClient(router.url, timeout=120.0)
    for tag in range(10, 22):
        client.compile(source=unique_source(tag))
    metrics = client.metrics()
    forwards = {
        url: info["forwards"]
        for url, info in metrics["router"]["nodes"].items()
    }
    # 12 distinct keys over 2 nodes: both sides must see traffic.
    assert all(count > 0 for count in forwards.values()), forwards


def test_worker_crash_on_one_node_retried_on_sibling(
    cluster, tmp_path
):
    """The satellite case: the leader's worker crashes (twice, beating
    the node-local retry) → the router walks to the sibling node, which
    runs the same job successfully. The client sees a 200, not a 500."""
    router, _n1, _n2 = cluster
    client = ServiceClient(router.url, timeout=120.0)
    flag = tmp_path / "crash-count"
    out = submit_with_hooks(
        client, unique_source(33), x_crash_times=[str(flag), 2]
    )
    assert out.result is not None
    assert int(flag.read_text()) == 2  # both node-local attempts died
    metrics = client.metrics()
    assert metrics["router"]["retries"] >= 1


def test_node_loss_mid_run_fails_over(tmp_path):
    """SIGKILL-equivalent: one backend stops entirely; in-flight and
    subsequent submits land on the survivor, none are lost."""
    node1 = ServiceThread(
        shards=1, cache_dir=str(tmp_path / "n1"), test_hooks=True
    ).start()
    node2 = ServiceThread(
        shards=1, cache_dir=str(tmp_path / "n2"), test_hooks=True
    ).start()
    router = RouterThread(
        [node1.url, node2.url], health_interval=0.1
    ).start()
    try:
        client = ServiceClient(router.url, timeout=120.0)
        for tag in range(40, 44):
            assert client.compile(source=unique_source(tag)).result
        node2.stop()  # drain node2: probes mark it down
        # Every key keeps resolving — the walk skips the dead node.
        for tag in range(40, 52):
            out = client.compile(source=unique_source(tag))
            assert out.result is not None
        health = client.healthz()
        assert health["ok"]
        alive = [
            url for url, n in health["nodes"].items() if n["alive"]
        ]
        assert alive == [node1.url]
    finally:
        router.stop()
        node1.stop()


def test_router_surfaces_job_errors_unchanged(cluster):
    """Non-retryable responses (400/422) pass through byte-identical
    semantics: the client re-raises the original exception type."""
    router, _n1, _n2 = cluster
    client = ServiceClient(router.url, timeout=30.0)
    from repro import ParseError

    with pytest.raises(ParseError):
        client.compile(source="loop without any structure (")
