"""Tests for the L2 remote artifact store (``repro.store.remote``).

A real :class:`StoreServer` runs on an ephemeral port; the
:class:`RemoteStore` client and the :class:`TieredStore` composition
are exercised over actual HTTP. The L2 contract under test: raw-bytes
transport (the server never unpickles), read-through L1 fills,
write-behind puts, and *graceful degradation* — a dead or lying remote
is a miss, never an exception on the request path.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro import FLOAT32, ProgramBuilder, Variant, compile_program
from repro.perf import PERF
from repro.store import ArtifactStore, RemoteStore, StoreServer, TieredStore
from repro.store.remote import open_store
from repro.vm import MACHINES


def small_result(tag: int = 0):
    builder = ProgramBuilder(f"remote{tag}")
    X = builder.array("X", (8,), FLOAT32)
    Y = builder.array("Y", (8,), FLOAT32)
    with builder.loop("i", 0, 8) as i:
        builder.assign(Y[i], X[i] + (tag + 1))
    program = builder.build()
    machine = MACHINES["intel"]()
    result = compile_program(program, Variant.GLOBAL, machine, None)
    key = ArtifactStore.key(program, Variant.GLOBAL, machine, None)
    return key, result


@pytest.fixture()
def store_server(tmp_path):
    with StoreServer(str(tmp_path / "l2")) as server:
        yield server


def test_round_trip_bytes(store_server):
    remote = RemoteStore(store_server.url)
    key, result = small_result(1)
    blob = pickle.dumps(result)
    assert remote.get_bytes(key) is None  # miss first
    assert remote.put_bytes(key, blob)
    assert remote.get_bytes(key) == blob
    assert store_server.stats["puts"] == 1
    assert store_server.stats["gets"] == 1
    assert store_server.stats["not_found"] == 1
    assert remote.op_count("hit") == 1
    assert remote.op_count("miss") == 1
    assert remote.op_count("put") == 1


def test_kernel_kind_is_a_separate_namespace(store_server):
    remote = RemoteStore(store_server.url)
    key = "ab" * 16
    assert remote.put_bytes(key, b"compile-blob", kind="compile")
    assert remote.get_bytes(key, kind="kernel") is None
    assert remote.put_bytes(key, b"kernel-blob", kind="kernel")
    assert remote.get_bytes(key, kind="compile") == b"compile-blob"
    assert remote.get_bytes(key, kind="kernel") == b"kernel-blob"


def test_malformed_keys_and_kinds_rejected(store_server):
    remote = RemoteStore(store_server.url)
    # Path traversal shapes must be rejected server-side (400 → miss).
    assert remote.get_bytes("../../etc/passwd".replace("/", "2f")) is None
    assert not remote.put_bytes("not hex!", b"x")
    with pytest.raises(ValueError):
        remote.get_bytes("ab" * 16, kind="nope")


def test_remote_down_degrades_to_misses():
    remote = RemoteStore("http://127.0.0.1:1")  # nothing listens here
    assert remote.get_bytes("ab" * 16) is None
    assert not remote.put_bytes("ab" * 16, b"x")
    assert not remote.is_up()
    assert remote.op_count("error") == 2


def test_keep_alive_reconnects_after_server_restart(tmp_path):
    root = str(tmp_path / "l2")
    server = StoreServer(root).start()
    url = server.url
    remote = RemoteStore(url)
    assert remote.is_up()
    server.stop()
    # The old socket is stale now; a fresh server on the same port
    # (rebind) must be reachable through the same client.
    host, port = server.host, server.port
    server2 = StoreServer(root, host=host, port=port).start()
    try:
        assert remote.is_up()
    finally:
        server2.stop()


def test_tiered_read_through_populates_l1(tmp_path, store_server):
    key, result = small_result(2)
    # Seed the remote directly, as if another node had compiled it.
    seeder = RemoteStore(store_server.url)
    assert seeder.put_bytes(key, pickle.dumps(result))

    local = ArtifactStore(tmp_path / "l1")
    tiered = TieredStore(local, RemoteStore(store_server.url))
    PERF.enable()
    got = tiered.get(key)
    assert got == result
    # ...and the L1 copy now answers without the network.
    assert local.get(key) == result
    assert tiered.remote_stats()["hits"] == 1
    tiered.close()


def test_tiered_write_behind_reaches_remote(tmp_path, store_server):
    key, result = small_result(3)
    tiered = TieredStore(
        ArtifactStore(tmp_path / "l1"), RemoteStore(store_server.url)
    )
    tiered.put(key, result)
    assert tiered.flush(timeout=10.0)
    # A second node (fresh L1) sees the artifact via L2.
    other = TieredStore(
        ArtifactStore(tmp_path / "other-l1"),
        RemoteStore(store_server.url),
    )
    assert other.get(key) == result
    tiered.close()
    other.close()


def test_tiered_kernel_artifacts(tmp_path, store_server):
    tiered = TieredStore(
        ArtifactStore(tmp_path / "l1"), RemoteStore(store_server.url)
    )
    fingerprint = "cd" * 16
    tiered.put_kernel(fingerprint, {"fake": "kernel"})
    assert tiered.flush()
    other = TieredStore(
        ArtifactStore(tmp_path / "other-l1"),
        RemoteStore(store_server.url),
    )
    assert other.get_kernel(fingerprint) == {"fake": "kernel"}
    tiered.close()
    other.close()


def test_corrupt_remote_blob_is_a_miss(tmp_path, store_server):
    key, _result = small_result(4)
    seeder = RemoteStore(store_server.url)
    assert seeder.put_bytes(key, b"this is not a pickle")
    tiered = TieredStore(
        ArtifactStore(tmp_path / "l1"), RemoteStore(store_server.url)
    )
    PERF.enable()
    PERF.reset()
    assert tiered.get(key) is None
    counters = PERF.snapshot()["counters"]
    assert counters.get("remote_store.corrupt") == 1
    tiered.close()


def test_tiered_with_dead_remote_still_serves_l1(tmp_path):
    key, result = small_result(5)
    tiered = TieredStore(
        ArtifactStore(tmp_path / "l1"),
        RemoteStore("http://127.0.0.1:1"),
    )
    tiered.put(key, result)
    assert tiered.get(key) == result  # L1 answers; L2 errors are silent
    assert tiered.remote_stats()["errors"] >= 0
    tiered.close(flush_timeout=5.0)


def test_concurrent_tiered_clients(tmp_path, store_server):
    """Many threads sharing one TieredStore: no lost writes, no
    exceptions from the per-thread connection handling."""
    tiered = TieredStore(
        ArtifactStore(tmp_path / "l1"), RemoteStore(store_server.url)
    )
    keys = []
    for tag in range(8):
        key, result = small_result(100 + tag)
        keys.append((key, result))

    errors = []

    def hammer(worker: int) -> None:
        try:
            for key, result in keys:
                tiered.put(key, result)
                assert tiered.get(key) == result
        except Exception as exc:  # pragma: no cover - the assertion
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(i,)) for i in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert tiered.flush()
    assert store_server.stats["puts"] >= len(keys)
    tiered.close()


def test_open_store_factory(tmp_path, store_server):
    assert open_store(None) is None
    plain = open_store(str(tmp_path / "a"))
    assert isinstance(plain, ArtifactStore)
    tiered = open_store(str(tmp_path / "b"), store_server.url)
    assert isinstance(tiered, TieredStore)
    tiered.close()


def test_store_server_metrics_endpoint(store_server):
    import json
    import urllib.request

    with urllib.request.urlopen(store_server.url + "/metrics") as resp:
        payload = json.loads(resp.read().decode("utf-8"))
    assert payload["schema"] == "repro.store/1"
    assert payload["ok"]
    assert {"entries", "bytes", "gets", "puts"} <= set(payload)
