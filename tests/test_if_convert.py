"""If-conversion: region lowering, predicated packing, and the
branch-semantics differential oracle across every engine axis."""

import pytest

from repro import (
    CompilerOptions,
    Variant,
    compile_program,
    intel_dunnington,
    simulate,
)
from repro.bench import BRANCHY_KERNELS
from repro.bench.predication import count_vselects
from repro.engines import engine_names
from repro.ir import (
    FLOAT64,
    Predicate,
    ProgramBuilder,
    Select,
    parse_program,
    select,
)
from repro.transform import (
    convert_region,
    has_regions,
    if_convert_block,
    if_convert_program,
)
from repro.vm import Simulator
from repro.vm.simulator import interpret_program


def _diamond_program():
    return parse_program(
        """
        double A[16]; double B[16]; double c;
        for (i = 0; i < 8; i += 1) {
            if (A[i] > c) {
                B[i] = c;
            } else {
                B[i] = A[i];
            }
        }
        """
    )


def _masked_program():
    return parse_program(
        """
        double A[16]; double ACC[16]; double B[16];
        for (i = 0; i < 8; i += 1) {
            if (A[i] > B[i]) {
                ACC[i] = ACC[i] + A[i];
                B[i] = B[i] * 2.0;
            }
        }
        """
    )


class TestConvertShapes:
    def test_select_merge_is_unpredicated(self):
        region = next(iter(_diamond_program().loops())).body.statements[0]
        lowered = convert_region(region)
        assert len(lowered) == 1
        stmt = lowered[0]
        assert isinstance(stmt.expr, Select)
        assert stmt.pred is None
        assert stmt.expr.cond == region.cond

    def test_masked_update_carries_predicates(self):
        region = next(iter(_masked_program().loops())).body.statements[0]
        lowered = convert_region(region)
        assert len(lowered) == 2
        for stmt in lowered:
            assert isinstance(stmt.expr, Select)
            assert stmt.pred == Predicate(region.cond, True)
            # The untaken arm re-reads the target lane.
            assert stmt.expr.on_false == stmt.target

    def test_else_statements_get_inverted_polarity(self):
        program = parse_program(
            """
            double A[8]; double B[8]; double c;
            if (A[0] > c) {
                B[0] = c;
            } else {
                B[1] = c;
            }
            """
        )
        lowered = convert_region(program.body[0].statements[0])
        assert lowered[0].pred.when is True
        assert lowered[1].pred.when is False
        # select(c, target, rhs): the else arm only fires when c is 0.
        assert lowered[1].expr.on_true == lowered[1].target

    def test_identity_when_no_regions(self):
        program = parse_program("double a;\na = 1.0;")
        assert if_convert_program(program) is program
        block = program.body[0]
        assert if_convert_block(block) is block

    def test_converted_block_is_straight_line_and_renumbered(self):
        program = if_convert_program(_masked_program())
        block = next(iter(program.loops())).body
        assert not block.has_regions
        assert [s.sid for s in block.flat_statements()] == [0, 1]

    def test_mergeable_property_matches_shapes(self):
        diamond = next(iter(_diamond_program().loops())).body.statements[0]
        masked = next(iter(_masked_program().loops())).body.statements[0]
        assert diamond.mergeable
        assert not masked.mergeable

    def test_region_rejects_early_condition_operand_write(self):
        from repro.errors import IRError
        from repro.ir import parse_program as parse

        legal = parse(
            """
            double A[8]; double B[8]; double c;
            if (A[0] > c) {
                B[0] = c;
                A[1] = B[0];
            }
            """
        )
        region = legal.body[0].statements[0]
        # Reordering puts the A-write before a later cond re-evaluation.
        with pytest.raises(IRError) as exc:
            type(region)(
                region.cond,
                (region.then_body[1], region.then_body[0]),
            )
        assert "'A'" in str(exc.value)

    def test_mixed_predicates_never_share_a_signature(self):
        program = parse_program(
            """
            double A[8]; double B[8]; double C[8]; double c;
            if (A[0] > c) {
                B[0] = A[0];
            } else {
                C[0] = A[0];
            }
            """
        )
        lowered = convert_region(program.body[0].statements[0])
        then_sig = lowered[0].isomorphism_signature()
        else_sig = lowered[1].isomorphism_signature()
        assert then_sig != else_sig


class TestDifferentialOracle:
    """The tentpole contract: the original branchy program under true
    branch semantics must match the if-converted, vectorized program
    under every grouping engine x sim engine, bit for bit."""

    PROGRAMS = {
        "diamond": _diamond_program,
        "masked": _masked_program,
        **{k.name: (lambda k=k: k.build(16)) for k in BRANCHY_KERNELS},
    }

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    @pytest.mark.parametrize("variant", [Variant.SLP, Variant.GLOBAL])
    def test_branch_semantics_preserved_everywhere(self, name, variant):
        machine = intel_dunnington()
        program = self.PROGRAMS[name]()
        assert has_regions(program)
        oracle = interpret_program(program, seed=0)
        for grouping in engine_names("grouping"):
            options = CompilerOptions(
                grouping_engine=grouping, on_error="raise"
            )
            result = compile_program(program, variant, machine, options)
            for sim_engine in engine_names("sim"):
                _, memory = Simulator(machine, engine=sim_engine).run(
                    result.plan, seed=0
                )
                assert memory.state_equal(oracle), (
                    f"{name}/{variant.value}/{grouping}/{sim_engine}"
                )

    @pytest.mark.parametrize(
        "kernel", BRANCHY_KERNELS, ids=lambda k: k.name
    )
    def test_branchy_kernels_emit_vselect_packs(self, kernel):
        machine = intel_dunnington()
        result = compile_program(
            kernel.build(64),
            Variant.GLOBAL,
            machine,
            CompilerOptions(on_error="raise"),
        )
        assert count_vselects(result.plan) >= 1

    def test_scalar_variant_also_runs_converted_form(self):
        machine = intel_dunnington()
        program = _diamond_program()
        result = compile_program(
            program, Variant.SCALAR, machine, CompilerOptions()
        )
        _, memory = simulate(result)
        assert memory.state_equal(interpret_program(program, seed=0))


class TestBuilderRegions:
    def test_builder_if_else_matches_parsed_form(self):
        b = ProgramBuilder("diamond")
        A = b.array("A", (16,), FLOAT64)
        B = b.array("B", (16,), FLOAT64)
        c = b.scalar("c", FLOAT64)
        with b.loop("i", 0, 8) as i:
            with b.if_(A[i] > c):
                b.assign(B[i], c)
            with b.else_():
                b.assign(B[i], A[i])
        from repro.ir import format_program

        # The builder canonicalizes `A[i] > c` to `c < A[i]`; compare
        # against the same program parsed in canonical form.
        reference = parse_program(
            """
            double A[16]; double B[16]; double c;
            for (i = 0; i < 8; i += 1) {
                if (c < A[i]) {
                    B[i] = c;
                } else {
                    B[i] = A[i];
                }
            }
            """
        )
        built = format_program(b.build())
        parsed = format_program(reference)
        assert built.splitlines()[1:] == parsed.splitlines()[1:]

    def test_builder_select_expression(self):
        b = ProgramBuilder("sel")
        A = b.array("A", (8,), FLOAT64)
        c = b.scalar("c", FLOAT64)
        stmt = b.assign(A[0], select(A[1] > c, c, A[1]))
        assert isinstance(stmt.expr, Select)

    def test_nested_if_rejected(self):
        b = ProgramBuilder("nested")
        A = b.array("A", (8,), FLOAT64)
        c = b.scalar("c", FLOAT64)
        with pytest.raises(Exception):
            with b.if_(A[0] > c):
                with b.if_(A[1] > c):
                    b.assign(A[0], c)


class TestMachineCosts:
    def test_select_and_compare_are_costed(self):
        from repro.vm import amd_phenom_ii

        intel = intel_dunnington()
        amd = amd_phenom_ii()
        assert intel.op_cost("select") == intel.blend
        assert intel.op_cost("<") == intel.compare
        assert amd.op_cost("select") == pytest.approx(1.4)
        assert amd.op_cost("!=") == pytest.approx(1.2)


class TestTraceEvents:
    def test_if_convert_events_are_traced(self):
        from repro.trace import TRACE

        TRACE.reset()
        TRACE.enable()
        try:
            if_convert_program(_diamond_program())
            events = [
                e for e in TRACE.events if e.get("ev") == "if_convert"
            ]
        finally:
            TRACE.disable()
            TRACE.reset()
        assert len(events) == 1
        assert events[0]["decision"] == "select-merge"
        assert events[0]["has_else"] is True

    def test_if_convert_events_pass_schema_validation(self):
        # Regression: `repro trace --validate` used to reject the
        # if_convert event kind.
        from repro.trace import TRACE, validate_records

        TRACE.reset()
        TRACE.enable()
        try:
            if_convert_program(_diamond_program())
            errors = validate_records(TRACE.records())
        finally:
            TRACE.disable()
            TRACE.reset()
        assert errors == []
