"""The Global+Layout pipeline end to end: scalar arenas, replication
gating, interaction with the cost model."""

import pytest

from repro import (
    CompilerOptions,
    Variant,
    compile_program,
    intel_dunnington,
    simulate,
)
from repro.ir import parse_program
from repro.vm import CompiledCopy, PackMode, VPack


def compile_layout(src, **options):
    return compile_program(
        parse_program(src),
        Variant.GLOBAL_LAYOUT,
        intel_dunnington(),
        CompilerOptions(**options),
    )


SCALAR_CASE = """
double DX[256]; double DY[256]; double W1[256]; double W2[256];
double OUT[256];
double dx, dy;
for (i = 0; i < 128; i += 1) {
    dx = DX[i] * W1[i];
    dy = DY[i] * W2[i];
    OUT[i] = dx * dy;
}
"""

ARRAY_CASE = """
double F[4096]; double R[512];
for (i = 0; i < 128; i += 1) {
    R[i] = F[9*i] / F[9*i + 1];
}
"""


class TestScalarArenaStage:
    def test_optimized_arena_matches_schedule_packs(self):
        """Every all-scalar pack the schedule uses gets consecutive
        aligned arena slots (Figure 12's offset assignment)."""
        from repro.layout import pack_is_contiguous, scalar_packs_of

        result = compile_layout(SCALAR_CASE)
        arenas = result.plan.arenas
        elem = result.plan.program.scalars["dx"].type
        packs = []
        for schedule in result.schedules:
            packs.extend(scalar_packs_of(schedule))
        assert packs, "expected scalar superwords in this kernel"
        assert all(
            pack_is_contiguous(pack, arenas, elem) for pack in packs
        )

    def test_scalar_packs_become_single_ops(self):
        """With the arena laid out, the <dx,dy> pack is one arena access
        instead of a per-lane gather."""
        result = compile_layout(SCALAR_CASE)
        modes = []
        for unit in result.plan.units:
            for instr in getattr(unit, "body", []):
                if isinstance(instr, VPack):
                    modes.append(instr.mode)
        assert PackMode.SCALAR_GATHER not in modes

    def test_plain_global_keeps_declaration_order(self):
        result = compile_program(
            parse_program(SCALAR_CASE), Variant.GLOBAL, intel_dunnington()
        )
        arena = result.plan.arenas["double"]
        assert arena.slot("dx") == 0 and arena.slot("dy") == 1


class TestReplicationStage:
    def test_replicas_execute_before_kernel(self):
        result = compile_layout(ARRAY_CASE)
        kinds = [type(u).__name__ for u in result.plan.units]
        assert "CompiledCopy" in kinds
        assert kinds.index("CompiledCopy") < kinds.index("CompiledLoop")

    def test_amortization_flows_into_copies(self):
        result = compile_layout(ARRAY_CASE, layout_amortization=4.0)
        copies = [
            u for u in result.plan.units if isinstance(u, CompiledCopy)
        ]
        assert copies and all(c.amortization == 4.0 for c in copies)

    def test_replica_contents_match_mapping(self):
        result = compile_layout(ARRAY_CASE)
        report, memory = simulate(result)
        copies = [
            u for u in result.plan.units if isinstance(u, CompiledCopy)
        ]
        rep = copies[0].replication
        source = memory.arrays[rep.source]
        replica = memory.arrays[rep.new_name]
        for dst, src in rep.copy_pairs():
            assert replica[dst] == source[src]

    def test_semantics_with_multiple_replicas(self):
        src = """
        double F[4096]; double G[4096]; double R[512];
        for (i = 0; i < 128; i += 1) {
            R[i] = F[9*i] / G[5*i + 2];
        }
        """
        base = compile_program(
            parse_program(src), Variant.SCALAR, intel_dunnington()
        )
        _, base_memory = simulate(base)
        result = compile_layout(src)
        assert result.stats.replications >= 2
        _, memory = simulate(result)
        assert memory.state_equal(base_memory)


class TestGating:
    def test_zero_budget_means_no_replicas(self):
        result = compile_layout(ARRAY_CASE, layout_budget_elements=0)
        assert result.stats.replications == 0

    def test_layout_never_below_global(self):
        for src in (SCALAR_CASE, ARRAY_CASE):
            layout = compile_layout(src)
            plain = compile_program(
                parse_program(src), Variant.GLOBAL, intel_dunnington()
            )
            layout_report, _ = simulate(layout)
            plain_report, _ = simulate(plain)
            assert layout_report.cycles <= plain_report.cycles + 1e-9

    def test_stats_count_replications(self):
        result = compile_layout(ARRAY_CASE)
        copies = sum(
            1 for u in result.plan.units if isinstance(u, CompiledCopy)
        )
        assert result.stats.replications == copies
