"""Domain example: complex multiplication over interleaved re/im arrays.

This is the milc-style workload from the paper's motivation: the natural
data layout interleaves real and imaginary parts (``A[2i]``/``A[2i+1]``),
so a plain vectorizer faces strided gathers. The walkthrough shows the
full two-stage pipeline:

* statement grouping chases the cross-iteration superword reuses,
* the data layout stage replicates the read-only operand arrays into
  de-interleaved copies (Section 5.2), turning every gather into one
  contiguous aligned vector load.

Run:  python examples/complex_multiply.py
"""

from repro import (
    FLOAT64,
    CompilerOptions,
    ProgramBuilder,
    Variant,
    compile_program,
    intel_dunnington,
    reduction,
    simulate,
)


def build_complex_multiply(n: int = 512):
    b = ProgramBuilder("complex-multiply")
    A = b.array("A", (2 * n + 8,), FLOAT64)   # interleaved re/im
    B = b.array("B", (2 * n + 8,), FLOAT64)
    C = b.array("C", (2 * n + 8,), FLOAT64)
    ar, ai, br, bi = b.scalars("ar ai br bi", FLOAT64)
    with b.loop("i", 0, n) as i:
        b.assign(ar, A[2 * i])
        b.assign(ai, A[2 * i + 1])
        b.assign(br, B[2 * i])
        b.assign(bi, B[2 * i + 1])
        b.assign(C[2 * i], ar * br - ai * bi)
        b.assign(C[2 * i + 1], ar * bi + ai * br)
    return b.build()


def main() -> None:
    machine = intel_dunnington()
    program = build_complex_multiply()

    runs = {}
    for variant in (
        Variant.SCALAR,
        Variant.SLP,
        Variant.GLOBAL,
        Variant.GLOBAL_LAYOUT,
    ):
        result = compile_program(
            build_complex_multiply(), variant, machine, CompilerOptions()
        )
        report, memory = simulate(result)
        runs[variant] = (result, report, memory)

    base_report, base_memory = runs[Variant.SCALAR][1], runs[Variant.SCALAR][2]
    print(f"{'variant':>14} {'cycles':>10} {'vs scalar':>10} "
          f"{'pack/unpack':>12} {'replicas':>9}")
    for variant, (result, report, memory) in runs.items():
        saved = reduction(base_report.cycles, report.cycles)
        assert memory.state_equal(base_memory)
        print(
            f"{variant.value:>14} {report.cycles:10.0f} {saved:10.1%} "
            f"{report.pack_unpack_ops:12d} {result.stats.replications:9d}"
        )

    layout_result = runs[Variant.GLOBAL_LAYOUT][0]
    print("\nreplicated (de-interleaved) arrays the layout stage built:")
    for name, decl in layout_result.plan.program.arrays.items():
        if name.startswith("__slp_rep"):
            print(f"    {name}: {decl.size} x {decl.type}")
    print(
        "\nEvery strided <A[2i], A[2i+2], ...> gather now reads "
        "B[q*i + k] — one aligned vector load per superword."
    )


if __name__ == "__main__":
    main()
