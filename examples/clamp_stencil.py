"""Domain example: control-flow vectorization of a clamped stencil.

``clamp_stencil.slp`` carries an if/else region in its inner loop — a
form no SLP stage can pack directly. The walkthrough shows the whole
control-flow pipeline:

* **if-conversion** flattens the region into a straight-line block
  whose merge point is one first-class ``select(cond, a, b)``,
* the SLP stages pack the predicated statements like any other
  isomorphic family, emitting a lane-parallel ``vselect`` (blend) per
  superword,
* a tree-walking interpreter with *true branch semantics* (only the
  taken branch executes) certifies that the converted, vectorized code
  writes bit-identical memory.

Run:  python examples/clamp_stencil.py
"""

import pathlib

from repro import (
    CompilerOptions,
    Variant,
    compile_program,
    intel_dunnington,
    parse_program,
    reduction,
    simulate,
)
from repro.bench.predication import count_vselects
from repro.ir.printer import format_program
from repro.transform import if_convert_program
from repro.vm.simulator import interpret_program

HERE = pathlib.Path(__file__).parent


def main() -> None:
    source = (HERE / "clamp_stencil.slp").read_text(encoding="utf-8")
    machine = intel_dunnington()

    print("if-converted inner loop (what every SLP stage sees):")
    converted = if_convert_program(parse_program(source))
    for line in format_program(converted).splitlines():
        if "select" in line or line.lstrip().startswith("s ="):
            print(f"    {line.strip()}")

    runs = {}
    for variant in (Variant.SCALAR, Variant.GLOBAL):
        result = compile_program(
            parse_program(source), variant, machine, CompilerOptions()
        )
        report, memory = simulate(result)
        runs[variant] = (result, report, memory)

    scalar_report = runs[Variant.SCALAR][1]
    print(f"\n{'variant':>10} {'cycles':>10} {'vs scalar':>10} {'vselects':>9}")
    for variant, (result, report, _) in runs.items():
        saved = reduction(scalar_report.cycles, report.cycles)
        print(
            f"{variant.value:>10} {report.cycles:10.0f} {saved:10.1%} "
            f"{count_vselects(result.plan):9d}"
        )

    # The independent oracle: run the *original* branchy program under
    # true branch semantics and compare memory bit for bit.
    oracle = interpret_program(parse_program(source))
    preserved = all(
        memory.state_equal(oracle) for _, _, memory in runs.values()
    )
    print(f"\nbranch-semantics oracle matched: {preserved}")
    assert preserved


if __name__ == "__main__":
    main()
