"""Domain example: a 3-point stencil time-step (cactusADM-style), plus a
datapath-width sweep showing how iterative grouping fills wider SIMD
units (the Figure 18 experiment on one kernel).

The stencil's neighbour loads (``U[i-1]``, ``U[i]``, ``U[i+1]``) overlap
between statements, so the holistic grouper's reuse analysis matters:
the shifted cross-copy groups it picks keep every load contiguous *and*
reuse the neighbour-sum temporaries.

Run:  python examples/stencil_sweep.py
"""

from repro import (
    FLOAT64,
    CompilerOptions,
    ProgramBuilder,
    Variant,
    compile_program,
    intel_dunnington,
    reduction,
    simulate,
)


def build_stencil(n: int = 1024):
    b = ProgramBuilder("stencil")
    U = b.array("U", (n + 16,), FLOAT64)
    V = b.array("V", (n + 16,), FLOAT64)
    W = b.array("W", (n + 16,), FLOAT64)
    tl, tr, lap = b.scalars("tl tr lap", FLOAT64)
    with b.loop("i", 1, n + 1) as i:
        b.assign(tl, U[i - 1] + U[i])
        b.assign(tr, U[i] + U[i + 1])
        b.assign(lap, tr - tl)
        b.assign(V[i], V[i] + lap * 0.5)
        b.assign(W[i], W[i] + lap * 0.25)
    return b.build()


def main() -> None:
    machine = intel_dunnington()

    print("variant comparison at 128 bits:")
    base = None
    for variant in (Variant.SCALAR, Variant.SLP, Variant.GLOBAL):
        result = compile_program(build_stencil(), variant, machine)
        report, memory = simulate(result)
        if base is None:
            base = (report, memory)
        saved = reduction(base[0].cycles, report.cycles)
        assert memory.state_equal(base[1])
        print(f"  {variant.value:>8}: {report.cycles:9.0f} cycles "
              f"({saved:6.1%} faster than scalar)")

    print("\nGlobal across hypothetical datapath widths (Figure 18 style):")
    scalar_result = compile_program(
        build_stencil(), Variant.SCALAR, machine
    )
    scalar_report, _ = simulate(scalar_result)
    for width in (128, 256, 512, 1024):
        result = compile_program(
            build_stencil(),
            Variant.GLOBAL,
            machine,
            CompilerOptions(datapath_bits=width),
        )
        report, _ = simulate(result)
        eliminated = reduction(
            scalar_report.total_instructions, report.total_instructions
        )
        lanes = width // 64
        print(
            f"  {width:5d}-bit ({lanes:2d} x double lanes): "
            f"{eliminated:6.1%} of dynamic instructions eliminated, "
            f"{result.stats.superword_statements} superword statements"
        )


if __name__ == "__main__":
    main()
