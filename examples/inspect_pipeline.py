"""Tour of the introspection APIs: schedules, disassembly, register
allocation, and instruction histograms.

Shows what the framework actually did to a small pentadiagonal-style
sweep: the grouping decisions (with the paper's SG-edge weights), the
final schedule, the generated virtual vector ISA, and the register
pressure the backend's linear-scan allocator measured.

Run:  python examples/inspect_pipeline.py
"""

from repro import (
    FLOAT64,
    CompilerOptions,
    ProgramBuilder,
    Variant,
    compile_program,
    intel_dunnington,
    simulate,
)
from repro.analysis import DependenceGraph
from repro.slp import PenaltyContext, iterative_grouping
from repro.transform import unroll_program
from repro.vm import allocate_plan, disassemble_plan, instruction_histogram


def build_sweep(n: int = 256):
    b = ProgramBuilder("sweep")
    P = b.array("P", (n + 16,), FLOAT64)
    O1 = b.array("O1", (n + 16,), FLOAT64)
    O2 = b.array("O2", (n + 16,), FLOAT64)
    fl, fr, mid = b.scalars("fl fr mid", FLOAT64)
    c1 = b.scalar("c1", FLOAT64)
    with b.loop("i", 1, n + 1) as i:
        b.assign(fl, P[i] * c1)
        b.assign(fr, P[i + 1] * c1)
        b.assign(mid, fr - fl)
        b.assign(O1[i], O1[i] + mid * 0.5)
        b.assign(O2[i], O2[i] + mid * 0.25)
    return b.build()


def main() -> None:
    machine = intel_dunnington()

    print("=== grouping decisions (SG edge weights, Figure 10) ===")
    unrolled = unroll_program(build_sweep(), machine.datapath_bits)
    loop = next(iter(unrolled.loops()))
    deps = DependenceGraph(loop.body)
    _units, traces = iterative_grouping(
        loop.body, deps, machine.datapath_bits,
        lambda n: unrolled.arrays[n],
    )
    for round_index, trace in enumerate(traces):
        for candidate, weight in trace.decisions:
            sids = "{" + ", ".join(
                f"S{s}" for s in sorted(candidate.sid_set)
            ) + "}"
            print(f"  round {round_index}: pick {sids:12s} weight {weight}")

    result = compile_program(build_sweep(), Variant.GLOBAL, machine)

    print("\n=== final schedule ===")
    for schedule in result.schedules:
        print(schedule)

    print("\n=== generated vector ISA ===")
    print(disassemble_plan(result.plan), end="")

    print("=== static instruction histogram ===")
    for name, count in sorted(instruction_histogram(result.plan).items()):
        print(f"  {name}: {count}")

    allocation = allocate_plan(result.plan)
    print(
        f"\n=== register allocation ===\n"
        f"  max live superwords: {allocation.max_pressure} "
        f"(of {machine.vector_registers} registers), "
        f"spills: {allocation.total_spills}"
    )

    report, _ = simulate(result)
    print(f"\n=== simulated execution ===\n{report.summary()}")


if __name__ == "__main__":
    main()
