"""Walk through the paper's Section 6 example (Figure 15), step by step.

Shows, on the same 8-statement basic block:
  1. what the original SLP algorithm (Larsen & Amarasinghe) groups and
     the single superword reuse it catches;
  2. what the holistic Global algorithm groups — the candidate set, the
     per-decision weights from the statement grouping graph, and the
     three superword reuses it exposes;
  3. the scheduled superword statements with their lane orders.

Run:  python examples/figure15_walkthrough.py
"""

from repro.analysis import DependenceGraph
from repro.ir import parse_block, parse_program
from repro.slp import (
    GroupNode,
    Scheduler,
    greedy_slp_schedule,
    iterative_grouping,
)

DECLS = """
float A[8192]; float B[8192];
float a, b, c, d, g, h, q, r;
"""

# The block of Figure 15(a), with the loop index pinned to i = 4 so the
# subscripts are concrete (the example is symbolic in the paper).
I = 4
CODE = f"""
a = A[{I}];
c = a * B[{4 * I}];
g = q * B[{4 * I - 2}];
b = A[{I + 1}];
d = b * B[{4 * I + 4}];
h = r * B[{4 * I + 2}];
A[{2 * I}] = d + a * c;
A[{2 * I + 2}] = g + r * h;
"""


def describe_reuses(schedule) -> int:
    live = set()
    reuses = 0
    for sw in schedule.superwords():
        for pack in sw.source_packs():
            if frozenset(pack) in live:
                names = ", ".join(str(k[1]) for k in pack)
                print(f"    reuse of <{names}> in {sw}")
                reuses += 1
        for pack in sw.ordered_packs():
            live.add(frozenset(pack))
    return reuses


def main() -> None:
    block = parse_block(CODE, DECLS)
    deps = DependenceGraph(block)
    decls = parse_program(DECLS).arrays

    print("Figure 15(a) — the input basic block:")
    print(block)

    print("\n--- Figure 15(b): the original SLP algorithm ---")
    slp = greedy_slp_schedule(block, deps, lambda n: decls[n], 64)
    print("groups:", [str(sw) for sw in slp.superwords()])
    n = describe_reuses(slp)
    print(f"  -> {n} superword reuse(s) (the paper reports 1: <a,b>)")

    print("\n--- Figure 15(c): holistic (Global) grouping ---")
    units, traces = iterative_grouping(
        block, deps, 64, lambda n: decls[n]
    )
    print("grouping decisions (in order, with SG edge weights):")
    for trace in traces:
        for candidate, weight in trace.decisions:
            sids = "{" + ", ".join(
                f"S{s}" for s in sorted(candidate.sid_set)
            ) + "}"
            print(f"    pick {sids:12s} weight {weight}")
    schedule = Scheduler(block, deps, units).run()
    schedule.validate(deps, datapath_bits=64)
    print("scheduled superword statements (lane order fixed):")
    for item in schedule.items:
        print(f"    {item}")
    n = describe_reuses(schedule)
    print(
        f"  -> {n} superword reuse(s) "
        "(the paper reports 3: <d,g>, <c,h>, <a,r>)"
    )


if __name__ == "__main__":
    main()
