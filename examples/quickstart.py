"""Quickstart: vectorize a saxpy-like loop and inspect what happened.

Run:  python examples/quickstart.py
"""

from repro import (
    FLOAT32,
    CompilerOptions,
    ProgramBuilder,
    Variant,
    compile_program,
    intel_dunnington,
    reduction,
    simulate,
)
from repro.ir import format_program


def build_saxpy(n: int = 1024):
    b = ProgramBuilder("saxpy")
    X = b.array("X", (n,), FLOAT32)
    Y = b.array("Y", (n,), FLOAT32)
    a = b.scalar("a", FLOAT32)
    with b.loop("i", 0, n) as i:
        b.assign(Y[i], a * X[i] + Y[i])
    return b.build()


def main() -> None:
    program = build_saxpy()
    print("input program:")
    print(format_program(program))

    machine = intel_dunnington()
    baseline = None
    for variant in (Variant.SCALAR, Variant.SLP, Variant.GLOBAL):
        result = compile_program(program, variant, machine)
        report, memory = simulate(result)
        if variant is Variant.SCALAR:
            baseline = (report, memory)
            print(f"{variant.value:>8}: {report.cycles:9.0f} cycles")
            continue
        saved = reduction(baseline[0].cycles, report.cycles)
        same = memory.state_equal(baseline[1])
        print(
            f"{variant.value:>8}: {report.cycles:9.0f} cycles "
            f"({saved:6.1%} faster), "
            f"{result.stats.superword_statements} superword statements, "
            f"semantics preserved: {same}"
        )

    result = compile_program(program, Variant.GLOBAL, machine)
    print("\nGlobal's schedule for the unrolled loop body:")
    for schedule in result.schedules:
        print(schedule)
    report, _ = simulate(result)
    print("\ninstruction mix:")
    print(report.summary())


if __name__ == "__main__":
    main()
