"""Figure 15 / Section 6: the paper's worked example, end to end.

Regenerates the three transformations of the figure on the 8-statement
block: (b) the original SLP algorithm's grouping with its single
superword reuse, (c) Global's grouping with three superword reuses, and
(d) Global+Layout. Asserts the groupings and the reuse counts match the
paper's narrative.
"""

from __future__ import annotations

from conftest import write_result

from repro.analysis import DependenceGraph
from repro.ir import parse_block, parse_program
from repro.slp import greedy_slp_schedule, holistic_slp_schedule

DECLS = """
float A[8192]; float B[8192];
float a, b, c, d, g, h, q, r;
"""

I = 4
CODE = f"""
a = A[{I}];
c = a * B[{4 * I}];
g = q * B[{4 * I - 2}];
b = A[{I + 1}];
d = b * B[{4 * I + 4}];
h = r * B[{4 * I + 2}];
A[{2 * I}] = d + a * c;
A[{2 * I + 2}] = g + r * h;
"""


def _decl_of(name):
    return parse_program(DECLS).arrays[name]


def _superword_reuses(schedule):
    """Count source packs that were produced (as targets or sources) by
    an earlier superword statement — the reuses the example tallies."""
    live = set()
    reuses = 0
    for sw in schedule.superwords():
        for pack in sw.source_packs():
            if frozenset(pack) in live:
                reuses += 1
        for pack in sw.ordered_packs():
            live.add(frozenset(pack))
    return reuses


def test_fig15_worked_example(benchmark, results_dir):
    block = parse_block(CODE, DECLS)
    deps = DependenceGraph(block)

    global_schedule = benchmark(
        holistic_slp_schedule, block, deps, 64, _decl_of
    )
    slp_schedule = greedy_slp_schedule(block, deps, _decl_of, 64)

    slp_groups = {frozenset(sw.sids) for sw in slp_schedule.superwords()}
    global_groups = {
        frozenset(sw.sids) for sw in global_schedule.superwords()
    }

    # Figure 15(b): greedy chain grouping.
    assert frozenset({0, 3}) in slp_groups
    assert frozenset({1, 4}) in slp_groups
    # Figure 15(c): the reuse-maximizing grouping.
    assert global_groups == {
        frozenset({0, 3}),
        frozenset({2, 4}),
        frozenset({1, 5}),
        frozenset({6, 7}),
    }

    slp_reuses = _superword_reuses(slp_schedule)
    global_reuses = _superword_reuses(global_schedule)

    body = (
        f"input block:\n{block}\n\n"
        f"SLP grouping (Figure 15b): "
        f"{sorted(sorted(g) for g in slp_groups)}\n"
        f"  superword reuses: {slp_reuses} (paper: 1, <a,b>)\n\n"
        f"Global grouping (Figure 15c): "
        f"{sorted(sorted(g) for g in global_groups)}\n"
        f"  superword reuses: {global_reuses} "
        "(paper: 3 — <d,g>, <c,h>, <a,r>)\n\n"
        f"Global schedule:\n{global_schedule}"
    )
    write_result(
        results_dir / "fig15_worked_example.txt",
        "Figure 15: the Section 6 worked example",
        body,
    )

    # The paper's headline for this example: one reuse vs three.
    assert slp_reuses == 1
    assert global_reuses == 3
