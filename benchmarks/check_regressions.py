#!/usr/bin/env python
"""CI entry point for the perf-regression gate.

Thin wrapper over :mod:`repro.bench.regress` (the benchmarks directory
is not importable from the package, so the logic lives in ``src`` and
this script only parses flags)::

    PYTHONPATH=src python benchmarks/check_regressions.py
    PYTHONPATH=src python benchmarks/check_regressions.py \\
        --inject-slowdown 2.0 --json verdict.json

Exit status: 0 when every comparable metric is inside its band, 1 on
any failure. ``--inject-slowdown 2.0`` is the mutation step: CI runs
it and *requires* exit 1, proving the gate would catch a real 2x
cycle regression. Equivalent to ``repro bench --check``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.bench.optimality import check_optimality
from repro.bench.predication import check_predication
from repro.bench.regress import render_verdict, run_check

DEFAULT_BASELINE = (
    pathlib.Path(__file__).parent / "results" / "BENCH_suite.json"
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=DEFAULT_BASELINE,
        help=f"baseline artifact (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument("--machine", default="intel")
    parser.add_argument("--n", type=int, default=64)
    parser.add_argument(
        "--inject-slowdown", type=float, default=1.0,
        dest="inject_slowdown",
        help="multiply measured cycle metrics before comparison"
        " (mutation step: 2.0 must make the gate fail)",
    )
    parser.add_argument(
        "--json", type=pathlib.Path, default=None, dest="json_out",
        help="also write the verdict document to this path",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="print every check, not just failures",
    )
    args = parser.parse_args(argv)

    verdict = run_check(
        args.baseline,
        machine_name=args.machine,
        n=args.n,
        inject_slowdown=args.inject_slowdown,
        out_path=args.json_out,
    )
    print(render_verdict(verdict, verbose=args.verbose))
    status = 0 if verdict["status"] == "ok" else 1

    # The optimality-gap plane rides along when its committed baseline
    # sits next to the suite baseline (same behaviour as
    # ``repro bench --check``): recompute the deterministic greedy-vs-
    # optimal packing scores and fail on any drift.
    optimality_baseline = args.baseline.parent / "BENCH_optimality.json"
    if optimality_baseline.exists():
        opt_verdict = check_optimality(optimality_baseline)
        print("optimality-gap plane:")
        print(render_verdict(opt_verdict, verbose=args.verbose))
        if opt_verdict["status"] != "ok":
            status = 1

    # Likewise the predication plane: branchy-kernel cycle counts and
    # vselect emission recomputed against BENCH_predication.json.
    predication_baseline = args.baseline.parent / "BENCH_predication.json"
    if predication_baseline.exists():
        pred_verdict = check_predication(predication_baseline)
        print("predication plane:")
        print(render_verdict(pred_verdict, verbose=args.verbose))
        if pred_verdict["status"] != "ok":
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
