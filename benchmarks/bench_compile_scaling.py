"""Compile-time scaling of the grouping engines.

The holistic grouping loop is the compiler's asymptotic hot spot: the
reference engine re-derives every active candidate's auxiliary-graph
score on every decision iteration (candidates x iterations exact
evaluations), which blows up on heavily unrolled blocks at wide
datapaths — exactly Figure 18's regime. The incremental engine memoizes
scores, invalidates only the committed group's dirty neighborhood, and
keeps a lazily-refined bound heap, so its exact evaluations track the
number of *decisions*, not candidates x iterations.

This harness measures both engines over

* the 16-kernel Table 3 suite across unroll factor (2/4/8) x datapath
  (128 -> 1024) — the fixed-size workloads, where blocks are small and
  the advantage is bounded;
* a block-size scaling series (``G`` independent stencil chains in one
  loop body, the shape aggressive unrolling/inlining produces) at the
  unroll-8 x 1024-bit configuration, where the reference engine's
  quadratic recomputation shows and the incremental engine's speedup
  grows without bound (measured: ~1.3x at G=1, >10x at G=2, >40x at
  G=3 — too slow to time routinely, so the series stops at G=2);
* the parallel suite runner (``run_suite(jobs=4)`` vs ``jobs=1``).

Every measured compile is differentially checked: both engines must
produce byte-identical disassembled plans. Results land in
``results/compile_scaling.txt`` and machine-readable
``results/BENCH_compile.json``. Set ``REPRO_BENCH_SMOKE=1`` (CI) for a
reduced grid that still enforces the no-regression and asymptotic-count
assertions.
"""

from __future__ import annotations

import math
import os
import time

from conftest import write_result

from repro import CompilerOptions, Variant, compile_program
from repro.bench import ALL_KERNELS, KERNELS, ascii_table, intel_dunnington
from repro.bench.record import write_bench_json
from repro.bench.suite import run_suite
from repro.ir import ProgramBuilder
from repro.ir.types import FLOAT64
from repro.perf import PERF
from repro.vm.pretty import disassemble_plan

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

ENGINES = ("incremental", "reference")
UNROLLS = (2, 8) if SMOKE else (2, 4, 8)
DATAPATHS = (128, 1024) if SMOKE else (128, 256, 512, 1024)
SUITE_KERNELS = (
    [KERNELS[n] for n in ("cactusADM", "ua", "mg", "cg")]
    if SMOKE
    else ALL_KERNELS
)
REPEATS = 1 if SMOKE else 2
N = 16


def _timed_compile(program, machine, options):
    """Best-of-``REPEATS`` wall time plus the perf snapshot and plan
    fingerprint of the final run (counters are deterministic across
    repeats; timings take the minimum to shed scheduler noise)."""
    best = math.inf
    for _ in range(REPEATS):
        PERF.reset()
        PERF.enable()
        started = time.perf_counter()
        result = compile_program(program, Variant.GLOBAL, machine, options)
        best = min(best, time.perf_counter() - started)
        PERF.disable()
    snapshot = PERF.snapshot()
    PERF.reset()
    return best, snapshot, disassemble_plan(result.plan)


def _grouping_seconds(snapshot):
    return snapshot["sections"].get("grouping", (0.0, 0))[0]


def _exact_scores(snapshot):
    return snapshot["counters"].get("grouping.scores_recomputed", 0)


def _measure_config(programs, unroll, datapath):
    """Both engines over a set of named programs at one configuration;
    asserts plan identity pairwise."""
    machine = intel_dunnington().with_datapath(datapath)
    rows = []
    for name, program in programs:
        per_engine = {}
        for engine in ENGINES:
            options = CompilerOptions(
                unroll_factor=unroll, grouping_engine=engine
            )
            seconds, snapshot, plan = _timed_compile(
                program, machine, options
            )
            per_engine[engine] = {
                "seconds": seconds,
                "grouping_seconds": _grouping_seconds(snapshot),
                "exact_scores": _exact_scores(snapshot),
                "score_bounds": snapshot["counters"].get(
                    "grouping.score_bounds", 0
                ),
                "decisions": snapshot["counters"].get(
                    "grouping.decisions", 0
                ),
                "plan": plan,
            }
        assert (
            per_engine["incremental"]["plan"]
            == per_engine["reference"]["plan"]
        ), f"engines diverged on {name} (unroll={unroll}, dp={datapath})"
        for record in per_engine.values():
            del record["plan"]
        rows.append(
            {
                "kernel": name,
                "unroll": unroll,
                "datapath": datapath,
                **{
                    f"{engine}_{field}": value
                    for engine, record in per_engine.items()
                    for field, value in record.items()
                },
            }
        )
    return rows


def _stencil_chains(groups, n=N):
    """``groups`` independent 3-point stencil chains sharing one loop
    body — a realistic big-block shape (unrolled/inlined code) whose
    candidate count grows linearly while the chains stay independent."""
    b = ProgramBuilder(f"chains{groups}")
    chains = []
    for g in range(groups):
        a = b.array(f"A{g}", (16 * n + 16,), FLOAT64)
        out = b.array(f"B{g}", (16 * n + 16,), FLOAT64)
        tl, tr = b.scalars(f"tl{g} tr{g}", FLOAT64)
        chains.append((a, out, tl, tr))
    with b.loop("i", 1, n + 1) as i:
        for a, out, tl, tr in chains:
            b.assign(tl, a[i - 1] + a[i])
            b.assign(tr, a[i] + a[i + 1])
            b.assign(out[i], out[i] + (tr - tl) * 0.5)
    return b.build()


def test_compile_scaling(results_dir):
    payload = {
        "smoke": SMOKE,
        "n": N,
        "repeats": REPEATS,
        "suite": [],
        "scaling": [],
        "parallel_runner": None,
        "summary": {},
    }

    # -- 1. the fixed-size suite across the unroll x datapath grid ---------
    programs = [(k.name, k.build(N)) for k in SUITE_KERNELS]
    for unroll in UNROLLS:
        for datapath in DATAPATHS:
            payload["suite"].extend(
                _measure_config(programs, unroll, datapath)
            )

    # No-regression guard: at every configuration the incremental engine
    # must stay within 2x of the reference in aggregate (it is expected
    # to *win*; 2x is the hard failure line for CI smoke).
    for unroll in UNROLLS:
        for datapath in DATAPATHS:
            rows = [
                r
                for r in payload["suite"]
                if r["unroll"] == unroll and r["datapath"] == datapath
            ]
            inc = sum(r["incremental_seconds"] for r in rows)
            ref = sum(r["reference_seconds"] for r in rows)
            assert inc <= 2.0 * ref, (
                f"incremental engine regressed >2x at unroll={unroll}, "
                f"datapath={datapath}: {inc:.3f}s vs {ref:.3f}s"
            )

    # -- 2. block-size scaling at unroll-8 x 1024-bit ----------------------
    scale_programs = [
        (f"chains{g}", _stencil_chains(g)) for g in (1, 2)
    ]
    payload["scaling"] = _measure_config(scale_programs, 8, 1024)
    by_name = {r["kernel"]: r for r in payload["scaling"]}

    speedups = {
        name: r["reference_seconds"] / r["incremental_seconds"]
        for name, r in by_name.items()
    }
    exact_ratio = {
        name: r["reference_exact_scores"]
        / max(r["incremental_exact_scores"], 1)
        for name, r in by_name.items()
    }

    # The headline claim: on big blocks at the unroll-8 x 1024-bit
    # configuration the incremental engine is >= 3x faster end to end
    # (measured ~10x; 3x leaves headroom for noisy CI boxes).
    assert speedups["chains2"] >= 3.0, (
        f"expected >=3x compile-time speedup on chains2 at unroll-8 x "
        f"1024-bit, got {speedups['chains2']:.2f}x"
    )

    # The asymptotic claim behind it: exact score recomputations stay
    # far below the reference engine's candidates x iterations, and the
    # gap *widens* as the block grows.
    assert exact_ratio["chains2"] >= 3.0
    assert exact_ratio["chains2"] > exact_ratio["chains1"]

    # Growing the unrolled block (unroll 2 -> 8) must also grow the
    # advantage on the suite's most grouping-bound kernel.
    def suite_seconds(engine, unroll, name="cactusADM"):
        (row,) = [
            r
            for r in payload["suite"]
            if r["kernel"] == name
            and r["unroll"] == unroll
            and r["datapath"] == max(DATAPATHS)
        ]
        return row[f"{engine}_seconds"]

    low, high = UNROLLS[0], UNROLLS[-1]
    speedup_low = suite_seconds("reference", low) / suite_seconds(
        "incremental", low
    )
    speedup_high = suite_seconds("reference", high) / suite_seconds(
        "incremental", high
    )
    payload["summary"]["cactusADM_speedup_by_unroll"] = {
        low: speedup_low,
        high: speedup_high,
    }
    assert speedup_high > speedup_low

    # -- 3. the parallel suite runner --------------------------------------
    # The full 16-kernel suite at a compile-heavy configuration: each
    # kernel is several hundred milliseconds of work, so four workers
    # amortize their startup. Wall-clock superiority is only asserted
    # where the hardware can deliver it (a single-core box serializes
    # the workers by definition); the measurement is recorded either way.
    runner_kernels = SUITE_KERNELS if SMOKE else ALL_KERNELS
    runner_options = CompilerOptions(unroll_factor=4, datapath_bits=512)
    walls = {}
    for jobs in (1, 4):
        started = time.perf_counter()
        run_suite(
            intel_dunnington(),
            kernels=runner_kernels,
            options=runner_options,
            n=64,
            jobs=jobs,
        )
        walls[jobs] = time.perf_counter() - started
    cores = len(os.sched_getaffinity(0))
    payload["parallel_runner"] = {
        "kernels": len(runner_kernels),
        "cores": cores,
        "jobs1_seconds": walls[1],
        "jobs4_seconds": walls[4],
        "speedup": walls[1] / walls[4],
    }
    if not SMOKE and cores >= 2:
        assert walls[4] < walls[1], (
            f"run_suite(jobs=4) ({walls[4]:.2f}s) did not beat jobs=1 "
            f"({walls[1]:.2f}s) on {cores} cores"
        )

    payload["summary"]["scaling_speedups"] = speedups
    payload["summary"]["scaling_exact_ratios"] = exact_ratio

    # -- artifacts ---------------------------------------------------------
    write_bench_json(results_dir / "BENCH_compile.json", payload)

    table_rows = []
    for r in payload["suite"] + payload["scaling"]:
        table_rows.append(
            (
                r["kernel"],
                str(r["unroll"]),
                str(r["datapath"]),
                f"{r['reference_seconds'] * 1e3:8.1f} ms",
                f"{r['incremental_seconds'] * 1e3:8.1f} ms",
                f"{r['reference_seconds'] / r['incremental_seconds']:5.2f}x",
                f"{r['reference_exact_scores']:6d}",
                f"{r['incremental_exact_scores']:6d}",
            )
        )
    body = ascii_table(
        (
            "kernel",
            "unroll",
            "datapath",
            "reference",
            "incremental",
            "speedup",
            "ref exact",
            "inc exact",
        ),
        table_rows,
    )
    body += (
        f"\n\nchains2 @ unroll-8 x 1024-bit: "
        f"{speedups['chains2']:.2f}x compile-time speedup, "
        f"{exact_ratio['chains2']:.1f}x fewer exact score evaluations"
        f"\nrun_suite jobs=4 vs jobs=1: "
        f"{payload['parallel_runner']['speedup']:.2f}x "
        f"({walls[1]:.2f}s -> {walls[4]:.2f}s)"
    )
    write_result(
        results_dir / "compile_scaling.txt",
        "Compile-time scaling: incremental vs reference grouping engine",
        body,
    )
