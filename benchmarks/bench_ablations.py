"""Ablations for the design choices DESIGN.md documents.

Not a paper figure — these isolate the contribution of each piece of
the reproduction on the full 16-kernel suite:

* **weight-only grouping** — the paper-literal decision rule (rank by
  average reuse, commit everything) versus our cost-aware score;
* **no indirect reuse for Global** — disable the register-permutation
  reuse that Section 4.3 credits to the holistic framework;
* **alignment peeling** — the pre-processing extension, off by default;
* **layout amortization** — sensitivity of Global+Layout to the
  replication-copy amortization factor.
"""

from __future__ import annotations

import statistics

from conftest import SUITE_N, write_result

from repro import CompilerOptions, Variant
from repro.bench import (
    ALL_KERNELS,
    ascii_table,
    intel_dunnington,
    percent,
    run_kernel,
)


def _suite_average(variant, options):
    machine = intel_dunnington()
    reductions = []
    for kernel in ALL_KERNELS:
        result = run_kernel(
            kernel,
            machine,
            variants=(Variant.SCALAR, variant),
            options=options,
            n=SUITE_N,
        )
        assert result.semantics_preserved(), kernel.name
        reductions.append(result.time_reduction(variant))
    return statistics.mean(reductions)


def test_ablation_grouping_decision_rule(benchmark, results_dir):
    cost_aware = benchmark.pedantic(
        _suite_average,
        args=(Variant.GLOBAL, CompilerOptions()),
        rounds=1,
        iterations=1,
    )
    weight_only = _suite_average(
        Variant.GLOBAL, CompilerOptions(decision_mode="weight-only")
    )
    body = ascii_table(
        ("grouping decision rule", "Global avg reduction"),
        [
            ("cost-aware score (ours)", percent(cost_aware)),
            ("weight-only (paper-literal)", percent(weight_only)),
        ],
    )
    body += (
        "\n\nThe paper-literal rule ranks purely by reuse weight and "
        "commits every candidate; without the packing-cost terms the "
        "cost gate must discard whole blocks and Global loses ground."
    )
    write_result(
        results_dir / "ablation_decision_rule.txt",
        "Ablation: grouping decision rule",
        body,
    )
    # Our deterministic cost-aware rule must not be worse overall.
    assert cost_aware >= weight_only - 1e-9
    assert weight_only >= 0


def test_ablation_indirect_reuse(benchmark, results_dir):
    with_shuffles = benchmark.pedantic(
        _suite_average,
        args=(Variant.GLOBAL, CompilerOptions()),
        rounds=1,
        iterations=1,
    )
    without = _suite_average(
        Variant.GLOBAL, CompilerOptions(indirect_reuse=False)
    )
    body = ascii_table(
        ("indirect (permutation) reuse", "Global avg reduction"),
        [
            ("enabled (Section 4.3)", percent(with_shuffles)),
            ("disabled", percent(without)),
        ],
    )
    write_result(
        results_dir / "ablation_indirect_reuse.txt",
        "Ablation: indirect superword reuse",
        body,
    )
    assert with_shuffles >= without - 1e-9


def test_ablation_alignment_peeling(benchmark, results_dir):
    default = benchmark.pedantic(
        _suite_average,
        args=(Variant.GLOBAL, CompilerOptions()),
        rounds=1,
        iterations=1,
    )
    peeled = _suite_average(
        Variant.GLOBAL, CompilerOptions(peel_for_alignment=True)
    )
    body = ascii_table(
        ("alignment peeling", "Global avg reduction"),
        [
            ("off (paper configuration)", percent(default)),
            ("on (extension)", percent(peeled)),
        ],
    )
    write_result(
        results_dir / "ablation_alignment_peeling.txt",
        "Ablation: loop peeling for alignment",
        body,
    )
    # Peeling trades a short scalar prologue for aligned wide accesses;
    # it must never lose more than the prologue costs.
    assert peeled >= default - 0.02


def test_ablation_layout_amortization(benchmark, results_dir):
    rows = []
    values = {}
    for factor in (2.0, 8.0, 16.0, 64.0):
        average = _suite_average(
            Variant.GLOBAL_LAYOUT,
            CompilerOptions(layout_amortization=factor),
        )
        values[factor] = average
        rows.append((f"1/{factor:g} of copy cost", percent(average)))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    body = ascii_table(
        ("replication copy charged at", "Global+Layout avg reduction"),
        rows,
    )
    body += (
        "\n\nThe layout stage's benefit is robust to the amortization "
        "assumption: even charging half the copy on every kernel "
        "invocation keeps it well ahead of plain Global."
    )
    write_result(
        results_dir / "ablation_layout_amortization.txt",
        "Ablation: replication amortization factor",
        body,
    )
    # Monotone: cheaper copies -> at least as much benefit.
    assert values[64.0] >= values[16.0] - 1e-9 >= 0
    assert values[16.0] >= values[2.0] - 1e-9
