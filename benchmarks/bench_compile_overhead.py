"""Section 7.1's compilation-overhead claim: "compared to the SLP
version, our approach increased compilation time by 27% on average."

Global does strictly more work than the greedy baseline (it builds the
variable-pack conflicting graph and re-evaluates auxiliary-graph weights
after every decision), so its compile time must be higher — but by a
constant factor, not asymptotically blowing up on these block sizes.
"""

from __future__ import annotations

import time

from conftest import SUITE_N, write_result

from repro import CompilerOptions, Variant, compile_program
from repro.bench import ALL_KERNELS, ascii_table, intel_dunnington


def _compile_all(variant, machine, repeats=3):
    best = {}
    for kernel in ALL_KERNELS:
        program = kernel.build(SUITE_N)
        samples = []
        for _ in range(repeats):
            started = time.perf_counter()
            compile_program(program, variant, machine)
            samples.append(time.perf_counter() - started)
        best[kernel.name] = min(samples)
    return best


def test_compile_time_overhead(benchmark, results_dir):
    machine = intel_dunnington()
    program = ALL_KERNELS[0].build(SUITE_N)
    benchmark(compile_program, program, Variant.GLOBAL, machine)

    slp_times = _compile_all(Variant.SLP, machine)
    global_times = _compile_all(Variant.GLOBAL, machine)
    rows = []
    ratios = []
    for name in slp_times:
        ratio = global_times[name] / max(slp_times[name], 1e-9)
        ratios.append(ratio)
        rows.append(
            (
                name,
                f"{slp_times[name] * 1e3:.2f} ms",
                f"{global_times[name] * 1e3:.2f} ms",
                f"{ratio:.2f}x",
            )
        )
    mean_ratio = sum(ratios) / len(ratios)
    body = ascii_table(("benchmark", "SLP", "Global", "ratio"), rows)
    body += (
        f"\n\nmean Global/SLP compile-time ratio: {mean_ratio:.2f}x"
        "\n(paper: +27% average compilation-time overhead)"
    )
    write_result(
        results_dir / "compile_overhead.txt",
        "Section 7.1: compilation-time overhead of Global over SLP",
        body,
    )

    # Global costs more (global analysis) but stays within a small
    # constant factor on these block sizes.
    assert mean_ratio > 1.0
    assert mean_ratio < 30.0
