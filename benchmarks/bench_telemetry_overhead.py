"""Disabled-telemetry overhead: ``repro.telemetry`` must be free when off.

The structured logger follows the tracer's contract — off by default,
one attribute check when disabled, hot sites guarded by
``if LOG.enabled:`` before any kwargs are built. As with the tracer,
the disabled cost is too small to time directly against a real request
(it drowns in service noise), so this harness bounds it analytically
and conservatively, the same three steps as ``bench_trace_overhead``:

1. serve a warm request stream with JSON logging ON and count the log
   records per request (every record = one hook that executed its full
   body);
2. microbenchmark the *most expensive* disabled hook form — a full
   ``LOG.event(...)`` call with kwargs, costlier than the bare
   ``LOG.enabled`` check the guarded sites actually pay;
3. charge every hook that price and divide by the measured warm
   request latency with logging OFF.

The estimate overstates the true disabled overhead and must still land
under 2%. The always-on metric counters are microbenchmarked too
(informational): one labeled counter increment is a dict lookup and a
float add, priced in nanoseconds against millisecond requests.
"""

from __future__ import annotations

import io
import os
import statistics
import time

from conftest import write_result

from repro.bench.record import write_bench_json
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread
from repro.telemetry.log import LOG, parse_jsonl
from repro.telemetry.metrics import MetricsRegistry

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
KERNEL = "cg"
N = 32
WARM_REQUESTS = 10 if SMOKE else 30
THRESHOLD = 0.02


def _warm_latencies(client: ServiceClient, count: int) -> list:
    samples = []
    for _ in range(count):
        started = time.perf_counter()
        client.compile(kernel=KERNEL, n=N)
        samples.append(time.perf_counter() - started)
    return samples


def test_disabled_telemetry_overhead(results_dir):
    with ServiceThread(shards=1) as thread:
        client = ServiceClient(thread.url)
        client.compile(kernel=KERNEL, n=N)  # prime the worker memo

        LOG.disable()
        disabled_median = statistics.median(
            _warm_latencies(client, WARM_REQUESTS)
        )

        # Hook census on a logged request stream.
        sink = io.StringIO()
        LOG.configure(stream=sink, service="bench-telemetry")
        try:
            enabled_median = statistics.median(
                _warm_latencies(client, WARM_REQUESTS)
            )
        finally:
            LOG.disable()
        records = parse_jsonl(sink.getvalue())
        hooks_per_request = len(records) / WARM_REQUESTS
        assert hooks_per_request >= 2, (
            "logged request stream produced almost no records — are the"
            " server-side hooks wired?"
        )
        # Every record carries the correlation ID the client minted.
        assert all(r.get("request_id") for r in records)

    # Price of one *disabled* hook, taking the expensive form (a real
    # event call with kwargs; guarded sites pay only `LOG.enabled`).
    loops = 20_000 if SMOKE else 200_000
    started = time.perf_counter()
    for _ in range(loops):
        LOG.event("request.done", kind="compile", key="x", coalesced=False,
                  ms=0.0)
    per_hook_seconds = (time.perf_counter() - started) / loops

    # Informational: the always-on labeled counter increment.
    registry = MetricsRegistry()
    family = registry.counter("bench_inc_total", labels=("shard",))
    child = family.labels(shard=0)
    started = time.perf_counter()
    for _ in range(loops):
        child.inc()
    per_inc_seconds = (time.perf_counter() - started) / loops

    estimated = hooks_per_request * per_hook_seconds / disabled_median
    payload = {
        "kernel": KERNEL,
        "n": N,
        "warm_requests": WARM_REQUESTS,
        "disabled_warm_median_s": round(disabled_median, 6),
        "enabled_warm_median_s": round(enabled_median, 6),
        "log_records_per_request": round(hooks_per_request, 2),
        "per_hook_disabled_seconds": per_hook_seconds,
        "per_counter_inc_seconds": per_inc_seconds,
        "estimated_disabled_overhead_fraction": round(estimated, 6),
        "threshold_fraction": THRESHOLD,
        "smoke": SMOKE,
    }
    write_bench_json(
        results_dir / "BENCH_telemetry_overhead.json", payload
    )
    write_result(
        results_dir / "telemetry_overhead.txt",
        "Disabled-telemetry request overhead (conservative bound)",
        "\n".join(f"{key}: {value}" for key, value in payload.items()),
    )

    assert estimated < THRESHOLD, (
        f"disabled telemetry costs an estimated {estimated:.2%} of a warm"
        f" request (bound {THRESHOLD:.0%});"
        f" hooks={hooks_per_request:.1f},"
        f" per-hook {per_hook_seconds * 1e9:.0f} ns"
    )
