"""Optimality gap of the greedy grouping heuristic, kernel by kernel.

The ``optimal`` grouping engine (:mod:`repro.slp.optimal`) searches the
same candidate space as the incremental greedy loop but exhaustively,
with an admissible bound — when it finishes within budget its selection
is *provably* the best packing under the grouping objective. That turns
the usual "greedy is probably fine" hand-wave into a measured quantity:
this harness sweeps all 16 kernels across unroll factors 2/4/8 and
reports, per kernel x factor,

* the round-0 packing **score** of greedy vs optimal (gap >= 0 by
  construction: the exact search is seeded with the greedy incumbent),
* end-to-end simulated **cycles** of the GLOBAL variant compiled with
  each engine (sign-free: a better packing score may still lose cycles
  downstream — those rows are the interesting ones), and
* whether optimality was **proven** on every grouping round or the
  engine hit its node budget and fell back.

Results land in ``results/optimality.txt`` and committed
``results/BENCH_optimality.json`` — the deterministic score plane of
the latter is regression-gated by ``repro bench --check`` (see
``repro.bench.optimality.check_optimality``). Set ``REPRO_BENCH_SMOKE=1``
(CI) for a reduced kernel grid that still enforces the sign and
proof-coverage gates.
"""

from __future__ import annotations

import os

from conftest import write_result

from repro.bench import ascii_table
from repro.bench.optimality import (
    DEFAULT_N,
    DEFAULT_UNROLL_FACTORS,
    optimality_metrics,
    write_optimality_baseline,
)
from repro.perf import PERF

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

MACHINE = "intel"
N = 32 if SMOKE else DEFAULT_N
UNROLL_FACTORS = (2, 4) if SMOKE else DEFAULT_UNROLL_FACTORS
KERNEL_NAMES = (
    ("cactusADM", "soplex", "lbm", "milc", "cg", "mg") if SMOKE else None
)
#: At least this many kernel x factor cells must be fully proven — the
#: exact search has to actually complete somewhere, or the "optimal"
#: column silently degenerates into a copy of greedy.
MIN_PROVEN = 3


def test_optimality(results_dir):
    PERF.reset()
    PERF.enable()
    metrics = optimality_metrics(
        machine_name=MACHINE,
        n=N,
        unroll_factors=UNROLL_FACTORS,
        kernels=KERNEL_NAMES,
    )
    PERF.disable()
    counters = dict(PERF.counters)
    PERF.reset()

    cells = sorted(metrics["proven"])
    proven_cells = [c for c in cells if metrics["proven"][c] == 1.0]
    score_gaps = {c: metrics["score"][f"{c}.gap"] for c in cells}
    cycle_gaps = {c: metrics["cycles"][f"{c}.gap"] for c in cells}

    # The sign contract: the optimal engine seeds its search with the
    # greedy selection, so no cell may ever score below greedy.
    for cell, gap in score_gaps.items():
        assert gap >= 0, f"negative optimality gap on {cell}: {gap}"
    # Proof coverage: budget fallbacks are allowed (and reported), but
    # the search must complete on a meaningful slice of the grid.
    assert len(proven_cells) >= MIN_PROVEN, (
        f"optimality proven on only {len(proven_cells)} cells "
        f"({proven_cells}); expected >= {MIN_PROVEN}"
    )

    improved = [c for c in cells if score_gaps[c] > 0]
    summary = {
        "cells": len(cells),
        "proven_cells": len(proven_cells),
        "improved_cells": len(improved),
        "total_score_gap": sum(score_gaps.values()),
        "total_cycle_gap": sum(cycle_gaps.values()),
        "search_nodes": counters.get("grouping.optimal.nodes", 0),
        "budget_fallbacks": counters.get("grouping.optimal.fallbacks", 0),
    }
    write_optimality_baseline(
        results_dir / "BENCH_optimality.json",
        metrics,
        machine=MACHINE,
        n=N,
        unroll_factors=UNROLL_FACTORS,
        smoke=SMOKE,
        summary=summary,
    )

    rows = [
        (
            cell,
            f"{metrics['score'][f'{cell}.greedy']:8.1f}",
            f"{metrics['score'][f'{cell}.optimal']:8.1f}",
            f"{score_gaps[cell]:6.1f}",
            f"{metrics['cycles'][f'{cell}.greedy']:10.1f}",
            f"{metrics['cycles'][f'{cell}.optimal']:10.1f}",
            f"{cycle_gaps[cell]:8.1f}",
            "yes" if metrics["proven"][cell] == 1.0 else "BUDGET",
        )
        for cell in cells
    ]
    body = ascii_table(
        (
            "kernel.uf",
            "greedy",
            "optimal",
            "gap",
            "cycles(g)",
            "cycles(o)",
            "saved",
            "proven",
        ),
        rows,
    )
    body += (
        f"\n\n{len(cells)} cells (n={N}, {MACHINE}): "
        f"{len(proven_cells)} proven optimal, "
        f"{len(improved)} with a strict greedy gap; "
        f"total score gap {sum(score_gaps.values()):.1f} vector-ops, "
        f"total cycles saved {sum(cycle_gaps.values()):.1f}"
        f"\nsearch nodes: {summary['search_nodes']}, "
        f"budget fallbacks: {summary['budget_fallbacks']}"
    )
    write_result(
        results_dir / "optimality.txt",
        "Greedy-vs-optimal grouping: packing score and cycle gap",
        body,
    )
