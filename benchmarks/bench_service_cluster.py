"""Cluster latency: three ``repro serve`` processes behind the router.

The distributed tier exists to scale the warm path horizontally
without giving up its latency: a consistent-hash router keeps each
artifact's requests on the node whose L1 already holds it, and the
shared L2 store refills any node that has to take over. This harness
measures the cost of that indirection directly:

* **single** — warm cache hits against one node, measured on a direct
  keep-alive connection (the ``bench_service`` warm path);
* **cluster** — the same artifacts through a real
  :class:`~repro.service.router.RouterService` fronting **three
  separate ``repro serve`` OS processes** sharing an L2
  :class:`~repro.store.remote.StoreServer`, hammered by 1000+
  concurrent submits from a thread herd.

Acceptance gates (asserted, not just recorded):

* every response is dataclass-``==`` to a local
  :func:`repro.compiler.compile_program` of the same source — the
  cluster never serves a wrong result;
* cluster warm p50 stays within **2x** the single-node warm p50;
* SIGKILLing one of the three nodes mid-load loses **zero** accepted
  requests — the router fails the key space over to the survivors.

Results land in ``results/service_cluster.txt`` and machine-readable
``results/BENCH_service_cluster.json``. ``REPRO_BENCH_SMOKE=1`` (CI)
shrinks the herd but keeps every gate except the latency ratio.
"""

from __future__ import annotations

import os
import socket
import statistics
import subprocess
import sys
import tempfile
import threading
import time

from conftest import write_result

from repro import (
    FLOAT32,
    ProgramBuilder,
    Variant,
    compile_program,
    parse_program,
)
from repro.bench.record import write_bench_json
from repro.ir.printer import format_program
from repro.service.client import ServiceClient
from repro.service.router import RouterThread
from repro.store import StoreServer
from repro.vm import MACHINES

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

NODES = 3
KEYS = 6 if SMOKE else 12
SUBMITS = 150 if SMOKE else 1200
THREADS = 8 if SMOKE else 32
KILL_SUBMITS = 60 if SMOKE else 240
VARIANT = Variant.GLOBAL

_SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _unique_source(tag: int) -> str:
    builder = ProgramBuilder(f"cluster{tag}")
    X = builder.array("X", (32,), FLOAT32)
    Y = builder.array("Y", (32,), FLOAT32)
    with builder.loop("i", 0, 32) as i:
        builder.assign(Y[i], X[i] * (tag + 2) + Y[i])
    return format_program(builder.build())


def _spawn_node(port: int, cache_dir: str, l2_url: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [_SRC_DIR, env.get("PYTHONPATH")])
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", str(port),
            "--workers", "2", "--queue-limit", "128",
            "--cache-dir", cache_dir, "--remote-store", l2_url,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_up(url: str, deadline_s: float = 30.0) -> None:
    probe = ServiceClient(url, timeout=5.0, keep_alive=False)
    deadline = time.time() + deadline_s
    while time.time() < deadline:
        if probe.is_up(timeout=2.0):
            return
        time.sleep(0.1)
    raise AssertionError(f"node at {url} never became healthy")


def _herd(url: str, sources, truths, submits: int, threads: int):
    """``submits`` round-robin warm submits from ``threads`` threads.
    Returns (latencies, wrong, errors): every accepted response is
    checked dataclass-== against the local ground truth."""
    latencies = []
    wrong = []
    errors = []
    lock = threading.Lock()
    counter = iter(range(submits))

    def worker():
        client = ServiceClient(url, timeout=120.0)
        while True:
            with lock:
                slot = next(counter, None)
            if slot is None:
                return
            index = slot % len(sources)
            started = time.perf_counter()
            try:
                out = client.compile(
                    source=sources[index], variant=VARIANT.value,
                    retries=8,
                )
            except Exception as exc:
                with lock:
                    errors.append(exc)
                continue
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                if out.result != truths[index]:
                    wrong.append(index)

    herd = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in herd:
        thread.start()
    for thread in herd:
        thread.join()
    return latencies, wrong, errors


def test_cluster_latency(results_dir):
    machine = MACHINES["intel"]()
    sources = [_unique_source(tag) for tag in range(KEYS)]
    truths = [
        compile_program(parse_program(source), VARIANT, machine)
        for source in sources
    ]

    payload = {
        "smoke": SMOKE,
        "nodes": NODES,
        "keys": KEYS,
        "submits": SUBMITS,
        "threads": THREADS,
        "summary": {},
    }

    procs = []
    with tempfile.TemporaryDirectory() as scratch:
        l2 = StoreServer(os.path.join(scratch, "l2")).start()
        try:
            ports = [_free_port() for _ in range(NODES)]
            node_urls = [f"http://127.0.0.1:{port}" for port in ports]
            procs = [
                _spawn_node(
                    port, os.path.join(scratch, f"n{index}"), l2.url
                )
                for index, port in enumerate(ports)
            ]
            for url in node_urls:
                _wait_up(url)

            with RouterThread(node_urls, health_interval=0.5) as router:
                # -- single-node baseline: direct warm hits ----------------
                direct = ServiceClient(node_urls[0], timeout=120.0)
                for source in sources:
                    direct.compile(source=source, variant=VARIANT.value)
                # Same thread herd as the cluster run: the comparison
                # is pure topology (router hop + 3 nodes vs 1 node),
                # not two different concurrency levels.
                single_lat, single_wrong, single_err = _herd(
                    node_urls[0], sources, truths,
                    max(SUBMITS // 4, 50), THREADS,
                )
                assert not single_err and not single_wrong
                single_p50 = statistics.median(single_lat)

                # -- cluster warm path through the router ------------------
                through = ServiceClient(router.url, timeout=120.0)
                for source in sources:  # prime each key on its owner
                    through.compile(
                        source=source, variant=VARIANT.value, retries=8
                    )
                cluster_lat, cluster_wrong, cluster_err = _herd(
                    router.url, sources, truths, SUBMITS, THREADS
                )
                assert not cluster_err, cluster_err[:3]
                assert not cluster_wrong, (
                    f"cluster served wrong results for keys "
                    f"{sorted(set(cluster_wrong))}"
                )
                assert len(cluster_lat) == SUBMITS
                cluster_p50 = statistics.median(cluster_lat)
                ratio = cluster_p50 / single_p50

                # -- kill one node mid-load: zero lost requests ------------
                kill_outcome = {"killed": None}

                def assassin():
                    time.sleep(0.15)
                    procs[2].kill()  # SIGKILL: no drain, no goodbye
                    kill_outcome["killed"] = time.time()

                killer = threading.Thread(target=assassin)
                killer.start()
                kill_lat, kill_wrong, kill_err = _herd(
                    router.url, sources, truths, KILL_SUBMITS,
                    max(THREADS // 4, 4),
                )
                killer.join()
                procs[2].wait(timeout=10)
                assert kill_outcome["killed"], "the kill never fired"
                assert not kill_err, (
                    f"lost {len(kill_err)} requests to the node kill: "
                    f"{kill_err[:3]}"
                )
                assert not kill_wrong
                assert len(kill_lat) == KILL_SUBMITS

                # The router noticed: survivors carry the key space.
                deadline = time.time() + 10.0
                alive = []
                while time.time() < deadline:
                    health = through.healthz()
                    alive = [
                        url
                        for url, node in health["nodes"].items()
                        if node["alive"]
                    ]
                    if len(alive) == NODES - 1:
                        break
                    time.sleep(0.2)
                assert len(alive) == NODES - 1, alive
                assert node_urls[2] not in alive

                router_metrics = through.metrics()["router"]
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
            # The SIGKILLed node never drains its pool, so its worker
            # processes are orphaned (sibling pipe fds keep them from
            # seeing EOF). Every process of this run carries the
            # scratch dir on its command line; reap the stragglers.
            try:
                subprocess.run(
                    ["pkill", "-9", "-f", scratch],
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                    check=False,
                )
            except FileNotFoundError:
                pass
            l2_stats = dict(l2.stats)
            l2.stop()

    payload["summary"] = {
        "single_p50_s": single_p50,
        "cluster_p50_s": cluster_p50,
        "cluster_over_single": ratio,
        "cluster_p90_s": sorted(cluster_lat)[
            int(len(cluster_lat) * 0.9)
        ],
        "kill_submits": KILL_SUBMITS,
        "kill_lost": len(kill_err),
        "kill_p50_s": statistics.median(kill_lat),
        "router_retries": router_metrics["retries"],
        "l2_gets": l2_stats["gets"],
        "l2_puts": l2_stats["puts"],
    }

    if not SMOKE:
        assert ratio <= 2.0, (
            f"cluster warm p50 {cluster_p50 * 1e3:.2f}ms exceeds 2x the "
            f"single-node warm p50 {single_p50 * 1e3:.2f}ms "
            f"({ratio:.2f}x)"
        )

    write_bench_json(
        results_dir / "BENCH_service_cluster.json", payload
    )
    summary = payload["summary"]
    body = (
        f"topology: {NODES} serve processes x 2 workers, shared L2 "
        f"store, consistent-hash router\n"
        f"load: {SUBMITS} submits over {KEYS} keys from {THREADS} "
        f"threads (warm path)\n\n"
        f"single-node warm p50: {single_p50 * 1e3:8.2f} ms\n"
        f"cluster warm p50:     {cluster_p50 * 1e3:8.2f} ms "
        f"({ratio:.2f}x single)\n"
        f"cluster warm p90:     "
        f"{summary['cluster_p90_s'] * 1e3:8.2f} ms\n\n"
        f"node kill: {KILL_SUBMITS} submits while SIGKILLing 1 of "
        f"{NODES} nodes -> {len(kill_err)} lost, "
        f"p50 {summary['kill_p50_s'] * 1e3:.2f} ms, "
        f"{summary['router_retries']} router retries\n"
        f"L2 traffic: {l2_stats['gets']} gets, {l2_stats['puts']} puts"
    )
    write_result(
        results_dir / "service_cluster.txt",
        "Cluster latency: 3-node repro serve behind the router",
        body,
    )
