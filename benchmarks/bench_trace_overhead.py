"""Disabled-tracer overhead: ``repro.trace`` must be free when off.

Every hook the tracer threads through the pipeline is either a
``TRACE.span(...)`` context (cold, per-phase/per-block) or an
``if TRACE.enabled:`` guard (hot, per-decision). A direct
enabled-vs-disabled timing shows the *enabled* cost; the disabled cost
is too small to measure that way — it drowns in compile-time noise. So
this harness bounds it analytically, and conservatively:

1. compile the whole suite with tracing ON and count the hooks that
   fired (every trace record = one hook execution, and span records
   also cover their paired guard);
2. microbenchmark the *most expensive* disabled hook form — a full
   ``TRACE.event(...)`` call with kwargs, costlier than the bare
   attribute check most hot sites use — and charge every hook that
   price;
3. divide by the measured disabled compile time.

The resulting estimate overstates the true disabled overhead and must
still land under 2%.
"""

from __future__ import annotations

import os
import time

from conftest import SUITE_N, write_result

from repro import Variant, compile_program
from repro.bench import ALL_KERNELS, intel_dunnington
from repro.bench.record import write_bench_json
from repro.trace import TRACE, validate_records

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPEATS = 2 if SMOKE else 5
KERNELS = ALL_KERNELS[:4] if SMOKE else ALL_KERNELS
THRESHOLD = 0.02


def _compile_all(programs, machine) -> float:
    """Best-of-``REPEATS`` total compile time for the suite."""
    samples = []
    for _ in range(REPEATS):
        started = time.perf_counter()
        for program in programs:
            compile_program(program, Variant.GLOBAL, machine)
        samples.append(time.perf_counter() - started)
    return min(samples)


def test_disabled_tracing_overhead(results_dir):
    machine = intel_dunnington()
    programs = [kernel.build(SUITE_N) for kernel in KERNELS]

    TRACE.disable()
    TRACE.reset()
    disabled_seconds = _compile_all(programs, machine)

    # Hook census + schema sanity on a fully-traced suite compile.
    TRACE.reset()
    TRACE.enable(bench="trace_overhead")
    try:
        enabled_seconds = _compile_all(programs, machine)
        records = TRACE.records()
    finally:
        TRACE.disable()
        TRACE.reset()
    assert validate_records(records) == []
    # Records accumulate across repeats; hooks per compile sweep is the
    # per-repeat share. Each span record covers its guard too, so this
    # counts every instrumentation site that executed.
    hooks_per_sweep = (len(records) - 1) / REPEATS

    # Price of one *disabled* hook, taking the expensive form (a real
    # event call that builds a kwargs dict before the enabled check).
    loops = 20_000 if SMOKE else 200_000
    started = time.perf_counter()
    for _ in range(loops):
        TRACE.event("grouping.round", round=0, units=0, decided=0,
                    leftovers=0)
    per_hook_seconds = (time.perf_counter() - started) / loops

    estimated = hooks_per_sweep * per_hook_seconds / disabled_seconds
    payload = {
        "kernels": len(KERNELS),
        "n": SUITE_N,
        "repeats": REPEATS,
        "disabled_compile_seconds": round(disabled_seconds, 6),
        "enabled_compile_seconds": round(enabled_seconds, 6),
        "enabled_over_disabled": round(
            enabled_seconds / disabled_seconds, 4
        ),
        "hook_executions_per_sweep": int(hooks_per_sweep),
        "per_hook_disabled_seconds": per_hook_seconds,
        "estimated_disabled_overhead_fraction": round(estimated, 6),
        "threshold_fraction": THRESHOLD,
    }
    write_bench_json(results_dir / "BENCH_trace_overhead.json", payload)
    write_result(
        results_dir / "trace_overhead.txt",
        "Disabled-tracer compile-time overhead (conservative bound)",
        "\n".join(f"{key}: {value}" for key, value in payload.items()),
    )

    assert estimated < THRESHOLD, (
        f"disabled tracing costs an estimated {estimated:.2%} of compile "
        f"time (bound {THRESHOLD:.0%}); hooks={hooks_per_sweep:.0f}, "
        f"per-hook {per_hook_seconds * 1e9:.0f} ns"
    )
