"""Figure 20: Global and Global+Layout on the AMD Phenom II machine.

Paper: AMD averages 10.8% (Global) and 14.1% (Global+Layout), slightly
below the Intel averages (12% / 14.9%), attributed to the AMD part's
higher packing/unpacking costs. Shape assertions: the same orderings
hold on AMD, and the AMD averages sit at or below the Intel ones.
"""

from __future__ import annotations

from conftest import SUITE_N, write_result

from repro import Variant
from repro.bench import amd_phenom_ii, ascii_table, percent, run_kernel
from repro.bench.kernels import KERNELS


def _avg(results, variant):
    return sum(r.time_reduction(variant) for r in results.values()) / len(
        results
    )


def test_fig20_amd_reductions(benchmark, amd_suite, intel_suite, results_dir):
    machine = amd_phenom_ii()
    benchmark(
        run_kernel,
        KERNELS["sp"],
        machine,
        (Variant.SCALAR, Variant.GLOBAL, Variant.GLOBAL_LAYOUT),
        n=SUITE_N,
    )

    rows = [
        (
            r.kernel.name,
            percent(r.time_reduction(Variant.GLOBAL)),
            percent(r.time_reduction(Variant.GLOBAL_LAYOUT)),
        )
        for r in sorted(
            amd_suite.values(),
            key=lambda r: r.time_reduction(Variant.GLOBAL),
        )
    ]
    amd_g = _avg(amd_suite, Variant.GLOBAL)
    amd_gl = _avg(amd_suite, Variant.GLOBAL_LAYOUT)
    intel_g = _avg(intel_suite, Variant.GLOBAL)
    intel_gl = _avg(intel_suite, Variant.GLOBAL_LAYOUT)
    body = ascii_table(("benchmark", "Global", "Global+Layout"), rows)
    body += (
        f"\n\nAMD averages: Global {percent(amd_g)}, "
        f"Global+Layout {percent(amd_gl)}"
        f"\nIntel averages: Global {percent(intel_g)}, "
        f"Global+Layout {percent(intel_gl)}"
        "\n(paper: AMD 10.8%/14.1% vs Intel 12%/14.9% — AMD slightly "
        "lower, driven by higher pack/unpack costs)"
    )
    write_result(
        results_dir / "fig20_amd.txt",
        "Figure 20: execution time reduction over scalar (AMD)",
        body,
    )

    for result in amd_suite.values():
        assert result.semantics_preserved()
        assert (
            result.time_reduction(Variant.GLOBAL_LAYOUT)
            >= result.time_reduction(Variant.GLOBAL) - 1e-6
        )
    assert amd_g > 0 and amd_gl > amd_g
    # The AMD machine's dearer packing shrinks the savings vs Intel.
    assert amd_g <= intel_g + 1e-9
    assert amd_gl <= intel_gl + 1e-9
