"""Shared fixtures for the per-figure benchmark harnesses.

Suite runs are memoized per (machine, size, datapath) so the figure
harnesses — which all consume the same kernel sweep — only pay for
each simulation once per pytest session. Every harness writes its
rendered table to ``benchmarks/results/`` so the numbers that back
EXPERIMENTS.md are regenerable artifacts.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Optional, Tuple

import pytest

from repro import CompilerOptions, Variant
from repro.bench import (
    ALL_KERNELS,
    KernelResult,
    amd_phenom_ii,
    intel_dunnington,
    run_suite,
)

#: Iterations per kernel in the harnesses — big enough for stable cache
#: behaviour, small enough that the full sweep stays interactive.
SUITE_N = 64

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_MACHINES = {
    "intel": intel_dunnington,
    "amd": amd_phenom_ii,
}

_cache: Dict[Tuple, Dict[str, KernelResult]] = {}


def suite_results(
    machine_name: str = "intel",
    n: int = SUITE_N,
    datapath_bits: Optional[int] = None,
    variants=None,
) -> Dict[str, KernelResult]:
    from repro.bench.suite import DEFAULT_VARIANTS

    variants = tuple(variants) if variants else DEFAULT_VARIANTS
    key = (machine_name, n, datapath_bits, variants)
    if key not in _cache:
        machine = _MACHINES[machine_name]()
        options = CompilerOptions(datapath_bits=datapath_bits)
        _cache[key] = run_suite(
            machine, variants=variants, options=options, n=n
        )
    return _cache[key]


@pytest.fixture(scope="session")
def intel_suite():
    return suite_results("intel")


@pytest.fixture(scope="session")
def amd_suite():
    return suite_results("amd")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(path: pathlib.Path, title: str, body: str) -> None:
    path.write_text(f"{title}\n{'=' * len(title)}\n\n{body}\n")
