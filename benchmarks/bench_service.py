"""Request latency: warm ``repro serve`` vs fresh per-request CLI.

The service exists to amortize process startup, imports, and the
deliberately expensive global optimization behind a long-lived process
with warm workers, an in-worker memo, and the shared artifact store.
This harness measures that amortization directly:

* **cold** — what scripting the CLI costs: one fresh
  ``python -m repro compile <file>`` subprocess per request (interpreter
  boot + imports + compile, every single time);
* **warm** — the same requests against an embedded
  :class:`~repro.service.server.ServiceThread` over real HTTP, after one
  priming request per job so the measured requests exercise the warm
  path (memo/store hit + IPC), exactly what a repeat client sees.

Asserts bit-for-bit result equality between both paths on every kernel,
and — the acceptance gate — a **>= 5x median latency reduction**
warm-vs-cold. Results land in ``results/service.txt`` and
machine-readable ``results/BENCH_service.json``. Set
``REPRO_BENCH_SMOKE=1`` (CI) for a reduced grid that still enforces
equality but skips the ratio gate.
"""

from __future__ import annotations

import os
import statistics
import subprocess
import sys
import tempfile
import time

from conftest import write_result

from repro import Variant, compile_program
from repro.bench import KERNELS, ascii_table
from repro.bench.record import write_bench_json
from repro.ir.printer import format_program
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread
from repro.vm import MACHINES

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

N = 32
KERNEL_NAMES = ("milc", "cg") if SMOKE else ("milc", "lbm", "namd", "cg")
VARIANT = Variant.GLOBAL
REQUESTS = 3 if SMOKE else 7


def _cli_latency(source_path: str) -> float:
    """One cold request: a fresh interpreter compiling one file."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [_SRC_DIR, env.get("PYTHONPATH")])
    )
    started = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "compile", source_path,
            "--variant", VARIANT.value, "--quiet",
        ],
        env=env,
        capture_output=True,
    )
    elapsed = time.perf_counter() - started
    assert proc.returncode == 0, proc.stderr.decode()
    return elapsed


_SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def test_service_latency(results_dir):
    payload = {
        "smoke": SMOKE,
        "n": N,
        "requests_per_kernel": REQUESTS,
        "variant": VARIANT.value,
        "kernels": [],
        "summary": {},
    }

    machine = MACHINES["intel"]()
    with tempfile.TemporaryDirectory() as scratch:
        with ServiceThread(
            shards=2, cache_dir=os.path.join(scratch, "store")
        ) as thread:
            client = ServiceClient(thread.url, timeout=120.0)
            warm_all, cold_all = [], []
            for name in KERNEL_NAMES:
                program = KERNELS[name].build(N)
                source = format_program(program)
                source_path = os.path.join(scratch, f"{name}.repro")
                with open(source_path, "w") as handle:
                    handle.write(source)

                local = compile_program(program, VARIANT, machine)

                # Prime: the first request compiles and fills the
                # memo/store; everything measured after is the warm path.
                primed = client.compile(source=source, variant=VARIANT.value)
                assert primed.result == local

                warm = []
                for _ in range(REQUESTS):
                    started = time.perf_counter()
                    outcome = client.compile(
                        source=source, variant=VARIANT.value
                    )
                    warm.append(time.perf_counter() - started)
                    assert outcome.cached
                    assert outcome.result == local

                cold = [_cli_latency(source_path) for _ in range(REQUESTS)]

                warm_all.extend(warm)
                cold_all.extend(cold)
                payload["kernels"].append(
                    {
                        "kernel": name,
                        "warm_median_s": statistics.median(warm),
                        "cold_median_s": statistics.median(cold),
                        "speedup": statistics.median(cold)
                        / statistics.median(warm),
                    }
                )

            # The CLI path really did the same compile: cross-check one
            # kernel's artifact through the store API the CLI shares.
            metrics = client.metrics()["service"]
            assert metrics["store"]["entries"] >= len(KERNEL_NAMES)

    warm_median = statistics.median(warm_all)
    cold_median = statistics.median(cold_all)
    speedup = cold_median / warm_median
    payload["summary"] = {
        "warm_median_s": warm_median,
        "cold_median_s": cold_median,
        "median_speedup": speedup,
    }

    if not SMOKE:
        assert speedup >= 5.0, (
            f"expected >=5x median latency reduction from the warm "
            f"service, got {speedup:.2f}x "
            f"(cold {cold_median * 1e3:.1f}ms, warm {warm_median * 1e3:.1f}ms)"
        )

    # -- connection reuse: the warm path's remaining TCP tax -------------------
    # A warm hit costs the server well under a millisecond, so connect
    # + slow-start is a visible fraction of each request. Measure the
    # same cached request through one keep-alive connection vs a fresh
    # connection per request (the pre-reuse client behavior).
    with tempfile.TemporaryDirectory() as scratch:
        with ServiceThread(
            shards=2, cache_dir=os.path.join(scratch, "store")
        ) as thread:
            source = format_program(KERNELS[KERNEL_NAMES[0]].build(N))
            reuse = ServiceClient(thread.url, timeout=120.0)
            fresh = ServiceClient(
                thread.url, timeout=120.0, keep_alive=False
            )
            reuse.compile(source=source, variant=VARIANT.value)  # prime

            def _measure(client):
                samples = []
                for _ in range(max(REQUESTS * 3, 9)):
                    started = time.perf_counter()
                    outcome = client.compile(
                        source=source, variant=VARIANT.value
                    )
                    samples.append(time.perf_counter() - started)
                    assert outcome.cached
                return samples

            reused_median = statistics.median(_measure(reuse))
            per_request_median = statistics.median(_measure(fresh))
            assert reuse.connections_opened == 1
            payload["summary"]["keep_alive"] = {
                "reused_median_s": reused_median,
                "per_request_median_s": per_request_median,
                "saving_ms": (per_request_median - reused_median) * 1e3,
                "connections_reused_client": reuse.connections_opened,
                "connections_fresh_client": fresh.connections_opened,
            }

    write_bench_json(results_dir / "BENCH_service.json", payload)
    rows = [
        (
            entry["kernel"],
            f"{entry['cold_median_s'] * 1e3:8.1f} ms",
            f"{entry['warm_median_s'] * 1e3:8.1f} ms",
            f"{entry['speedup']:6.1f}x",
        )
        for entry in payload["kernels"]
    ]
    body = ascii_table(
        ("kernel", "cold CLI (median)", "warm serve (median)", "speedup"),
        rows,
    )
    keep_alive = payload["summary"]["keep_alive"]
    body += (
        f"\n\nmedian over all requests: cold {cold_median * 1e3:.1f} ms "
        f"-> warm {warm_median * 1e3:.1f} ms ({speedup:.1f}x)"
        f"\n{REQUESTS} request(s) per kernel at n={N}, "
        f"variant={VARIANT.value}"
        f"\n\nkeep-alive: warm hit "
        f"{keep_alive['per_request_median_s'] * 1e3:.2f} ms per fresh "
        f"connection -> {keep_alive['reused_median_s'] * 1e3:.2f} ms "
        f"reused ({keep_alive['saving_ms']:.2f} ms saved/request)"
    )
    write_result(
        results_dir / "service.txt",
        "Request latency: warm repro serve vs fresh per-request CLI",
        body,
    )
