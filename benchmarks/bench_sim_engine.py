"""Simulate-phase speed of the batched and compiled execution engines.

The reference interpreter dispatches every instruction of every loop
iteration through Python, so simulation wall-time — not compilation —
dominates the figure sweeps as the iteration count grows. Two engines
attack that, both under an exactness contract (identical
``ExecutionReport`` and ``Memory`` on every run, per-unit fallback
where their model does not apply):

* **batched** decodes each affine loop body once into closed-form
  NumPy address/value streams and replays the cache over the
  precomputed chronological line stream.
* **compiled** goes one step further: it emits a specialized NumPy
  *function* per affine loop (after a superoptimizing peephole pass),
  compiles it once, and replays cache lines through the bulk
  set-associative replay — so a warm run does no per-loop decoding or
  Python-level dispatch at all.

This harness does two things:

1. **Grid**: sweeps the fig16 kernel set across every compiler variant
   on both machine models at n=256, times all three engines on the
   same compiled plan, and asserts report + memory equality on every
   measured combination (AMD's fractional op costs are the stress test
   for order-independent cycle accounting).
2. **Gate**: times the affine kernel set at n=1024 — the regime the
   compiled engine was built for — with the ``Memory`` prebuilt
   outside the timed region (identical work for every engine) and
   kernels prewarmed, and asserts a >= 50x aggregate compiled-vs-
   reference simulate-phase speedup (measured ~55-60x) alongside the
   batched engine's >= 5x grid gate.

Results land in ``results/sim_engine.txt`` and machine-readable
``results/BENCH_sim_engine.json``. Set ``REPRO_BENCH_SMOKE=1`` (CI) for
a reduced grid that still enforces the equality contract and checks
that both fast paths are actually taken (the speedup gates stay
full-run only: CI machines are too noisy to pin wall-clock ratios).
"""

from __future__ import annotations

import math
import os
import time

from conftest import write_result

from repro import Variant, compile_program
from repro.bench import (
    ALL_KERNELS,
    KERNELS,
    amd_phenom_ii,
    ascii_table,
    intel_dunnington,
)
from repro.bench.record import write_bench_json
from repro.bench.suite import DEFAULT_VARIANTS
from repro.perf import PERF
from repro.vm import Simulator
from repro.vm.simulator import Memory

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

ENGINES = ("reference", "batched", "compiled")

N = 64 if SMOKE else 256
SUITE_KERNELS = (
    [KERNELS[n] for n in ("milc", "lbm", "namd", "cg")]
    if SMOKE
    else ALL_KERNELS
)
VARIANTS = (
    (Variant.SCALAR, Variant.GLOBAL, Variant.GLOBAL_LAYOUT)
    if SMOKE
    else DEFAULT_VARIANTS
)
MACHINES = (("intel", intel_dunnington), ("amd", amd_phenom_ii))
REPEATS = 1 if SMOKE else 3

#: The n=1024 gate population: the affine SPEC kernels the compiled
#: engine covers without a single fallback (pinned by
#: ``tests/test_compiled_engine.py::test_full_kernel_set_has_no_fallbacks``).
GATE_KERNELS = ("cactusADM", "soplex", "lbm", "milc")
GATE_N = 256 if SMOKE else 1024
GATE_SPEEDUP = 50.0
GATE_REPEATS = {"reference": 1, "batched": 8, "compiled": 8}
GATE_ROUNDS = 1 if SMOKE else 5


def _timed_run(machine, engine, plan):
    """Best-of-``REPEATS`` simulate wall time plus the results of the
    final run (simulation is deterministic; the minimum sheds scheduler
    noise)."""
    best = math.inf
    for _ in range(REPEATS):
        simulator = Simulator(machine, engine=engine)
        started = time.perf_counter()
        report, memory = simulator.run(plan)
        best = min(best, time.perf_counter() - started)
    return best, report, memory


def _timed_gate_run(machine, engine, plan):
    """Best-of-``GATE_ROUNDS`` of a ``GATE_REPEATS[engine]``-run
    average, with every ``Memory`` prebuilt outside the timed region —
    memory construction is identical for all engines and would
    otherwise dilute exactly the quantity the gate measures. Kernels
    are prewarmed by the caller."""
    reps = GATE_REPEATS[engine]
    simulator = Simulator(machine, engine=engine)
    best = math.inf
    for _ in range(GATE_ROUNDS):
        memories = [Memory(plan, seed=0) for _ in range(reps)]
        started = time.perf_counter()
        for memory in memories:
            report, _ = simulator.run(plan, memory=memory, seed=0)
        best = min(best, (time.perf_counter() - started) / reps)
    return best, report


def test_sim_engine(results_dir):
    payload = {
        "smoke": SMOKE,
        "n": N,
        "repeats": REPEATS,
        "runs": [],
        "gate": {"n": GATE_N, "kernels": list(GATE_KERNELS), "runs": []},
        "summary": {},
    }

    totals = {engine: 0.0 for engine in ENGINES}
    per_machine = {
        name: {engine: 0.0 for engine in ENGINES} for name, _ in MACHINES
    }

    PERF.reset()
    PERF.enable()
    for machine_name, factory in MACHINES:
        machine = factory()
        for kernel in SUITE_KERNELS:
            program = kernel.build(N)
            for variant in VARIANTS:
                compiled = compile_program(program, variant, machine)
                seconds, reports, memories = {}, {}, {}
                for engine in ENGINES:
                    seconds[engine], reports[engine], memories[engine] = (
                        _timed_run(compiled.machine, engine, compiled.plan)
                    )
                ref_report, ref_mem = reports["reference"], memories["reference"]
                for engine in ("batched", "compiled"):
                    # The contract: not approximately equal — equal.
                    assert reports[engine] == ref_report, (
                        f"reports diverged: {kernel.name}/{variant.value}/"
                        f"{machine_name}/{engine}"
                    )
                    assert reports[engine].cycles == ref_report.cycles
                    assert memories[engine].state_equal(ref_mem), (
                        f"memory diverged: {kernel.name}/{variant.value}/"
                        f"{machine_name}/{engine}"
                    )
                for engine in ENGINES:
                    totals[engine] += seconds[engine]
                    per_machine[machine_name][engine] += seconds[engine]
                payload["runs"].append(
                    {
                        "kernel": kernel.name,
                        "variant": variant.value,
                        "machine": machine_name,
                        "reference_seconds": seconds["reference"],
                        "batched_seconds": seconds["batched"],
                        "compiled_seconds": seconds["compiled"],
                        "speedup": seconds["reference"] / seconds["batched"],
                        "compiled_speedup": (
                            seconds["reference"] / seconds["compiled"]
                        ),
                        "cycles": ref_report.cycles,
                    }
                )

    # -- the n=1024 gate series --------------------------------------------
    gate_totals = {engine: 0.0 for engine in ENGINES}
    gate_machine = intel_dunnington()
    for name in GATE_KERNELS:
        program = KERNELS[name].build(GATE_N)
        compiled = compile_program(program, Variant.GLOBAL, gate_machine)
        # Prewarm: kernel emission (compiled) and decode memos happen
        # here, off the clock — warm workers never pay them either.
        for engine in ENGINES:
            Simulator(gate_machine, engine=engine).run(compiled.plan)
        seconds, reports = {}, {}
        for engine in ENGINES:
            seconds[engine], reports[engine] = _timed_gate_run(
                gate_machine, engine, compiled.plan
            )
        assert reports["batched"] == reports["reference"]
        assert reports["compiled"] == reports["reference"]
        for engine in ENGINES:
            gate_totals[engine] += seconds[engine]
        payload["gate"]["runs"].append(
            {
                "kernel": name,
                "reference_seconds": seconds["reference"],
                "batched_seconds": seconds["batched"],
                "compiled_seconds": seconds["compiled"],
                "compiled_speedup": (
                    seconds["reference"] / seconds["compiled"]
                ),
            }
        )
    PERF.disable()

    counters = dict(PERF.counters)
    PERF.reset()

    batched_loops = counters.get("simulate.batched_loops", 0)
    fallbacks = counters.get("simulate.batched_fallbacks", 0)
    compiled_loops = counters.get("simulate.compiled_loops", 0)
    compiled_fallbacks = counters.get("simulate.compiled_fallbacks", 0)

    aggregate = totals["reference"] / totals["batched"]
    gate_aggregate = gate_totals["reference"] / gate_totals["compiled"]
    payload["summary"] = {
        "aggregate_speedup": aggregate,
        "compiled_aggregate_speedup": (
            totals["reference"] / totals["compiled"]
        ),
        "gate_compiled_speedup": gate_aggregate,
        "per_machine_speedup": {
            name: t["reference"] / t["batched"]
            for name, t in per_machine.items()
        },
        "batched_loops": batched_loops,
        "batched_fallbacks": fallbacks,
        "compiled_loops": compiled_loops,
        "compiled_fallbacks": compiled_fallbacks,
        "kernel_emissions": counters.get("compiled.emissions", 0),
        "reference_seconds": totals["reference"],
        "batched_seconds": totals["batched"],
        "compiled_seconds": totals["compiled"],
    }

    # The fast paths must actually run: a silent always-fallback engine
    # would pass every equality assertion while measuring nothing.
    assert batched_loops > 0
    assert compiled_loops > 0
    # The gate population must stay fallback-free, or the headline
    # number silently measures the batched engine instead.
    assert compiled_fallbacks == 0, (
        f"gate kernels fell back {compiled_fallbacks} time(s)"
    )
    if not SMOKE:
        # The batched engine's claim at the figure-sweep count.
        assert aggregate >= 5.0, (
            f"expected >=5x aggregate simulate-phase speedup at n={N}, "
            f"got {aggregate:.2f}x"
        )
        # The compiled engine's headline claim at n=1024.
        assert gate_aggregate >= GATE_SPEEDUP, (
            f"expected >={GATE_SPEEDUP:.0f}x aggregate compiled speedup "
            f"at n={GATE_N}, got {gate_aggregate:.2f}x"
        )

    # -- artifacts ---------------------------------------------------------
    write_bench_json(results_dir / "BENCH_sim_engine.json", payload)

    table_rows = [
        (
            r["kernel"],
            r["variant"],
            r["machine"],
            f"{r['reference_seconds'] * 1e3:8.1f} ms",
            f"{r['batched_seconds'] * 1e3:8.1f} ms",
            f"{r['compiled_seconds'] * 1e3:8.1f} ms",
            f"{r['speedup']:5.2f}x",
            f"{r['compiled_speedup']:5.2f}x",
        )
        for r in payload["runs"]
    ]
    body = ascii_table(
        (
            "kernel",
            "variant",
            "machine",
            "reference",
            "batched",
            "compiled",
            "bat x",
            "comp x",
        ),
        table_rows,
    )
    gate_rows = [
        (
            r["kernel"],
            f"{r['reference_seconds'] * 1e3:8.2f} ms",
            f"{r['batched_seconds'] * 1e3:8.2f} ms",
            f"{r['compiled_seconds'] * 1e3:8.2f} ms",
            f"{r['compiled_speedup']:5.1f}x",
        )
        for r in payload["gate"]["runs"]
    ]
    body += (
        f"\n\naggregate at n={N}: {aggregate:.2f}x batched, "
        f"{totals['reference'] / totals['compiled']:.2f}x compiled "
        f"({totals['reference']:.2f}s reference)"
        f"\nbatched loops: {batched_loops}, fallbacks: {fallbacks}; "
        f"compiled loops: {compiled_loops}, fallbacks: "
        f"{compiled_fallbacks}"
        f"\nper-machine batched: "
        + ", ".join(
            f"{name} {t['reference'] / t['batched']:.2f}x"
            for name, t in per_machine.items()
        )
        + f"\n\ncompiled-engine gate (n={GATE_N}, GLOBAL, intel, memory "
        "prebuilt, kernels warm):\n"
        + ascii_table(
            ("kernel", "reference", "batched", "compiled", "speedup"),
            gate_rows,
        )
        + f"\n\ngate aggregate: {gate_aggregate:.1f}x compiled vs "
        f"reference (gate: >={GATE_SPEEDUP:.0f}x)"
    )
    write_result(
        results_dir / "sim_engine.txt",
        "Simulate-phase speed: batched + compiled vs reference engine",
        body,
    )
