"""Simulate-phase speed of the batched execution engine.

The reference interpreter dispatches every instruction of every loop
iteration through Python, so simulation wall-time — not compilation —
dominates the figure sweeps as the iteration count grows. The batched
engine decodes each affine loop body once into closed-form NumPy
address/value streams, replays the cache over the precomputed
chronological line stream, and aggregates cycle charges per slot x
iteration count. Its contract is exactness: identical
``ExecutionReport`` (cycles, counts, cache and per-array stats,
provenance) and identical final ``Memory`` on every run, falling back
to the interpreter per-unit where the closed form does not apply.

This harness sweeps the fig16 kernel set across every compiler variant
on both machine models (AMD's fractional op costs are the stress test
for order-independent cycle accounting), times the simulate phase of
both engines on the same compiled plan, and asserts

* report + memory equality on every measured combination, and
* a >= 5x aggregate simulate-phase speedup at n=256 (measured ~6-7x;
  the paper-figure regime the engine was built for).

Results land in ``results/sim_engine.txt`` and machine-readable
``results/BENCH_sim_engine.json``. Set ``REPRO_BENCH_SMOKE=1`` (CI) for
a reduced grid that still enforces the equality contract and checks
that the batched path is actually taken.
"""

from __future__ import annotations

import json
import math
import os
import time

from conftest import write_result

from repro import Variant, compile_program
from repro.bench import (
    ALL_KERNELS,
    KERNELS,
    amd_phenom_ii,
    ascii_table,
    intel_dunnington,
)
from repro.bench.suite import DEFAULT_VARIANTS
from repro.perf import PERF
from repro.vm import Simulator

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

N = 64 if SMOKE else 256
SUITE_KERNELS = (
    [KERNELS[n] for n in ("milc", "lbm", "namd", "cg")]
    if SMOKE
    else ALL_KERNELS
)
VARIANTS = (
    (Variant.SCALAR, Variant.GLOBAL, Variant.GLOBAL_LAYOUT)
    if SMOKE
    else DEFAULT_VARIANTS
)
MACHINES = (("intel", intel_dunnington), ("amd", amd_phenom_ii))
REPEATS = 1 if SMOKE else 3


def _timed_run(machine, engine, plan):
    """Best-of-``REPEATS`` simulate wall time plus the results of the
    final run (simulation is deterministic; the minimum sheds scheduler
    noise)."""
    best = math.inf
    for _ in range(REPEATS):
        simulator = Simulator(machine, engine=engine)
        started = time.perf_counter()
        report, memory = simulator.run(plan)
        best = min(best, time.perf_counter() - started)
    return best, report, memory


def test_sim_engine(results_dir):
    payload = {
        "smoke": SMOKE,
        "n": N,
        "repeats": REPEATS,
        "runs": [],
        "summary": {},
    }

    totals = {"reference": 0.0, "batched": 0.0}
    per_machine = {name: {"reference": 0.0, "batched": 0.0} for name, _ in MACHINES}

    PERF.reset()
    PERF.enable()
    for machine_name, factory in MACHINES:
        machine = factory()
        for kernel in SUITE_KERNELS:
            program = kernel.build(N)
            for variant in VARIANTS:
                compiled = compile_program(program, variant, machine)
                ref_s, ref_report, ref_mem = _timed_run(
                    compiled.machine, "reference", compiled.plan
                )
                bat_s, bat_report, bat_mem = _timed_run(
                    compiled.machine, "batched", compiled.plan
                )
                # The contract: not approximately equal — equal.
                assert bat_report == ref_report, (
                    f"reports diverged: {kernel.name}/{variant.value}/"
                    f"{machine_name}"
                )
                assert bat_report.cycles == ref_report.cycles
                assert bat_mem.state_equal(ref_mem), (
                    f"memory diverged: {kernel.name}/{variant.value}/"
                    f"{machine_name}"
                )
                totals["reference"] += ref_s
                totals["batched"] += bat_s
                per_machine[machine_name]["reference"] += ref_s
                per_machine[machine_name]["batched"] += bat_s
                payload["runs"].append(
                    {
                        "kernel": kernel.name,
                        "variant": variant.value,
                        "machine": machine_name,
                        "reference_seconds": ref_s,
                        "batched_seconds": bat_s,
                        "speedup": ref_s / bat_s,
                        "cycles": ref_report.cycles,
                    }
                )
    PERF.disable()

    batched_loops = PERF.counters.get("simulate.batched_loops", 0)
    fallbacks = PERF.counters.get("simulate.batched_fallbacks", 0)
    PERF.reset()

    aggregate = totals["reference"] / totals["batched"]
    payload["summary"] = {
        "aggregate_speedup": aggregate,
        "per_machine_speedup": {
            name: t["reference"] / t["batched"]
            for name, t in per_machine.items()
        },
        "batched_loops": batched_loops,
        "batched_fallbacks": fallbacks,
        "reference_seconds": totals["reference"],
        "batched_seconds": totals["batched"],
    }

    # The batched path must actually run: a silent always-fallback
    # engine would pass every equality assertion while measuring
    # nothing.
    assert batched_loops > 0
    if not SMOKE:
        # The headline claim at the figure-sweep iteration count.
        assert aggregate >= 5.0, (
            f"expected >=5x aggregate simulate-phase speedup at n={N}, "
            f"got {aggregate:.2f}x"
        )

    # -- artifacts ---------------------------------------------------------
    (results_dir / "BENCH_sim_engine.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    table_rows = [
        (
            r["kernel"],
            r["variant"],
            r["machine"],
            f"{r['reference_seconds'] * 1e3:8.1f} ms",
            f"{r['batched_seconds'] * 1e3:8.1f} ms",
            f"{r['speedup']:5.2f}x",
        )
        for r in payload["runs"]
    ]
    body = ascii_table(
        ("kernel", "variant", "machine", "reference", "batched", "speedup"),
        table_rows,
    )
    body += (
        f"\n\naggregate at n={N}: {aggregate:.2f}x simulate-phase speedup "
        f"({totals['reference']:.2f}s -> {totals['batched']:.2f}s)"
        f"\nbatched loops: {batched_loops}, fallbacks: {fallbacks}"
        f"\nper-machine: "
        + ", ".join(
            f"{name} {t['reference'] / t['batched']:.2f}x"
            for name, t in per_machine.items()
        )
    )
    write_result(
        results_dir / "sim_engine.txt",
        "Simulate-phase speed: batched vs reference execution engine",
        body,
    )
