"""Figure 21: execution-time reductions of Global (a) and Global+Layout
(b) over the scalar code running on the same number of cores, for the
six NAS benchmarks on the 12-core Intel machine, at 1-12 cores.

Paper shape: "both of our approaches bring consistent improvements
across different core counts. The results become slightly better when
we increase the number of cores, mostly due to the less-than-perfect
scalability of the original applications."

Assertions: the average reduction stays positive and within a stable
band at every core count, and the high-core-count average is not below
the single-core average (the slight-improvement trend).
"""

from __future__ import annotations

from conftest import write_result

from repro import Variant
from repro.bench import (
    NAS_KERNELS,
    ascii_table,
    intel_dunnington,
    percent,
    run_multicore,
)

CORE_COUNTS = (1, 2, 4, 6, 8, 10, 12)
N = 1536  # total iterations, divided across cores


def _sweep(variant):
    machine = intel_dunnington()
    table = {}
    for kernel in NAS_KERNELS:
        table[kernel.name] = [
            run_multicore(kernel, machine, variant, cores, n=N)
            for cores in CORE_COUNTS
        ]
    return table


def _render(table):
    rows = []
    for name, points in table.items():
        rows.append(
            tuple([name] + [percent(p.reduction) for p in points])
        )
    averages = [
        sum(points[i].reduction for points in table.values()) / len(table)
        for i in range(len(CORE_COUNTS))
    ]
    rows.append(tuple(["average"] + [percent(a) for a in averages]))
    header = ("benchmark",) + tuple(f"{c} cores" for c in CORE_COUNTS)
    return ascii_table(header, rows), averages


def test_fig21a_global_multicore(benchmark, results_dir):
    table = benchmark.pedantic(
        _sweep, args=(Variant.GLOBAL,), rounds=1, iterations=1
    )
    body, averages = _render(table)
    body += "\n\n(paper: consistent improvements, slightly rising with cores)"
    write_result(
        results_dir / "fig21a_multicore_global.txt",
        "Figure 21(a): Global vs scalar at matched core counts (NAS)",
        body,
    )
    assert all(a > 0 for a in averages)
    assert averages[-1] >= averages[0] - 0.02
    assert max(averages) - min(averages) < 0.15, "band should be stable"


def test_fig21b_layout_multicore(benchmark, results_dir):
    table = benchmark.pedantic(
        _sweep, args=(Variant.GLOBAL_LAYOUT,), rounds=1, iterations=1
    )
    body, averages = _render(table)
    body += "\n\n(paper: consistent improvements, slightly rising with cores)"
    write_result(
        results_dir / "fig21b_multicore_layout.txt",
        "Figure 21(b): Global+Layout vs scalar at matched core counts (NAS)",
        body,
    )
    assert all(a > 0 for a in averages)
    assert averages[-1] >= averages[0] - 0.02
