"""Figure 16: execution-time reductions of Native, SLP and Global over
the scalar code on the Intel machine, per benchmark, ordered (as in the
paper) from the benchmark Global improves least to the one it improves
most.

Shape assertions (what the paper's figure shows):
* Global >= SLP on every benchmark, with equality on some;
* SLP >= Native, with equality on some (the paper: 4 applications);
* Global == SLP on a small number of benchmarks (the paper: 3).
"""

from __future__ import annotations

from conftest import SUITE_N, suite_results, write_result

from repro import Variant
from repro.bench import ascii_table, intel_dunnington, percent, run_kernel
from repro.bench.kernels import KERNELS

EPS = 1e-9


def _figure16_rows(results):
    ordered = sorted(
        results.values(), key=lambda r: r.time_reduction(Variant.GLOBAL)
    )
    rows = []
    for result in ordered:
        rows.append(
            (
                result.kernel.name,
                percent(result.time_reduction(Variant.NATIVE)),
                percent(result.time_reduction(Variant.SLP)),
                percent(result.time_reduction(Variant.GLOBAL)),
            )
        )
    return rows


def test_fig16_execution_time_reductions(benchmark, intel_suite, results_dir):
    # The benchmarked unit: one representative kernel through the full
    # compile+simulate pipeline for the three variants of this figure.
    machine = intel_dunnington()
    benchmark(
        run_kernel,
        KERNELS["namd"],
        machine,
        (Variant.SCALAR, Variant.NATIVE, Variant.SLP, Variant.GLOBAL),
        n=SUITE_N,
    )

    rows = _figure16_rows(intel_suite)
    body = ascii_table(("benchmark", "Native", "SLP", "Global"), rows)
    avg = {
        v: sum(r.time_reduction(v) for r in intel_suite.values())
        / len(intel_suite)
        for v in (Variant.NATIVE, Variant.SLP, Variant.GLOBAL)
    }
    body += (
        f"\n\naverages: Native {percent(avg[Variant.NATIVE])}, "
        f"SLP {percent(avg[Variant.SLP])}, "
        f"Global {percent(avg[Variant.GLOBAL])}"
        "\n(paper, Intel: Global average 12%; ordering Native <= SLP <= "
        "Global with 3 Global==SLP ties and 4 SLP==Native ties)"
    )
    write_result(
        results_dir / "fig16_exec_time_intel.txt",
        "Figure 16: execution time reduction over scalar (Intel)",
        body,
    )

    for result in intel_suite.values():
        native = result.time_reduction(Variant.NATIVE)
        slp = result.time_reduction(Variant.SLP)
        glob = result.time_reduction(Variant.GLOBAL)
        assert glob >= slp - EPS, f"{result.kernel.name}: Global < SLP"
        assert slp >= native - EPS, f"{result.kernel.name}: SLP < Native"
        assert native >= -EPS, f"{result.kernel.name}: Native hurt"

    ties_global_slp = sum(
        1
        for r in intel_suite.values()
        if abs(r.time_reduction(Variant.GLOBAL) - r.time_reduction(Variant.SLP))
        < 1e-6
    )
    ties_slp_native = sum(
        1
        for r in intel_suite.values()
        if abs(r.time_reduction(Variant.SLP) - r.time_reduction(Variant.NATIVE))
        < 1e-6
    )
    # Both phenomena the paper reports must occur, and Global must win
    # strictly somewhere.
    assert 1 <= ties_global_slp < len(intel_suite)
    assert 1 <= ties_slp_native < len(intel_suite)
    assert avg[Variant.GLOBAL] > avg[Variant.SLP] > avg[Variant.NATIVE] > 0


def test_fig16_semantics_preserved(benchmark, intel_suite):
    checked = benchmark(
        lambda: [r.semantics_preserved() for r in intel_suite.values()]
    )
    assert all(checked)
