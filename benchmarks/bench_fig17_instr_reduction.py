"""Figure 17: why Global beats SLP — reductions in (a) dynamic
instructions excluding packing/unpacking and (b) packing/unpacking
operations, Global relative to SLP, per benchmark.

Paper averages: 14.5% (dynamic instructions) and 43.5% (pack/unpack).

Shape assertions: wherever Global's grouping diverges from the greedy
baseline's it removes packing/unpacking work (the divergence benchmarks
show pack/unpack reductions of ~25%), and Global never *increases*
either metric versus SLP beyond noise. Magnitude deviation (documented
in EXPERIMENTS.md): our baseline shares the reuse-tracking code
generator with Global, so its packing overhead is already far below the
paper's SLP implementation and the average reduction is smaller than
43.5%.
"""

from __future__ import annotations

from conftest import SUITE_N, suite_results, write_result

from repro import Variant
from repro.bench import ascii_table, intel_dunnington, percent, run_kernel
from repro.bench.kernels import KERNELS


def test_fig17_global_over_slp(benchmark, intel_suite, results_dir):
    machine = intel_dunnington()
    benchmark(
        run_kernel,
        KERNELS["cactusADM"],
        machine,
        (Variant.SLP, Variant.GLOBAL),
        n=SUITE_N,
    )

    rows = []
    dyn_values = []
    pack_values = []
    for result in intel_suite.values():
        slp_pack = result.runs[Variant.SLP].report.pack_unpack_ops
        dyn = result.dyn_instr_reduction_over(Variant.GLOBAL, Variant.SLP)
        pack = (
            result.pack_unpack_reduction_over(Variant.GLOBAL, Variant.SLP)
            if slp_pack
            else 0.0
        )
        dyn_values.append(dyn)
        pack_values.append(pack)
        rows.append(
            (result.kernel.name, percent(dyn), percent(pack))
        )
    avg_dyn = sum(dyn_values) / len(dyn_values)
    avg_pack = sum(pack_values) / len(pack_values)

    body = ascii_table(
        ("benchmark", "dyn instr reduction", "pack/unpack reduction"), rows
    )
    body += (
        f"\n\naverages: dynamic instructions {percent(avg_dyn)}, "
        f"pack/unpack {percent(avg_pack)}"
        "\n(paper: 14.5% and 43.5% — pack/unpack dominates)"
    )
    write_result(
        results_dir / "fig17_instr_reduction.txt",
        "Figure 17: Global-over-SLP instruction reductions",
        body,
    )

    assert avg_dyn >= 0.0
    assert avg_pack > 0.0
    # The paper's core effect: where the global grouping differs from
    # the greedy one, it removes a substantial share of the
    # packing/unpacking work (the paper: 43.5% on average across its
    # benchmarks; our divergence benchmarks show ~25% each).
    strong_pack = [p for p in pack_values if p >= 0.20]
    assert len(strong_pack) >= 2, "expected pack/unpack reductions"
    for name, dyn, pack in zip(intel_suite, dyn_values, pack_values):
        assert dyn >= -0.02, f"{name}: Global added dynamic instructions"
        assert pack >= -0.02, f"{name}: Global added pack/unpack ops"
