"""Figure 19: Global+Layout execution-time reductions over scalar on the
Intel machine, next to plain Global.

Paper shape: the data layout optimization brings *additional* benefit on
a proper subset of the benchmarks (7 of 16 — its applicability is
restricted by the read-only / intra-array / affine constraints of
Section 5 and by its own cost gate) and never makes a benchmark worse
(when it would, the phase is skipped).
"""

from __future__ import annotations

from conftest import SUITE_N, write_result

from repro import Variant
from repro.bench import ascii_table, intel_dunnington, percent, run_kernel
from repro.bench.kernels import KERNELS

EPS = 1e-9


def test_fig19_layout_additional_benefit(benchmark, intel_suite, results_dir):
    machine = intel_dunnington()
    benchmark(
        run_kernel,
        KERNELS["mg"],
        machine,
        (Variant.SCALAR, Variant.GLOBAL, Variant.GLOBAL_LAYOUT),
        n=SUITE_N,
    )

    rows = []
    helped = []
    for result in sorted(
        intel_suite.values(),
        key=lambda r: r.time_reduction(Variant.GLOBAL_LAYOUT),
    ):
        glob = result.time_reduction(Variant.GLOBAL)
        layout = result.time_reduction(Variant.GLOBAL_LAYOUT)
        gained = layout > glob + 1e-6
        if gained:
            helped.append(result.kernel.name)
        rows.append(
            (
                result.kernel.name,
                percent(glob),
                percent(layout),
                "[layout helps]" if gained else "",
            )
        )
    body = ascii_table(
        ("benchmark", "Global", "Global+Layout", ""), rows
    )
    avg_g = sum(
        r.time_reduction(Variant.GLOBAL) for r in intel_suite.values()
    ) / len(intel_suite)
    avg_gl = sum(
        r.time_reduction(Variant.GLOBAL_LAYOUT) for r in intel_suite.values()
    ) / len(intel_suite)
    body += (
        f"\n\nlayout adds benefit on {len(helped)}/16 benchmarks: "
        f"{', '.join(helped)}"
        f"\naverages: Global {percent(avg_g)}, "
        f"Global+Layout {percent(avg_gl)}"
        "\n(paper, Intel: layout helps 7/16; averages 12% and 14.9%)"
    )
    write_result(
        results_dir / "fig19_layout_intel.txt",
        "Figure 19: Global+Layout execution time reduction (Intel)",
        body,
    )

    for result in intel_suite.values():
        assert (
            result.time_reduction(Variant.GLOBAL_LAYOUT)
            >= result.time_reduction(Variant.GLOBAL) - 1e-6
        ), f"{result.kernel.name}: layout made things worse"
    # A proper subset benefits: some benchmarks gain, some do not.
    assert 0 < len(helped) < len(intel_suite)
    assert avg_gl > avg_g
