"""Branchy kernels through if-conversion, measured and gated.

The ``branchy`` kernel family carries if/else regions that
``repro.transform.if_convert`` flattens into predicated select blocks
before any SLP stage runs. This harness sweeps the family and reports,
per kernel,

* simulated **cycles** of the SCALAR baseline vs the GLOBAL variant
  (both compile through if-conversion; the gap is pure superword
  extraction over the predicated statements),
* the static **vselect** count of the GLOBAL plan — the lane-parallel
  blend ops that replace the original branches, and
* whether the vectorized form **beats scalar** end to end.

Two hard gates ride in the sweep: every branchy kernel must emit at
least one vselect pack (it vectorized through if-conversion at all),
and at least two must strictly beat scalar (the predication overhead
model stays profitable). Results land in ``results/predication.txt``
and committed ``results/BENCH_predication.json`` — regression-gated by
``repro bench --check`` (see ``repro.bench.predication``). Set
``REPRO_BENCH_SMOKE=1`` (CI) for a smaller problem size that still
enforces both gates.
"""

from __future__ import annotations

import os

from conftest import write_result

from repro.bench import ascii_table
from repro.bench.predication import (
    DEFAULT_KERNELS,
    DEFAULT_N,
    predication_metrics,
    write_predication_baseline,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

MACHINE = "intel"
N = 32 if SMOKE else DEFAULT_N
#: Every branchy kernel must strictly beat its scalar compile on at
#: least this many family members for the family to count as vectorized.
MIN_BEATING = 2


def test_predication(results_dir):
    metrics = predication_metrics(machine_name=MACHINE, n=N)

    names = DEFAULT_KERNELS
    for name in names:
        assert metrics["vector"][f"{name}.vselect_ops"] >= 1, (
            f"{name} emitted no vselect packs — if-conversion or "
            f"predicated packing regressed"
        )
    beating = [
        name
        for name in names
        if metrics["vector"][f"{name}.beats_scalar"] == 1.0
    ]
    assert len(beating) >= MIN_BEATING, (
        f"only {beating} beat scalar; expected >= {MIN_BEATING}"
    )

    summary = {
        "kernels": len(names),
        "vectorized": sum(
            int(metrics["vector"][f"{name}.vectorized"])
            for name in names
        ),
        "beating_scalar": len(beating),
        "total_vselects": sum(
            int(metrics["vector"][f"{name}.vselect_ops"])
            for name in names
        ),
    }
    write_predication_baseline(
        results_dir / "BENCH_predication.json",
        metrics,
        machine=MACHINE,
        n=N,
        kernels=names,
        smoke=SMOKE,
        summary=summary,
    )

    rows = [
        (
            name,
            f"{metrics['cycles'][f'{name}.scalar']:10.1f}",
            f"{metrics['cycles'][f'{name}.global']:10.1f}",
            f"{metrics['cycles'][f'{name}.speedup']:7.3f}",
            f"{int(metrics['vector'][f'{name}.vselect_ops']):3d}",
            "yes"
            if metrics["vector"][f"{name}.beats_scalar"] == 1.0
            else "NO",
        )
        for name in names
    ]
    body = ascii_table(
        (
            "kernel",
            "scalar",
            "global",
            "speedup",
            "vselects",
            "beats scalar",
        ),
        rows,
    )
    body += (
        f"\n\n{len(names)} branchy kernels (n={N}, {MACHINE}): "
        f"{summary['vectorized']} vectorized with vselect packs, "
        f"{summary['beating_scalar']} beating scalar, "
        f"{summary['total_vselects']} static vselects total"
    )
    write_result(
        results_dir / "predication.txt",
        "Branchy kernels: if-conversion, vselect packing, speedup",
        body,
    )
