"""Figure 18: percentage of the scalar code's dynamic instructions that
Global eliminates, for hypothetical SIMD datapath widths of 128 through
1024 bits.

Paper: 49.1% at 128 bits rising to 54.5% at 1024 bits. The paper reports
the two endpoints; our assertions mirror that: substantial elimination
at 128 bits, clear growth from 128 to 1024, and no intermediate width
collapsing below the 128-bit level. (Strict per-step monotonicity is
*not* asserted: at extreme widths the iterative pair-merging of Section
4.2.2 can fragment mis-phased temporary chains — a greedy failure mode
the paper's algorithm shares — costing a point or two between 512 and
1024 bits on a few kernels.)
"""

from __future__ import annotations

from conftest import suite_results, write_result

from repro import Variant
from repro.bench import ascii_table, percent

WIDTHS = (128, 256, 512, 1024)
N = 32  # wider datapaths unroll 16x: keep the iteration count moderate


def _elimination(width: int):
    results = suite_results(
        "intel",
        n=N,
        datapath_bits=width,
        variants=(Variant.SCALAR, Variant.GLOBAL),
    )
    per_kernel = {
        name: r.dyn_instr_elimination(Variant.GLOBAL)
        for name, r in results.items()
    }
    return per_kernel, sum(per_kernel.values()) / len(per_kernel)


def test_fig18_datapath_width_sweep(benchmark, results_dir):
    # Benchmark one width's full-suite sweep; reuse cached sweeps for
    # the table.
    benchmark.pedantic(
        lambda: suite_results(
            "intel",
            n=N,
            datapath_bits=256,
            variants=(Variant.SCALAR, Variant.GLOBAL),
        ),
        rounds=1,
        iterations=1,
    )

    sweeps = {width: _elimination(width) for width in WIDTHS}
    kernels = list(sweeps[128][0])
    rows = [
        tuple(
            [name]
            + [percent(sweeps[width][0][name]) for width in WIDTHS]
        )
        for name in kernels
    ]
    rows.append(
        tuple(
            ["average"]
            + [percent(sweeps[width][1]) for width in WIDTHS]
        )
    )
    body = ascii_table(
        ("benchmark",) + tuple(f"{w}-bit" for w in WIDTHS), rows
    )
    body += (
        "\n\n(paper: average 49.1% at 128 bits -> 54.5% at 1024 bits — "
        "endpoint growth; see EXPERIMENTS.md on the 512->1024 dip)"
    )
    write_result(
        results_dir / "fig18_datapath_widths.txt",
        "Figure 18: dynamic instructions eliminated by Global vs width",
        body,
    )

    averages = [sweeps[width][1] for width in WIDTHS]
    assert averages[0] > 0.15, "128-bit elimination should be substantial"
    # The paper's endpoint claim, plus a no-collapse band in between.
    assert averages[-1] > averages[0] + 0.05, "1024-bit must beat 128-bit"
    for average in averages[1:]:
        assert average >= averages[0] - 0.02, "no width may collapse"
