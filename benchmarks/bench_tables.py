"""Tables 1–3: the experimental setup.

Table 1/2 are the two machine configurations (here: the cost/cache
models of the virtual SIMD machine); Table 3 is the 16-benchmark suite.
The benchmark measures the cost of instantiating the full setup.
"""

from __future__ import annotations

from conftest import write_result

from repro.bench import (
    ALL_KERNELS,
    amd_phenom_ii,
    ascii_table,
    intel_dunnington,
)


def _machine_rows(machine):
    l1 = machine.l1
    return [
        ("Cores", str(machine.cores)),
        ("SIMD datapath", f"{machine.datapath_bits} bits"),
        ("Vector registers", str(machine.vector_registers)),
        (
            "L1 data cache",
            f"{l1.size_bytes // 1024}KB, {l1.ways}-way, "
            f"{l1.line_bytes}-byte line",
        ),
        ("L1 miss penalty", f"{l1.miss_penalty:.0f} cycles"),
        ("Shuffle cost", f"{machine.shuffle:.1f} cycles"),
        ("Lane insert/extract", f"{machine.lane_insert:.1f}/"
                                f"{machine.lane_extract:.1f} cycles"),
    ]


def test_table1_intel_dunnington(benchmark, results_dir):
    machine = benchmark(intel_dunnington)
    body = ascii_table(("parameter", "value"), _machine_rows(machine))
    write_result(
        results_dir / "table1_intel.txt",
        "Table 1: Intel Dunnington machine model",
        body,
    )
    assert machine.l1.size_bytes == 32 * 1024
    assert machine.l1.ways == 8
    assert machine.cores == 12


def test_table2_amd_phenom_ii(benchmark, results_dir):
    machine = benchmark(amd_phenom_ii)
    body = ascii_table(("parameter", "value"), _machine_rows(machine))
    write_result(
        results_dir / "table2_amd.txt",
        "Table 2: AMD Phenom II machine model",
        body,
    )
    assert machine.l1.size_bytes == 64 * 1024
    assert machine.l1.ways == 2
    assert machine.cores == 4
    # Section 7.2: the AMD part pays more for packing/unpacking.
    intel = intel_dunnington()
    assert machine.lane_insert > intel.lane_insert
    assert machine.shuffle > intel.shuffle


def test_table3_benchmarks(benchmark, results_dir):
    programs = benchmark(
        lambda: [k.build(16) for k in ALL_KERNELS]
    )
    rows = [
        (k.suite, k.name, k.description) for k in ALL_KERNELS
    ]
    body = ascii_table(("suite", "benchmark", "description"), rows)
    write_result(
        results_dir / "table3_benchmarks.txt",
        "Table 3: benchmark descriptions",
        body,
    )
    assert len(programs) == 16
    spec = [k for k in ALL_KERNELS if k.suite == "SPEC2006"]
    nas = [k for k in ALL_KERNELS if k.suite == "NAS"]
    assert len(spec) == 10 and len(nas) == 6
