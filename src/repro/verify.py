"""The pipeline verifier: structural and stage invariants, checkable
after every compile stage.

The holistic pipeline (grouping → scheduling → layout → codegen) is a
chain of transformations where a subtle invariant break in one stage
surfaces as a silent miscompilation three stages later. This module
makes each stage's contract *checkable*:

* ``ir`` — the program is well formed: every name declared, array
  ranks and subscript bounds respected over the whole iteration space,
  operand types consistent, loop nests structurally sane.
* ``schedule`` — the four validity constraints of Section 4.1 hold for
  every block's schedule: members of a superword are isomorphic and
  mutually independent, pack width fits the datapath, dependence edges
  are preserved by the schedule order, and every statement is
  scheduled exactly once.
* ``plan`` — the emitted virtual-ISA plan is executable: every vector
  register operand is live (defined earlier in its unit) at use, lane
  counts agree across producers and consumers, packs fit the datapath,
  and every memory reference stays inside its declared array over the
  loop ranges that drive it.

Violations raise :class:`repro.errors.VerifyError` with ``stage``,
``block``, and a machine-readable ``rule`` tag. The compiler driver
runs these checks when ``CompilerOptions.checks`` asks for them
(``REPRO_CHECKS`` supplies the default; the test suite pins it to
``all``), and ``on_error="fallback"`` converts any violation into a
scalar fallback for the offending block.
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

from .analysis import DependenceGraph
from .errors import OptionsError, VerifyError
from .ir import (
    Affine,
    ArrayRef,
    BasicBlock,
    Const,
    IfRegion,
    Loop,
    Program,
    Statement,
    Var,
)
from .slp.model import Schedule, ScheduledSingle, SuperwordStatement

#: Stages the verifier knows how to check, in pipeline order.
CHECK_STAGES = ("ir", "schedule", "plan")

#: Environment variable supplying the default for
#: ``CompilerOptions.checks`` (see the precedence rule documented on
#: ``CompilerOptions``).
CHECKS_ENV_VAR = "REPRO_CHECKS"


def resolve_checks(spec: Optional[str]) -> FrozenSet[str]:
    """Resolve a checks spec to the set of stages to verify.

    ``None`` defers to ``$REPRO_CHECKS``, then to ``"none"``. Accepted
    values: ``"none"``, ``"all"``, or a comma-separated subset of
    ``ir``, ``schedule``, ``plan``.
    """
    if spec is None:
        spec = os.environ.get(CHECKS_ENV_VAR) or "none"
    spec = spec.strip()
    if spec in ("", "none"):
        return frozenset()
    if spec == "all":
        return frozenset(CHECK_STAGES)
    stages = frozenset(part.strip() for part in spec.split(",") if part.strip())
    unknown = stages - frozenset(CHECK_STAGES)
    if unknown:
        raise OptionsError(
            f"unknown check stage(s) {sorted(unknown)}; expected a subset "
            f"of {CHECK_STAGES}, 'all', or 'none'"
        )
    return stages


def _fail(stage: str, rule: str, message: str, block: Optional[str]) -> None:
    raise VerifyError(message, stage=stage, block=block, rule=rule)


# ---------------------------------------------------------------------------
# Stage: ir
# ---------------------------------------------------------------------------

#: (start, stop, step) per loop index — the iteration ranges enclosing
#: the construct being checked.
LoopRanges = Dict[str, Tuple[int, int, int]]


def _index_extremes(start: int, stop: int, step: int) -> Optional[Tuple[int, int]]:
    """Min/max value a loop index takes, or None for a zero-trip loop."""
    if stop <= start:
        return None
    last = start + ((stop - start - 1) // step) * step
    return start, last


def affine_bounds(
    affine: Affine, ranges: LoopRanges
) -> Optional[Tuple[int, int]]:
    """Inclusive (min, max) of an affine function over loop ranges.

    Returns None when any referenced loop never executes (the enclosing
    code is dead, so there is nothing to bound). Raises
    :class:`VerifyError` when the affine references an index with no
    enclosing range.
    """
    lo = hi = affine.const
    for name, coeff in affine.coeffs:
        if name not in ranges:
            raise VerifyError(
                f"subscript {affine} references {name!r}, which is not an "
                f"enclosing loop index",
                rule="ir.free-index",
            )
        extremes = _index_extremes(*ranges[name])
        if extremes is None:
            return None
        vmin, vmax = extremes
        if coeff >= 0:
            lo += coeff * vmin
            hi += coeff * vmax
        else:
            lo += coeff * vmax
            hi += coeff * vmin
    return lo, hi


def _verify_ref(
    ref: ArrayRef,
    program: Program,
    ranges: LoopRanges,
    block: Optional[str],
) -> None:
    decl = program.arrays.get(ref.array)
    if decl is None:
        _fail("ir", "ir.undeclared-array",
              f"reference to undeclared array {ref.array!r}", block)
    if len(ref.subscripts) != len(decl.shape):
        _fail(
            "ir", "ir.rank",
            f"{ref.array} has {len(decl.shape)} dims, reference uses "
            f"{len(ref.subscripts)}", block,
        )
    if ref.type != decl.type:
        _fail(
            "ir", "ir.type",
            f"{ref} carries type {ref.type}, but {ref.array} is declared "
            f"{decl.type}", block,
        )
    for subscript, dim in zip(ref.subscripts, decl.shape):
        try:
            bounds = affine_bounds(subscript, ranges)
        except VerifyError as exc:
            raise exc.with_context(stage="ir", block=block)
        if bounds is None:
            continue
        lo, hi = bounds
        if lo < 0 or hi >= dim:
            _fail(
                "ir", "ir.bounds",
                f"subscript {subscript} of {ref.array} spans [{lo}, {hi}] "
                f"but the dimension holds [0, {dim - 1}]", block,
            )


def _verify_leaf(
    leaf,
    program: Program,
    ranges: LoopRanges,
    block: Optional[str],
) -> None:
    if isinstance(leaf, Var):
        decl = program.scalars.get(leaf.name)
        if decl is None:
            _fail("ir", "ir.undeclared-scalar",
                  f"reference to undeclared scalar {leaf.name!r}", block)
        if leaf.type != decl.type:
            _fail(
                "ir", "ir.type",
                f"{leaf.name} used as {leaf.type}, declared {decl.type}",
                block,
            )
    elif isinstance(leaf, ArrayRef):
        _verify_ref(leaf, program, ranges, block)
    elif not isinstance(leaf, Const):
        _fail("ir", "ir.leaf", f"unexpected leaf {leaf!r}", block)


def _verify_statement(
    stmt: Statement,
    program: Program,
    ranges: LoopRanges,
    block: Optional[str],
) -> None:
    for leaf in stmt.operand_positions():
        _verify_leaf(leaf, program, ranges, block)
    if stmt.pred is not None:
        for leaf in stmt.pred.cond.leaves():
            _verify_leaf(leaf, program, ranges, block)


def _verify_region(
    region: IfRegion,
    program: Program,
    ranges: LoopRanges,
    seen: Set[int],
    block: Optional[str],
) -> None:
    if not region.then_body:
        _fail("ir", "ir.region-empty",
              "if region has an empty then-branch", block)
    for leaf in region.cond.leaves():
        _verify_leaf(leaf, program, ranges, block)
    for stmt in region.statements():
        if not isinstance(stmt, Statement):
            _fail(
                "ir", "ir.region-nested",
                f"if branches must hold plain statements, found "
                f"{type(stmt).__name__} (regions are single-level)", block,
            )
        if stmt.sid in seen:
            _fail("ir", "ir.duplicate-sid",
                  f"duplicate sid {stmt.sid}", block)
        seen.add(stmt.sid)
        _verify_statement(stmt, program, ranges, block)


def _verify_block(
    blk: BasicBlock,
    program: Program,
    ranges: LoopRanges,
    block: Optional[str],
) -> None:
    seen: Set[int] = set()
    for stmt in blk:
        if isinstance(stmt, IfRegion):
            _verify_region(stmt, program, ranges, seen, block)
            continue
        if stmt.sid in seen:
            _fail("ir", "ir.duplicate-sid",
                  f"duplicate sid {stmt.sid}", block)
        seen.add(stmt.sid)
        _verify_statement(stmt, program, ranges, block)


def verify_program(program: Program) -> None:
    """Structural well-formedness of a whole program (stage ``ir``)."""
    for decl in program.arrays.values():
        if not decl.shape or any(dim <= 0 for dim in decl.shape):
            _fail("ir", "ir.shape",
                  f"array {decl.name!r} has degenerate shape {decl.shape}",
                  None)
    for position, item in enumerate(program.body):
        label = f"b{position}"
        if isinstance(item, BasicBlock):
            _verify_block(item, program, {}, label)
            continue
        ranges: LoopRanges = {}
        loop: Optional[Loop] = item
        while loop is not None:
            if loop.index in ranges:
                _fail("ir", "ir.index-shadow",
                      f"loop index {loop.index!r} shadows an enclosing "
                      f"loop", label)
            if loop.index in program.arrays or loop.index in program.scalars:
                _fail("ir", "ir.index-shadow",
                      f"loop index {loop.index!r} shadows a declaration",
                      label)
            if loop.step <= 0:
                _fail("ir", "ir.step",
                      f"loop {loop.index!r} has non-positive step", label)
            ranges[loop.index] = (loop.start, loop.stop, loop.step)
            _verify_block(loop.body, program, ranges, label)
            loop = loop.inner


# ---------------------------------------------------------------------------
# Stage: schedule
# ---------------------------------------------------------------------------


def verify_schedule(
    blk: BasicBlock,
    schedule: Schedule,
    datapath_bits: Optional[int] = None,
    block: Optional[str] = None,
    deps: Optional[DependenceGraph] = None,
) -> None:
    """The four validity constraints of Section 4.1 plus completeness,
    with per-rule tags (stage ``schedule``)."""
    deps = deps or DependenceGraph(blk)
    seen: Set[int] = set()
    for item in schedule.items:
        if isinstance(item, SuperwordStatement):
            sids = item.sid_set
            signature = item.members[0].isomorphism_signature()
            for member in item.members[1:]:
                if member.isomorphism_signature() != signature:
                    _fail("schedule", "schedule.isomorphic",
                          f"members of {item} are not isomorphic", block)
            for p in item.sids:
                for q in item.sids:
                    if p < q and deps.dependent(p, q):
                        _fail(
                            "schedule", "schedule.independent",
                            f"dependence between S{p} and S{q} inside "
                            f"superword {item}", block,
                        )
            if datapath_bits is not None and item.width_bits > datapath_bits:
                _fail(
                    "schedule", "schedule.width",
                    f"{item} is {item.width_bits} bits wide; the datapath "
                    f"holds {datapath_bits}", block,
                )
        elif isinstance(item, ScheduledSingle):
            sids = item.sid_set
        else:
            _fail("schedule", "schedule.item",
                  f"unknown schedule item {item!r}", block)
        for sid in sids:
            for pred in deps.predecessors(sid):
                if pred in sids:
                    continue  # would have failed schedule.independent
                if pred not in seen:
                    _fail(
                        "schedule", "schedule.dependence",
                        f"S{sid} scheduled before its dependence source "
                        f"S{pred}", block,
                    )
        duplicate = sids & seen
        if duplicate:
            _fail("schedule", "schedule.duplicate",
                  f"statements scheduled twice: {sorted(duplicate)}", block)
        seen |= sids
    missing = {s.sid for s in blk} - seen
    if missing:
        _fail("schedule", "schedule.complete",
              f"statements missing from schedule: {sorted(missing)}", block)


# ---------------------------------------------------------------------------
# Stage: plan
# ---------------------------------------------------------------------------


def _array_elements(plan_program: Program, plan, name: str) -> Optional[int]:
    decl = plan_program.arrays.get(name)
    if decl is not None:
        return decl.size
    if plan is not None and name in getattr(plan, "replicated_decls", {}):
        return plan.replicated_decls[name]
    return None


def _elem_bits(plan_program: Program, ref) -> Optional[int]:
    from .vm.isa import MemRef, ScalarRef

    if isinstance(ref, MemRef):
        decl = plan_program.arrays.get(ref.array)
        return decl.type.bits if decl is not None else None
    if isinstance(ref, ScalarRef):
        decl = plan_program.scalars.get(ref.name)
        return decl.type.bits if decl is not None else None
    return None


def _check_mem(
    ref,
    plan_program: Program,
    plan,
    ranges: LoopRanges,
    block: Optional[str],
) -> None:
    elements = _array_elements(plan_program, plan, ref.array)
    if elements is None:
        _fail("plan", "plan.array",
              f"instruction references undeclared array {ref.array!r}",
              block)
    try:
        bounds = affine_bounds(ref.flat, ranges)
    except VerifyError as exc:
        raise VerifyError(
            f"flat address {ref.flat} of {ref.array} references an index "
            f"with no enclosing loop",
            stage="plan", block=block, rule="plan.index",
        ) from exc
    if bounds is None:
        return
    lo, hi = bounds
    if lo < 0 or hi >= elements:
        _fail(
            "plan", "plan.bounds",
            f"flat address {ref.flat} of {ref.array} spans [{lo}, {hi}] "
            f"but the array holds [0, {elements - 1}]", block,
        )


def _verify_instructions(
    instructions: Sequence,
    plan_program: Program,
    plan,
    machine,
    ranges: LoopRanges,
    defined: Dict[int, int],
    block: Optional[str],
) -> None:
    """Check one instruction list; ``defined`` maps live-in vector
    registers to their lane counts and is updated with new defs."""
    from .vm.isa import (
        ImmRef,
        MemRef,
        ScalarExec,
        ScalarRef,
        VOp,
        VPack,
        VShuffle,
        VStore,
    )

    datapath = machine.datapath_bits if machine is not None else None

    def check_ref(ref):
        if isinstance(ref, MemRef):
            _check_mem(ref, plan_program, plan, ranges, block)
        elif isinstance(ref, ScalarRef):
            if ref.name not in plan_program.scalars:
                _fail("plan", "plan.scalar",
                      f"instruction references undeclared scalar "
                      f"{ref.name!r}", block)

    def use(vreg: int) -> int:
        lanes = defined.get(vreg)
        if lanes is None:
            _fail(
                "plan", "plan.register-live",
                f"vector register v{vreg} read before any definition",
                block,
            )
        return lanes

    for instr in instructions:
        if isinstance(instr, ScalarExec):
            for ref in instr.loads:
                check_ref(ref)
            check_ref(instr.store)
        elif isinstance(instr, VPack):
            for ref in instr.sources:
                check_ref(ref)
            if datapath is not None:
                bits = [
                    b for b in (
                        _elem_bits(plan_program, ref)
                        for ref in instr.sources
                        if not isinstance(ref, ImmRef)
                    )
                    if b is not None
                ]
                if bits and len(instr.sources) * max(bits) > datapath:
                    _fail(
                        "plan", "plan.width",
                        f"pack of {len(instr.sources)} x {max(bits)}-bit "
                        f"lanes exceeds the {datapath}-bit datapath", block,
                    )
            defined[instr.dst] = len(instr.sources)
        elif isinstance(instr, VOp):
            for src in instr.srcs:
                lanes = use(src)
                if lanes != instr.lanes:
                    _fail(
                        "plan", "plan.lanes",
                        f"VOp {instr.op} expects {instr.lanes} lanes but "
                        f"v{src} holds {lanes}", block,
                    )
            defined[instr.dst] = instr.lanes
        elif isinstance(instr, VShuffle):
            lanes = use(instr.src)
            if any(i < 0 or i >= lanes for i in instr.perm):
                _fail(
                    "plan", "plan.lanes",
                    f"shuffle permutation {instr.perm} indexes outside "
                    f"v{instr.src}'s {lanes} lanes", block,
                )
            defined[instr.dst] = len(instr.perm)
        elif isinstance(instr, VStore):
            lanes = use(instr.src)
            if len(instr.targets) != lanes:
                _fail(
                    "plan", "plan.lanes",
                    f"store of {len(instr.targets)} lanes from v{instr.src} "
                    f"holding {lanes}", block,
                )
            for ref in instr.targets:
                check_ref(ref)
        else:
            _fail("plan", "plan.instruction",
                  f"unknown instruction {instr!r}", block)


def verify_unit(
    unit,
    plan_program: Program,
    machine=None,
    plan=None,
    block: Optional[str] = None,
    ranges: Optional[LoopRanges] = None,
    defined: Optional[Dict[int, int]] = None,
) -> None:
    """Executability of one compiled unit (stage ``plan``)."""
    from .vm.codegen import CompiledCopy, CompiledLoop, CompiledStraight

    ranges = dict(ranges or {})
    defined = {} if defined is None else defined
    if isinstance(unit, CompiledStraight):
        _verify_instructions(
            unit.instructions, plan_program, plan, machine, ranges,
            defined, block,
        )
        return
    if isinstance(unit, CompiledCopy):
        rep = unit.replication
        if _array_elements(plan_program, plan, rep.source) is None:
            _fail("plan", "plan.array",
                  f"replication copies from undeclared {rep.source!r}",
                  block)
        if _array_elements(plan_program, plan, rep.new_name) is None:
            _fail("plan", "plan.array",
                  f"replication fills undeclared {rep.new_name!r}", block)
        return
    if not isinstance(unit, CompiledLoop):
        _fail("plan", "plan.unit", f"unknown compiled unit {unit!r}", block)
    spec = unit.spec
    # The preheader runs in the enclosing context: the loop's own index
    # is not yet bound there.
    _verify_instructions(
        unit.preheader, plan_program, plan, machine, ranges, defined, block
    )
    if spec.trip_count == 0:
        return  # dead body — nothing executes, nothing to verify
    ranges[spec.index] = (spec.start, spec.stop, spec.step)
    _verify_instructions(
        unit.body, plan_program, plan, machine, ranges, defined, block
    )
    if unit.inner is not None:
        verify_unit(
            unit.inner, plan_program, machine, plan, block,
            ranges, defined,
        )


def verify_plan(plan, machine=None, block: Optional[str] = None) -> None:
    """Executability of a whole plan: every unit, in order."""
    for position, unit in enumerate(plan.units):
        verify_unit(
            unit, plan.program, machine, plan,
            block=block or f"u{position}",
        )


__all__ = [
    "CHECKS_ENV_VAR",
    "CHECK_STAGES",
    "affine_bounds",
    "resolve_checks",
    "verify_plan",
    "verify_program",
    "verify_schedule",
    "verify_unit",
]
