"""Holistic SLP — a reproduction of Liu et al., "A Compiler Framework
for Extracting Superword Level Parallelism" (PLDI 2012).

Quick start::

    from repro import (
        ProgramBuilder, FLOAT32, Variant, compile_program,
        intel_dunnington, simulate,
    )

    b = ProgramBuilder("saxpy")
    X = b.array("X", (1024,), FLOAT32)
    Y = b.array("Y", (1024,), FLOAT32)
    a = b.scalar("a", FLOAT32)
    with b.loop("i", 0, 1024) as i:
        b.assign(Y[i], a * X[i] + Y[i])
    program = b.build()

    machine = intel_dunnington()
    result = compile_program(program, Variant.GLOBAL, machine)
    report, memory = simulate(result)
    print(report.summary())
"""

from .compiler import (
    CompileResult,
    CompileStats,
    CompilerOptions,
    Variant,
    compile_program,
)
from .errors import (
    Diagnostic,
    IRError,
    LayoutError,
    OptionsError,
    ParseError,
    ReproError,
    ScheduleError,
    ServiceError,
    SimulationError,
    SuiteError,
    VerifyError,
    WorkerCrashError,
)
from .store import ArtifactStore, StoreStats
from .ir import (
    Affine,
    ArrayRef,
    BasicBlock,
    BinOp,
    BlockBuilder,
    Const,
    FLOAT32,
    FLOAT64,
    INT16,
    INT32,
    INT64,
    INT8,
    Loop,
    Program,
    ProgramBuilder,
    ScalarType,
    Statement,
    UnOp,
    Var,
    parse_block,
    parse_program,
)
from .vm import (
    ExecutionReport,
    MachineModel,
    Memory,
    Simulator,
    amd_phenom_ii,
    intel_dunnington,
    reduction,
)

__version__ = "1.0.0"


def simulate(result: CompileResult, seed: int = 0):
    """Run a compiled variant on the virtual SIMD machine.

    Returns ``(report, memory)``: the instruction/cycle report and the
    final machine state.
    """
    return Simulator(result.machine).run(result.plan, seed=seed)


__all__ = [
    "Affine",
    "ArrayRef",
    "ArtifactStore",
    "BasicBlock",
    "BinOp",
    "BlockBuilder",
    "CompileResult",
    "CompileStats",
    "CompilerOptions",
    "Const",
    "Diagnostic",
    "ExecutionReport",
    "IRError",
    "LayoutError",
    "OptionsError",
    "ParseError",
    "ReproError",
    "ScheduleError",
    "ServiceError",
    "SimulationError",
    "StoreStats",
    "SuiteError",
    "VerifyError",
    "WorkerCrashError",
    "FLOAT32",
    "FLOAT64",
    "INT16",
    "INT32",
    "INT64",
    "INT8",
    "Loop",
    "MachineModel",
    "Memory",
    "Program",
    "ProgramBuilder",
    "ScalarType",
    "Simulator",
    "Statement",
    "UnOp",
    "Var",
    "Variant",
    "amd_phenom_ii",
    "compile_program",
    "intel_dunnington",
    "parse_block",
    "parse_program",
    "reduction",
    "simulate",
    "__version__",
]
