"""Loop unrolling with scalar renaming — the paper's pre-processing step.

"For loop-intensive applications, loop unrolling can be used to reveal
more opportunities for short SIMD operations and to fully utilize the
superword datapath available in the underlying architecture" (Section 3).

Unrolling the innermost loop by ``u`` replicates the body with the index
substituted ``i -> i + k*step`` for copy ``k``. Scalars defined inside
the body are renamed per copy (``a -> a__k``) so the copies do not carry
false (anti/output) dependences that would block grouping; the *last*
copy keeps the original names, so the scalar state after the loop is
bit-identical to the non-unrolled execution — which the differential
tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..errors import IRError
from ..ir import (
    Affine,
    BasicBlock,
    Expr,
    Loop,
    Predicate,
    Program,
    Statement,
    Var,
)


def choose_unroll_factor(loop: Loop, datapath_bits: int) -> int:
    """Lanes of the *highest-lane-count* element type in the body, i.e.
    the factor that can fill the datapath with the narrowest elements."""
    innermost = loop.innermost()
    lane_counts = [1]
    for stmt in innermost.body.flat_statements():
        for leaf in list(stmt.expr.leaves()) + [stmt.target]:
            if datapath_bits % leaf.type.bits == 0:
                lane_counts.append(datapath_bits // leaf.type.bits)
    return max(lane_counts)


@dataclass
class UnrollResult:
    """An unrolled loop plus the bookkeeping the caller needs."""

    main: Loop
    remainder: Optional[Loop]
    new_scalars: Tuple[Tuple[str, str], ...]  # (renamed, original)
    factor: int


class _Renamer:
    """Tracks the current name of each body-defined scalar while copies
    are emitted in order, so a use-before-def inside copy ``k`` correctly
    reads copy ``k-1``'s value (reductions stay serialized, as they
    must)."""

    def __init__(self, factor: int, taken: Set[str]):
        self.factor = factor
        self.current: Dict[str, str] = {}
        self.created: List[Tuple[str, str]] = []
        self._taken = set(taken)

    def note_def(self, name: str, copy: int) -> str:
        if copy == self.factor - 1:
            renamed = name
        else:
            renamed = f"{name}__{copy}"
            while renamed in self._taken:
                renamed += "_"
        if renamed != name and all(r != renamed for r, _ in self.created):
            self.created.append((renamed, name))
            self._taken.add(renamed)
        self.current[name] = renamed
        return renamed

    def use_name(self, name: str) -> str:
        return self.current.get(name, name)


def _rename_expr(expr: Expr, renamer: _Renamer) -> Expr:
    if isinstance(expr, Var):
        return Var(renamer.use_name(expr.name), expr.type)
    kids = expr.children()
    if not kids:
        return expr
    return expr.with_children(tuple(_rename_expr(k, renamer) for k in kids))


def unroll_loop(
    loop: Loop, factor: int, taken_names: Set[str]
) -> UnrollResult:
    """Unroll a single (innermost) loop by ``factor``.

    Returns the main unrolled loop, an optional remainder loop covering
    trip-count leftovers, and the scalar renames introduced.
    """
    if loop.inner is not None:
        raise IRError("unroll_loop expects an innermost loop")
    if factor < 1:
        raise IRError("unroll factor must be >= 1")
    if factor == 1 or loop.trip_count < factor:
        return UnrollResult(loop, None, (), 1)

    trips = loop.trip_count
    main_trips = (trips // factor) * factor
    main_stop = loop.start + main_trips * loop.step

    renamer = _Renamer(factor, taken_names)
    unrolled = BasicBlock()
    sid = 0
    for copy in range(factor):
        shift = {loop.index: Affine.var(loop.index) + copy * loop.step}
        for stmt in loop.body:
            shifted = stmt.substitute_indices(shift)
            expr = _rename_expr(shifted.expr, renamer)
            # The predicate condition reads values defined *before* this
            # statement, so rename it before noting the target's def.
            pred = shifted.pred
            if pred is not None:
                pred = Predicate(
                    _rename_expr(pred.cond, renamer), pred.when
                )
            target = shifted.target
            if isinstance(target, Var):
                target = Var(renamer.note_def(target.name, copy), target.type)
            unrolled.append(Statement(sid, target, expr, pred))
            sid += 1

    main = Loop(
        loop.index, loop.start, main_stop, loop.step * factor, unrolled
    )
    remainder = None
    if main_trips < trips:
        remainder = Loop(
            loop.index,
            main_stop,
            loop.stop,
            loop.step,
            BasicBlock([s.with_sid(i) for i, s in enumerate(loop.body)]),
        )
    return UnrollResult(main, remainder, tuple(renamer.created), factor)


def unroll_program(
    program: Program, datapath_bits: int, factor: Optional[int] = None
) -> Program:
    """Unroll every innermost loop of a program.

    ``factor`` overrides the per-loop automatic choice (the datapath lane
    count of the narrowest element type used in the loop body). Innermost
    loops nested inside outer loops must have a trip count divisible by
    the factor (our Loop model keeps one block + one nested loop per
    body, so a remainder loop cannot be placed inside an outer body).
    """
    result = program.clone_shell()
    taken = set(program.scalars) | set(program.arrays)

    def register_renames(renames: Tuple[Tuple[str, str], ...]) -> None:
        for renamed, original in renames:
            elem = program.scalars[original].type
            result.declare_scalar(renamed, elem)
            taken.add(renamed)

    def handle(loop: Loop, nested: bool) -> Tuple[Loop, Optional[Loop]]:
        if loop.inner is not None:
            inner_main, inner_rem = handle(loop.inner, nested=True)
            if inner_rem is not None:
                raise IRError(
                    f"inner loop {loop.inner.index} needs a remainder loop; "
                    "give it a trip count divisible by the unroll factor"
                )
            return (
                Loop(
                    loop.index,
                    loop.start,
                    loop.stop,
                    loop.step,
                    loop.body,
                    inner=inner_main,
                ),
                None,
            )
        chosen = factor or choose_unroll_factor(loop, datapath_bits)
        outcome = unroll_loop(loop, chosen, taken)
        register_renames(outcome.new_scalars)
        if nested and outcome.remainder is not None:
            raise IRError(
                f"nested loop {loop.index} has trip count "
                f"{loop.trip_count} not divisible by factor {chosen}"
            )
        return outcome.main, outcome.remainder

    for item in program.body:
        if isinstance(item, Loop):
            main, remainder = handle(item, nested=False)
            result.add(main)
            if remainder is not None:
                result.add(remainder)
        else:
            result.add(item)
    return result
