"""Pre-processing transformations (Figure 3's pre-processing module)."""

from .if_convert import (
    convert_region,
    has_regions,
    if_convert_block,
    if_convert_program,
)
from .peel import choose_peel_count, peel_loop, peel_program
from .unroll import UnrollResult, choose_unroll_factor, unroll_loop, unroll_program

__all__ = [
    "UnrollResult",
    "choose_peel_count",
    "choose_unroll_factor",
    "convert_region",
    "has_regions",
    "if_convert_block",
    "if_convert_program",
    "peel_loop",
    "peel_program",
    "unroll_loop",
    "unroll_program",
]
