"""Loop peeling for alignment — a pre-processing extension.

The paper's pre-processing performs "loop unrolling and alignment
analysis" (Figure 3). A standard companion technique of that era peels
a few leading iterations so the dominant memory streams start on a
superword boundary, turning unaligned wide accesses into aligned ones.
This pass implements it: it solves, for each affine reference, which
peel count would align it, takes a majority vote, and splits the loop
into a scalar prologue plus an aligned main loop.

Disabled by default (``CompilerOptions(peel_for_alignment=True)`` turns
it on) so the headline experiments match the paper's configuration; the
ablation harness measures its effect separately.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Tuple

from ..analysis.alignment import flat_affine
from ..ir import Loop, Program


def _residue_votes(loop: Loop, program: Program, lanes: int) -> Counter:
    """For each reference whose alignment drifts with the induction
    variable, vote for the peel counts that would align it."""
    votes: Counter = Counter()
    index = loop.index
    for stmt in loop.body:
        for ref in stmt.array_refs():
            decl = program.arrays.get(ref.array)
            if decl is None:
                continue
            flat = flat_affine(ref, decl)
            if set(flat.variables()) - {index}:
                continue  # outer indices involved: leave it alone
            drift = (flat.coeff(index) * loop.step) % lanes
            if drift == 0:
                continue  # peeling cannot change this ref's residue
            base = flat.evaluate({index: loop.start}) % lanes
            for peel in range(lanes):
                if (base + peel * drift) % lanes == 0:
                    votes[peel] += 1
    return votes


def choose_peel_count(loop: Loop, program: Program, lanes: int) -> int:
    """The majority-vote peel count (0 when nothing would benefit)."""
    if loop.inner is not None or lanes <= 1:
        return 0
    votes = _residue_votes(loop, program, lanes)
    if not votes:
        return 0
    best, count = max(votes.items(), key=lambda kv: (kv[1], -kv[0]))
    if best == 0 or count == 0:
        return 0
    return min(best, max(0, loop.trip_count - 1))


def peel_loop(loop: Loop, peel: int) -> Tuple[Optional[Loop], Loop]:
    """Split ``loop`` into a ``peel``-iteration prologue and the rest.

    Returns ``(prologue, main)``; the prologue is ``None`` when nothing
    is peeled. Statement sids are preserved (both parts reuse the body).
    """
    if peel <= 0 or loop.trip_count <= peel:
        return None, loop
    boundary = loop.start + peel * loop.step
    prologue = Loop(loop.index, loop.start, boundary, loop.step, loop.body)
    main = Loop(loop.index, boundary, loop.stop, loop.step, loop.body)
    return prologue, main


def peel_program(program: Program, lanes) -> Tuple[Program, int]:
    """Peel every top-level innermost loop for alignment.

    ``lanes`` is either the lane count or a callable ``loop -> lanes``
    (the driver passes the loop's unroll factor). Returns the new
    program and the number of loops peeled. Prologues are emitted as
    separate (scalar) loops before their main loops.
    """
    result = program.clone_shell()
    peeled = 0
    for item in program.body:
        if not isinstance(item, Loop) or item.inner is not None:
            result.add(item)
            continue
        loop_lanes = lanes(item) if callable(lanes) else lanes
        count = choose_peel_count(item, program, loop_lanes)
        prologue, main = peel_loop(item, count)
        if prologue is not None:
            result.add(prologue)
            peeled += 1
        result.add(main)
    return result, peeled
