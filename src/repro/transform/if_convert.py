"""If-conversion: flatten conditional regions into predicated selects.

The SLP layers (grouping, scheduling, layout) and the vector ISA all
operate on straight-line basic blocks — the paper's Section 3 input
form. This pass converts each single-level :class:`IfRegion` into a
sequence of plain statements whose semantics are carried by ``select``
expressions, so branchy kernels (clamping stencils, piecewise
functions, masked updates) become packable.

Two lowering shapes:

* **Select-merge** — when both branches assign to pairwise structurally
  equal targets (the classic diamond ``if (c) x = a; else x = b;``),
  each pair fuses into one *unpredicated* statement
  ``x = select(c, a, b)``. These statements carry no predicate and pack
  freely with each other and with the surrounding code — the
  mixed-predicate pair becomes packable precisely by merging.

* **Masked update** — otherwise, every branch statement becomes a
  guarded read-modify-write of its own target:
  ``x = select(c, rhs, x)`` for the then-branch and
  ``x = select(c, x, rhs)`` for the else-branch, tagged with a
  :class:`Predicate` recording the branch. Then-statements are emitted
  first (in branch order), preserving intra-branch def-use chains; the
  two branches never observe each other's writes because at runtime
  exactly one branch's selects pick their ``rhs`` arm while the other
  branch's selects reduce to identity copies.

Every operator in the IR is total (division is IEEE-style, see
``repro.vm.simulator._ieee_div``), so eagerly evaluating both arms of a
select — the SIMD execution model — can not introduce traps that the
branchy original would have skipped.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.block import BasicBlock, IfRegion, Loop, Program
from ..ir.stmt import Predicate, Statement
from ..ir.expr import Select
from ..trace import TRACE


def convert_region(region: IfRegion) -> List[Statement]:
    """Lower one region to predicated straight-line statements.

    The returned statements carry the sids of the originals (the block
    is renumbered afterwards by :func:`if_convert_block`).
    """
    cond = region.cond
    if region.mergeable:
        return [
            Statement(t.sid, t.target, Select(cond, t.expr, e.expr))
            for t, e in zip(region.then_body, region.else_body)
        ]
    converted: List[Statement] = []
    for stmt in region.then_body:
        converted.append(
            Statement(
                stmt.sid,
                stmt.target,
                Select(cond, stmt.expr, stmt.target),
                Predicate(cond, True),
            )
        )
    for stmt in region.else_body:
        converted.append(
            Statement(
                stmt.sid,
                stmt.target,
                Select(cond, stmt.target, stmt.expr),
                Predicate(cond, False),
            )
        )
    return converted


def if_convert_block(block: BasicBlock, label: str = "b?") -> BasicBlock:
    """Flatten every region of a block; returns the block itself when
    there is nothing to convert."""
    if not block.has_regions:
        return block
    items: List[Statement] = []
    for item in block.statements:
        if isinstance(item, IfRegion):
            lowered = convert_region(item)
            TRACE.event(
                "if_convert",
                block=label,
                decision=(
                    "select-merge"
                    if item.mergeable
                    else "masked-update"
                ),
                statements_in=len(item.then_body) + len(item.else_body),
                statements_out=len(lowered),
                has_else=bool(item.else_body),
            )
            items.extend(lowered)
        else:
            items.append(item)
    return BasicBlock(items).renumbered()


def _convert_loop(loop: Loop, label_base: int) -> Loop:
    body = if_convert_block(loop.body, f"b{label_base}")
    inner: Optional[Loop] = loop.inner
    if inner is not None:
        inner = _convert_loop(inner, label_base + 1)
    if body is loop.body and inner is loop.inner:
        return loop
    return Loop(loop.index, loop.start, loop.stop, loop.step, body, inner)


def has_regions(program: Program) -> bool:
    """Does any block of the program contain an :class:`IfRegion`?"""
    return any(block.has_regions for block in program.blocks())


def if_convert_program(program: Program) -> Program:
    """If-convert every block of a program.

    Returns the *same* object when the program has no regions, so
    callers can keep cheap ``is``-identity checks for "nothing
    happened".
    """
    if not has_regions(program):
        return program
    converted = program.clone_shell()
    for position, item in enumerate(program.body):
        if isinstance(item, Loop):
            converted.add(_convert_loop(item, position))
        else:
            converted.add(if_convert_block(item, f"b{position}"))
    return converted
