"""The compiler framework driver — Figure 3 end to end.

``compile_program`` takes a source :class:`Program` and a variant name
and produces an :class:`ExecutablePlan` for the virtual SIMD machine:

* ``Variant.SCALAR`` — no SLP; the baseline every figure normalizes to.
* ``Variant.NATIVE`` — the conservative built-in-vectorizer model.
* ``Variant.SLP`` — Larsen & Amarasinghe's greedy algorithm.
* ``Variant.GLOBAL`` — the paper's holistic superword statement
  generation (global grouping + reuse-driven scheduling).
* ``Variant.GLOBAL_LAYOUT`` — Global plus the data layout stage
  (Section 5).

Pre-processing (loop unrolling + alignment analysis) is shared by every
non-scalar variant, exactly as in the paper's experimental setup ("both
the implementations use exactly the same pre-processing steps"). A cost
model gates each basic block: when the estimated vector cost is not
better than scalar, the block is left scalar (end of Section 4.3).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from . import engines
from .analysis import DependenceGraph
from .errors import Diagnostic, OptionsError, ReproError
from .ir import BasicBlock, Loop, Program
from .layout import (
    ArrayLayoutPlan,
    LoopContext,
    apply_array_layout,
    default_scalar_layout,
    optimized_scalar_layout,
    plan_array_layout,
)
from .layout.scalar import ScalarArena
from .perf import section as perf_section
from .slp import (
    PenaltyContext,
    Schedule,
    ScheduledSingle,
    greedy_slp_schedule,
    holistic_slp_schedule,
    native_schedule,
)
from .trace import TRACE
from .transform import if_convert_program, unroll_program
from .verify import (
    resolve_checks,
    verify_program,
    verify_schedule,
    verify_unit,
)
from .vm import (
    CompiledCopy,
    CompiledLoop,
    CompiledStraight,
    ExecutablePlan,
    LoopSpec,
    MachineModel,
    VectorCodegen,
    compile_scalar_block,
)


class Variant(enum.Enum):
    SCALAR = "scalar"
    NATIVE = "native"
    SLP = "slp"
    GLOBAL = "global"
    GLOBAL_LAYOUT = "global+layout"

    @property
    def uses_layout(self) -> bool:
        return self is Variant.GLOBAL_LAYOUT


@dataclass(frozen=True)
class CompilerOptions:
    """Knobs; defaults reproduce the paper's configuration.

    **Option precedence** (the single place this rule is defined): an
    explicit ``CompilerOptions`` field value wins; the CLI expresses its
    flags *by building* a ``CompilerOptions`` (so a CLI flag is the same
    thing as an explicit field); a field left at ``None`` defers to its
    environment variable (``REPRO_SIM_ENGINE`` for ``engine``,
    ``REPRO_CHECKS`` for ``checks``); and only then does the built-in
    default apply. Nothing else consults the environment directly.
    """

    datapath_bits: Optional[int] = None   # None: the machine's width
    unroll: bool = True
    unroll_factor: Optional[int] = None   # None: fill the datapath
    cost_gate: bool = True
    layout_budget_elements: int = 1 << 20
    layout_amortization: float = 16.0
    #: Extension (off in the paper's configuration): peel leading loop
    #: iterations so the dominant memory streams start superword-aligned.
    peel_for_alignment: bool = False
    #: Ablation knobs. ``indirect_reuse`` overrides the variant default
    #: (holistic variants shuffle, greedy baselines re-gather);
    #: ``decision_mode`` selects "cost-aware" (default) or the
    #: paper-literal "weight-only" grouping ranking.
    indirect_reuse: Optional[bool] = None
    decision_mode: str = "cost-aware"
    #: Grouping decision-loop implementation: "incremental" (memoized
    #: dirty-set engine, default) or "reference" (from-scratch
    #: recomputation every iteration). Both produce identical schedules;
    #: the reference engine exists for differential testing and
    #: compile-time benchmarking.
    grouping_engine: str = "incremental"
    #: Search-node budget for ``grouping_engine="optimal"`` before it
    #: falls back (per grouping round) to the incremental result with a
    #: Diagnostic note; ``None`` uses
    #: ``repro.slp.optimal.DEFAULT_NODE_BUDGET``. Ignored by the greedy
    #: engines.
    optimal_node_budget: Optional[int] = None
    #: Simulation engine for runs driven by these options: "reference"
    #: (per-instruction interpreter), "batched" (vectorized loop
    #: engine, report-identical — see ``repro.vm.batched``), or
    #: "compiled" (per-loop NumPy codegen with peephole
    #: superoptimization, also report-identical — see
    #: ``repro.vm.compiled``). ``None`` defers to the
    #: ``REPRO_SIM_ENGINE`` environment variable, then to "reference".
    #: Compilation itself is engine-independent.
    engine: Optional[str] = None
    #: Pipeline verifier stages to run during compilation: "none",
    #: "all", or a comma-separated subset of "ir", "schedule", "plan"
    #: (see :mod:`repro.verify`). ``None`` defers to the
    #: ``REPRO_CHECKS`` environment variable, then to "none". The test
    #: suite pins the variable to "all".
    checks: Optional[str] = None
    #: What to do when a per-block pass fails or a verifier check
    #: trips: "raise" (default) propagates the exception; "fallback"
    #: compiles the offending block scalar, records a structured
    #: :class:`repro.errors.Diagnostic` on the result, and keeps going.
    #: Failures at the whole-program level (preprocessing, or an
    #: invalid *input* program) fall back to an all-scalar plan; an
    #: ``ir``-stage violation in the source program itself always
    #: raises — no transformation can repair a malformed input.
    on_error: str = "raise"
    #: Test/fuzz hook: a callable ``(schedule, block_label) ->
    #: Optional[Schedule]`` applied to every block schedule before
    #: verification — used to seed deliberate compiler bugs for the
    #: differential oracle and the mutation tests. Excluded from repr
    #: (and hence from compile-cache keys) and comparison.
    debug_schedule_mutator: Optional[Callable] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self):
        # Engine names resolve through the one registry, so an unknown
        # name fails here — at options construction — with a structured
        # error listing what is registered, identically for the API,
        # the CLI, and the service wire schema.
        engines.resolve("grouping", self.grouping_engine)
        if self.engine is not None:
            engines.resolve("sim", self.engine)


@dataclass
class CompileStats:
    """What the compiler did — inputs to several figures."""

    blocks_total: int = 0
    blocks_vectorized: int = 0
    superword_statements: int = 0
    grouped_statements: int = 0
    total_statements: int = 0
    replications: int = 0
    #: Wall-clock measurement of the compile, not artifact content:
    #: excluded from equality so a served/stored ``CompileResult``
    #: compares ``==`` to a fresh local compile of the same input.
    compile_seconds: float = field(default=0.0, compare=False)

    @property
    def grouped_fraction(self) -> float:
        if not self.total_statements:
            return 0.0
        return self.grouped_statements / self.total_statements


@dataclass
class CompileResult:
    plan: ExecutablePlan
    variant: Variant
    machine: MachineModel
    stats: CompileStats
    schedules: List[Schedule] = field(default_factory=list)
    #: Structured record of every recoverable failure the compile
    #: degraded around (``on_error="fallback"``). Empty on clean runs.
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Labels (``b<position>``) of blocks compiled scalar *because of a
    #: failure* — distinct from blocks the cost gate left scalar.
    fallback_blocks: List[str] = field(default_factory=list)


# ---------------------------------------------------------------------------


def scalar_schedule(block: BasicBlock) -> Schedule:
    """An all-singles schedule — what the cost gate falls back to and a
    convenient baseline for tests and tools."""
    schedule = Schedule(block)
    schedule.items = [ScheduledSingle(s) for s in block]
    return schedule


def _schedule_block(
    block: BasicBlock,
    variant: Variant,
    program: Program,
    datapath_bits: int,
    decision_mode: str = "cost-aware",
    grouping_engine: str = "incremental",
    engine_options: Optional[dict] = None,
    on_diagnostic: Optional[Callable[[Diagnostic], None]] = None,
) -> Schedule:
    deps = DependenceGraph(block)
    decl_of = lambda name: program.arrays[name]  # noqa: E731
    if variant is Variant.NATIVE:
        return native_schedule(block, deps, decl_of, datapath_bits)
    if variant is Variant.SLP:
        return greedy_slp_schedule(block, deps, decl_of, datapath_bits)
    if variant.uses_layout:
        # Phase coupling: the layout stage can turn read-only strided
        # gathers and scattered scalar superwords into contiguous
        # accesses, so grouping should not shy away from them.
        from .layout import written_arrays

        replicable = frozenset(program.arrays) - written_arrays(program)
        penalty_context = PenaltyContext(replicable)
    else:
        # Plain Global will emit code against the default scalar arena:
        # tell the grouping cost model which scalar packs come out
        # contiguous under it.
        penalty_context = PenaltyContext(
            scalar_slots=PenaltyContext.from_arenas(
                default_scalar_layout(program)
            )
        )
    return holistic_slp_schedule(
        block, deps, datapath_bits, decl_of, penalty_context,
        decision_mode, grouping_engine,
        engine_options=engine_options,
        on_diagnostic=on_diagnostic,
    )


def _loop_chain(loop: Loop) -> List[Loop]:
    chain = [loop]
    while chain[-1].inner is not None:
        chain.append(chain[-1].inner)
    return chain


def _spec(loop: Loop) -> LoopSpec:
    return LoopSpec(loop.index, loop.start, loop.stop, loop.step)


def compile_program(
    program: Program,
    variant: Variant,
    machine: MachineModel,
    options: Optional[CompilerOptions] = None,
) -> CompileResult:
    """Run the full framework on a program for one variant."""
    options = options or CompilerOptions()
    datapath = options.datapath_bits or machine.datapath_bits
    with TRACE.span("compile", variant=variant.value, datapath=datapath):
        return _compile(program, variant, machine, options, datapath)


def _compile(
    program: Program,
    variant: Variant,
    machine: MachineModel,
    options: CompilerOptions,
    datapath: int,
) -> CompileResult:
    machine = machine.with_datapath(datapath)
    started = time.perf_counter()
    stats = CompileStats()
    checks = resolve_checks(options.checks)
    if options.on_error not in ("raise", "fallback"):
        raise OptionsError(
            f"unknown on_error {options.on_error!r}; "
            f"expected 'raise' or 'fallback'"
        )
    fallback = options.on_error == "fallback"
    diagnostics: List[Diagnostic] = []
    fallback_blocks: List[str] = []

    if "ir" in checks:
        # The *input* program must be well formed no matter the error
        # policy: falling back to scalar cannot repair a bad program.
        verify_program(program)

    # Control flow is lowered first, for every variant including SCALAR:
    # all downstream phases (and all engines) consume the same
    # predicated straight-line form, so the differential oracle compares
    # identical select semantics across variants. Programs without
    # regions pass through untouched (same object).
    converted = if_convert_program(program)
    if converted is not program:
        if "ir" in checks:
            # The lowering must preserve well-formedness; a violation
            # here is a compiler bug, not a user error.
            verify_program(converted)
        program = converted

    if variant is Variant.SCALAR:
        plan = _compile_all_scalar(program)
        stats.blocks_total = sum(1 for _ in program.blocks())
        stats.total_statements = sum(len(b) for b in program.blocks())
        stats.compile_seconds = time.perf_counter() - started
        return CompileResult(plan, variant, machine, stats)

    pre = program
    try:
        with perf_section("compile.preprocess"), TRACE.span("preprocess"):
            if options.peel_for_alignment:
                from .transform import choose_unroll_factor, peel_program

                pre, _peeled = peel_program(
                    pre, lambda loop: choose_unroll_factor(loop, datapath)
                )
            if options.unroll:
                pre = unroll_program(pre, datapath, options.unroll_factor)
        if "ir" in checks and pre is not program:
            # The compiler's own preprocessing must preserve
            # well-formedness; a violation here is a compiler bug.
            verify_program(pre)
    except Exception as exc:
        if not fallback:
            if isinstance(exc, ReproError):
                exc.with_context(stage="preprocess")
            raise
        # Whole-program degradation: preprocessing failed, so compile
        # everything scalar and say so.
        diagnostics.append(
            Diagnostic.from_error(exc, stage="preprocess", block="<program>")
        )
        plan = _compile_all_scalar(program)
        stats.blocks_total = sum(1 for _ in program.blocks())
        stats.total_statements = sum(len(b) for b in program.blocks())
        stats.compile_seconds = time.perf_counter() - started
        result = CompileResult(plan, variant, machine, stats)
        result.diagnostics = diagnostics
        result.fallback_blocks = ["<program>"]
        return result
    if pre is program and variant.uses_layout:
        # The layout phase declares replicated arrays on `pre`; when no
        # preprocessing made a copy, work on a shallow twin so the
        # caller's program object is never mutated (the bench harness
        # reuses one program across all variants).
        pre = program.clone_shell()
        pre.body = list(program.body)

    # Phase 1: superword statement generation per optimizable block.
    scheduled: List[Tuple[object, Optional[Schedule], Optional[LoopContext]]] = []
    forced_scalar: set = set()
    with perf_section("compile.schedule"), TRACE.span("schedule"):
        # Blocks are identified by their position in the program body;
        # the ``b<position>`` label qualifies provenance IDs because
        # statement IDs restart at zero in every block.
        for position, item in enumerate(pre.body):
            label = f"b{position}"
            if isinstance(item, BasicBlock):
                blk, ctx = item, None
                span_kwargs = dict(block=label, kind="straight")
            else:
                chain = _loop_chain(item)
                innermost = chain[-1]
                blk = innermost.body
                ctx = LoopContext(
                    innermost.index,
                    innermost.start,
                    innermost.stop,
                    innermost.step,
                )
                span_kwargs = dict(
                    block=label, kind="loop", index=innermost.index
                )
            # Engine-level notes (e.g. the optimal engine's budget
            # fallback) land on the result's diagnostics with their
            # block label filled in; they are informational, not
            # failures, so they are collected under both error policies.
            def _note(diag: Diagnostic, _label: str = label) -> None:
                diagnostics.append(
                    diag if diag.block else replace(diag, block=_label)
                )

            try:
                with TRACE.span("block", **span_kwargs):
                    schedule = _schedule_block(
                        blk, variant, pre, datapath, options.decision_mode,
                        options.grouping_engine,
                        engine_options=(
                            {"node_budget": options.optimal_node_budget}
                            if options.optimal_node_budget is not None
                            else None
                        ),
                        on_diagnostic=_note,
                    )
                if options.debug_schedule_mutator is not None:
                    mutated = options.debug_schedule_mutator(schedule, label)
                    if mutated is not None:
                        schedule = mutated
                if "schedule" in checks:
                    verify_schedule(blk, schedule, datapath, block=label)
            except Exception as exc:
                if not fallback:
                    if isinstance(exc, ReproError):
                        exc.with_context(stage="schedule", block=label)
                    raise
                diagnostics.append(
                    Diagnostic.from_error(exc, stage="schedule", block=label)
                )
                fallback_blocks.append(label)
                forced_scalar.add(position)
                schedule = scalar_schedule(blk)
            scheduled.append((item, schedule, ctx))

    # Phase 2 (Global+Layout only): data layout optimization.
    with perf_section("compile.layout"), TRACE.span("layout"):
        arenas = default_scalar_layout(pre)
        layout_plans: Dict[int, ArrayLayoutPlan] = {}
        if variant.uses_layout:
            schedules_only = [s for _, s, _ in scheduled if s is not None]
            candidate_arenas = optimized_scalar_layout(pre, schedules_only)
            arenas = candidate_arenas
            budget = options.layout_budget_elements
            for index, (item, schedule, ctx) in enumerate(scheduled):
                if schedule is None or ctx is None or index in forced_scalar:
                    continue
                label = f"b{index}"
                try:
                    with TRACE.span("block", block=label):
                        plan = plan_array_layout(pre, schedule, ctx, budget)
                except Exception as exc:
                    if not fallback:
                        if isinstance(exc, ReproError):
                            exc.with_context(stage="layout", block=label)
                        raise
                    # Layout is an optimization: skip it for the block
                    # and keep the (already verified) vector schedule.
                    diagnostics.append(
                        Diagnostic.from_error(
                            exc, stage="layout", block=label, action="skipped"
                        )
                    )
                    continue
                if not plan.replications:
                    continue
                budget -= plan.total_elements
                for replication in plan.replications:
                    pre.declare_array(
                        replication.new_name,
                        (replication.elements,),
                        pre.arrays[replication.source].type,
                    )
                layout_plans[index] = plan

    # Phase 3: code generation with the per-block cost gate.
    result_plan = ExecutablePlan(pre, arenas)
    used_schedules: List[Schedule] = []
    with perf_section("compile.codegen"), TRACE.span("codegen"):
        for index, (item, schedule, ctx) in enumerate(scheduled):
            label = f"b{index}"
            if index in forced_scalar:
                # An earlier stage already degraded this block; emit the
                # plain scalar lowering, bit-identical to Variant.SCALAR.
                result_plan.units.append(_scalar_item(item, pre))
                continue
            layout_plan = layout_plans.get(index)
            try:
                with TRACE.span("block", block=label):
                    unit, copies, used_schedule = _emit_item(
                        item, schedule, ctx, layout_plan, pre, machine,
                        arenas, options, stats, variant, block_label=label,
                    )
                if "plan" in checks:
                    for copy in copies:
                        verify_unit(
                            copy, pre, machine, result_plan, block=label
                        )
                    verify_unit(unit, pre, machine, result_plan, block=label)
            except Exception as exc:
                if not fallback:
                    if isinstance(exc, ReproError):
                        exc.with_context(stage="codegen", block=label)
                    raise
                diagnostics.append(
                    Diagnostic.from_error(exc, stage="codegen", block=label)
                )
                fallback_blocks.append(label)
                forced_scalar.add(index)
                result_plan.units.append(_scalar_item(item, pre))
                continue
            for copy in copies:
                # Replicated arrays are declared in `pre`, so the plan's
                # memory image allocates them like any other array; the
                # copy unit fills them before the kernel runs.
                result_plan.units.append(copy)
            result_plan.units.append(unit)
            if used_schedule is not None:
                used_schedules.append(used_schedule)
                stats.superword_statements += sum(
                    1 for _ in used_schedule.superwords()
                )
                stats.grouped_statements += sum(
                    sw.size for sw in used_schedule.superwords()
                )
    stats.blocks_total = len(scheduled)
    stats.total_statements = sum(
        len(s.block) for _, s, _ in scheduled if s is not None
    )
    stats.compile_seconds = time.perf_counter() - started

    result = CompileResult(result_plan, variant, machine, stats)
    result.schedules = used_schedules
    result.diagnostics = diagnostics
    result.fallback_blocks = fallback_blocks
    return result


def _scalar_item(item, program: Program):
    """The scalar lowering of one top-level item (fallback path)."""
    if isinstance(item, BasicBlock):
        return CompiledStraight(compile_scalar_block(item, program))
    return _scalar_loop(item, program)


def _compile_all_scalar(program: Program) -> ExecutablePlan:
    plan = ExecutablePlan(program, default_scalar_layout(program))
    for item in program.body:
        if isinstance(item, BasicBlock):
            plan.units.append(
                CompiledStraight(compile_scalar_block(item, program))
            )
        else:
            plan.units.append(_scalar_loop(item, program))
    return plan


def _scalar_loop(loop: Loop, program: Program) -> CompiledLoop:
    compiled = CompiledLoop(
        _spec(loop), body=compile_scalar_block(loop.body, program)
    )
    if loop.inner is not None:
        compiled.inner = _scalar_loop(loop.inner, program)
    return compiled


def _emit_item(
    item,
    schedule: Optional[Schedule],
    ctx: Optional[LoopContext],
    layout_plan: Optional[ArrayLayoutPlan],
    program: Program,
    machine: MachineModel,
    arenas: Dict[str, ScalarArena],
    options: CompilerOptions,
    stats: CompileStats,
    variant: Variant,
    block_label: Optional[str] = None,
):
    """Compile one top-level item; returns (unit, copies, schedule_used)."""
    copies: List[CompiledCopy] = []
    # Section 4.3: only the holistic framework exploits indirect
    # (register-permutation) superword reuse; the greedy baselines
    # re-materialize reordered packs. CompilerOptions.indirect_reuse
    # overrides for ablations.
    shuffle_reuse = variant in (Variant.GLOBAL, Variant.GLOBAL_LAYOUT)
    if options.indirect_reuse is not None:
        shuffle_reuse = options.indirect_reuse

    if isinstance(item, BasicBlock):
        assert schedule is not None
        scalar_instrs = compile_scalar_block(item, program)
        codegen = VectorCodegen(
            program, machine, arenas, None,
            allow_shuffle_reuse=shuffle_reuse,
            prov_block=block_label,
        )
        _pre, body = codegen.compile(schedule)
        vector_unit = CompiledStraight(_pre + body)
        scalar_unit = CompiledStraight(scalar_instrs)
        if options.cost_gate:
            vector_cost = _unit_cycles(vector_unit, machine)
            scalar_cost = _unit_cycles(scalar_unit, machine)
            if TRACE.enabled:
                TRACE.event(
                    "codegen.gate",
                    block=block_label,
                    vector_cycles=round(vector_cost, 3),
                    scalar_cycles=round(scalar_cost, 3),
                    vectorized=vector_cost < scalar_cost,
                )
            if vector_cost >= scalar_cost:
                return scalar_unit, copies, None
        stats.blocks_vectorized += 1
        return vector_unit, copies, schedule

    # A loop nest: SLP applies to the innermost block; outer-level blocks
    # are compiled scalar (the workloads keep their work innermost).
    assert isinstance(item, Loop) and schedule is not None and ctx is not None
    chain = _loop_chain(item)
    innermost = chain[-1]

    block = innermost.body
    used_schedule = schedule
    if layout_plan is not None and layout_plan.rewrites:
        block, used_schedule = apply_array_layout(
            block, schedule, layout_plan
        )
        for replication in layout_plan.replications:
            copies.append(
                CompiledCopy(replication, options.layout_amortization)
            )

    codegen = VectorCodegen(
        program, machine, arenas, innermost.index,
        allow_shuffle_reuse=shuffle_reuse,
        loop=_spec(innermost),
        prov_block=block_label,
    )
    preheader, body = codegen.compile(used_schedule)
    vector_inner = CompiledLoop(_spec(innermost), preheader, body)
    scalar_inner = CompiledLoop(
        _spec(innermost), body=compile_scalar_block(innermost.body, program)
    )

    if options.cost_gate:
        vector_cost = _unit_cycles(vector_inner, machine) + sum(
            _copy_cycles(c, machine) for c in copies
        )
        scalar_cost = _unit_cycles(scalar_inner, machine)
        if TRACE.enabled:
            TRACE.event(
                "codegen.gate",
                block=block_label,
                vector_cycles=round(vector_cost, 3),
                scalar_cycles=round(scalar_cost, 3),
                vectorized=vector_cost < scalar_cost,
            )
        if vector_cost >= scalar_cost:
            copies = []
            vector_inner = scalar_inner
            used_schedule = None
        else:
            stats.blocks_vectorized += 1
            stats.replications += len(copies)
    else:
        stats.blocks_vectorized += 1
        stats.replications += len(copies)

    unit: CompiledLoop = vector_inner
    for loop in reversed(chain[:-1]):
        unit = CompiledLoop(
            _spec(loop),
            body=compile_scalar_block(loop.body, program),
            inner=unit,
        )
    return unit, copies, used_schedule


def _unit_cycles(unit, machine: MachineModel) -> float:
    from .vm.codegen import _static_unit_cycles

    return _static_unit_cycles(unit, machine)


def _copy_cycles(copy: CompiledCopy, machine: MachineModel) -> float:
    from .vm.codegen import _static_unit_cycles

    return _static_unit_cycles(copy, machine)
