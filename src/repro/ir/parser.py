"""A tiny C-like front end for writing kernels as text.

The dialect covers exactly what the paper's examples need: global array
and scalar declarations, counted ``for`` loops, single-level ``if`` /
``else`` regions, and assignment statements over ``+ - * /``,
comparisons, ``min``/``max``/``sqrt``/``abs``/``select``, scalars,
constants, and affine array references::

    float A[1024]; float B[1024];
    float a, b;
    for (i = 0; i < 256; i += 1) {
        a = A[4*i];
        b = A[4*i + 3];
        if (a > b) {
            B[2*i] = a - b;
        } else {
            B[2*i] = b - a;
        }
    }

``parse_program`` returns a :class:`repro.ir.block.Program`. Parse
failures raise :class:`ParseError` carrying the 1-based line/column of
the offending token.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from .block import BasicBlock, IfRegion, Loop, Program
from .expr import (
    Affine,
    ArrayRef,
    BinOp,
    COMPARE_OPS,
    Const,
    Expr,
    Select,
    UnOp,
    Var,
)
from .stmt import Statement
from .types import NAMED_TYPES, ScalarType

# Deprecation shim: ``ParseError`` moved to :mod:`repro.errors` (it is
# now part of the structured exception hierarchy). Importing it from
# ``repro.ir.parser`` — its historical home — keeps working.
from ..errors import IRError, ParseError


_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<num>\d+\.\d+|\d+)"
    r"|(?P<ident>[A-Za-z_]\w*)"
    # Comments must precede `op`: otherwise the single-char `/` operator
    # consumes the first slash of `//` and the comment never matches.
    r"|(?P<comment>//[^\n]*|/\*.*?\*/)"
    r"|(?P<op>\+=|<=|>=|==|!=|[-+*/=;,<>(){}\[\]])"
    r")",
    re.DOTALL,
)

#: Function-call names of the expression grammar.
_CALL_NAMES = ("min", "max", "sqrt", "abs", "select")


def _line_col(src: str, offset: int) -> Tuple[int, int]:
    """1-based (line, column) of a character offset."""
    line = src.count("\n", 0, offset) + 1
    column = offset - (src.rfind("\n", 0, offset) + 1) + 1
    return line, column


def _tokenize(
    src: str,
) -> Tuple[List[Tuple[str, str]], List[Tuple[int, int]]]:
    tokens: List[Tuple[str, str]] = []
    positions: List[Tuple[int, int]] = []
    pos = 0
    while pos < len(src):
        match = _TOKEN_RE.match(src, pos)
        if match is None:
            rest = src[pos:]
            if rest.strip():
                offset = pos + (len(rest) - len(rest.lstrip()))
                line, column = _line_col(src, offset)
                raise ParseError(
                    f"unexpected character {src[offset]!r}",
                    line=line,
                    column=column,
                )
            break
        pos = match.end()
        if match.lastgroup == "comment":
            continue
        kind = match.lastgroup
        if kind is not None:
            tokens.append((kind, match.group(kind)))
            positions.append(_line_col(src, match.start(kind)))
    tokens.append(("eof", ""))
    positions.append(_line_col(src, len(src)))
    return tokens, positions


# A parsed operand is either a fully-typed Expr or a raw Python number
# whose type is decided by the first typed operand it meets.
Pending = Union[Expr, float, int]


class _Parser:
    def __init__(self, src: str):
        self.tokens, self.positions = _tokenize(src)
        self.pos = 0
        self.program = Program()
        self.loop_indices: List[str] = []
        self._sid = 0

    # -- token helpers ---------------------------------------------------------

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str]:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def _err(self, message: str, index: Optional[int] = None) -> None:
        """Raise a :class:`ParseError` located at a token (default: the
        current one)."""
        if index is None:
            index = self.pos
        index = max(0, min(index, len(self.positions) - 1))
        line, column = self.positions[index]
        raise ParseError(message, line=line, column=column)

    def expect(self, text: str) -> None:
        kind, value = self.peek()
        if value != text:
            found = value if value else "end of input"
            self._err(f"expected {text!r}, found {found!r}")
        self.pos += 1

    def accept(self, text: str) -> bool:
        if self.peek()[1] == text:
            self.pos += 1
            return True
        return False

    # -- grammar --------------------------------------------------------------

    def parse(self) -> Program:
        while self.peek()[0] != "eof":
            kind, value = self.peek()
            if value in NAMED_TYPES:
                self._declaration()
            elif value == "for":
                loop = self._loop()
                self.program.add(loop)
            else:
                self._flush_stmt_into_top()
        return self.program

    def _flush_stmt_into_top(self) -> None:
        block = BasicBlock()
        sid = 0
        while self.peek()[0] != "eof" and self.peek()[1] not in NAMED_TYPES \
                and self.peek()[1] != "for":
            if self.peek()[1] == "if":
                region = self._if_region(sid)
                sid += len(region.then_body) + len(region.else_body)
                block.append(region)
            else:
                block.append(self._statement(sid))
                sid += 1
        if len(block):
            self.program.add(block)

    def _declaration(self) -> None:
        _, type_name = self.next()
        elem = NAMED_TYPES[type_name]
        while True:
            kind, name = self.next()
            if kind != "ident":
                self._err(
                    f"expected identifier, found {name!r}", self.pos - 1
                )
            if self.peek()[1] == "[":
                shape: List[int] = []
                while self.accept("["):
                    kind, dim = self.next()
                    if kind != "num":
                        self._err(
                            "array dimensions must be literals", self.pos - 1
                        )
                    shape.append(int(dim))
                    self.expect("]")
                self.program.declare_array(name, tuple(shape), elem)
            else:
                self.program.declare_scalar(name, elem)
            if self.accept(","):
                continue
            self.expect(";")
            break

    def _loop(self) -> Loop:
        self.expect("for")
        self.expect("(")
        _, index = self.next()
        self.expect("=")
        start = self._int_literal()
        self.expect(";")
        _, index2 = self.next()
        if index2 != index:
            self._err(
                f"loop condition tests {index2!r}, not {index!r}",
                self.pos - 1,
            )
        self.expect("<")
        stop = self._int_literal()
        self.expect(";")
        _, index3 = self.next()
        if index3 != index:
            self._err(
                f"loop increment steps {index3!r}, not {index!r}",
                self.pos - 1,
            )
        self.expect("+=")
        step = self._int_literal()
        self.expect(")")
        self.expect("{")
        self.loop_indices.append(index)
        body = BasicBlock()
        sid = 0
        inner: Optional[Loop] = None
        while not self.accept("}"):
            if self.peek()[0] == "eof":
                self.expect("}")
            if self.peek()[1] == "for":
                if inner is not None:
                    self._err(
                        "a loop body may contain at most one nested loop"
                    )
                inner = self._loop()
            elif self.peek()[1] == "if":
                region = self._if_region(sid)
                sid += len(region.then_body) + len(region.else_body)
                body.append(region)
            else:
                body.append(self._statement(sid))
                sid += 1
        self.loop_indices.pop()
        return Loop(index, start, stop, step, body, inner=inner)

    def _if_region(self, sid_start: int) -> IfRegion:
        """``if (cond) { stmts } [else { stmts }]`` — single level only."""
        if_index = self.pos
        self.expect("if")
        self.expect("(")
        cond = self._expr()
        if not isinstance(cond, Expr):
            self._err(
                "if condition must reference at least one typed operand",
                if_index,
            )
        self.expect(")")
        self.expect("{")
        then_body: List[Statement] = []
        sid = sid_start
        while not self.accept("}"):
            self._check_branch_statement()
            then_body.append(self._statement(sid))
            sid += 1
        if not then_body:
            self._err("empty then-branch", if_index)
        else_body: List[Statement] = []
        if self.accept("else"):
            self.expect("{")
            while not self.accept("}"):
                self._check_branch_statement()
                else_body.append(self._statement(sid))
                sid += 1
        try:
            return IfRegion(cond, tuple(then_body), tuple(else_body))
        except IRError as exc:
            self._err(str(exc), if_index)

    def _check_branch_statement(self) -> None:
        kind, value = self.peek()
        if kind == "eof":
            self.expect("}")
        if value in ("if", "for"):
            self._err(
                f"nested {value!r} inside an if branch is not supported "
                "(regions are single-level)"
            )

    def _int_literal(self) -> int:
        negative = self.accept("-")
        kind, value = self.next()
        if kind != "num" or "." in value:
            self._err(
                f"expected integer literal, found {value!r}", self.pos - 1
            )
        return -int(value) if negative else int(value)

    def _statement(self, sid: int) -> Statement:
        kind, name = self.next()
        if kind != "ident":
            found = name if name else "end of input"
            self._err(
                f"expected assignment target, found {found!r}", self.pos - 1
            )
        target: Union[Var, ArrayRef]
        if name in self.program.arrays:
            target = self._array_ref(name)
        elif name in self.program.scalars:
            target = Var(name, self.program.scalars[name].type)
        else:
            self._err(
                f"assignment to undeclared variable {name!r}", self.pos - 1
            )
        self.expect("=")
        value = self._expr()
        self.expect(";")
        expr = _coerce(value, target.type)
        return Statement(sid, target, expr)

    def _array_ref(self, name: str) -> ArrayRef:
        decl = self.program.arrays[name]
        subscripts: List[Affine] = []
        while self.accept("["):
            subscripts.append(self._affine())
            self.expect("]")
        if len(subscripts) != len(decl.shape):
            self._err(
                f"{name} expects {len(decl.shape)} subscripts, "
                f"got {len(subscripts)}",
                self.pos - 1,
            )
        return ArrayRef(name, tuple(subscripts), decl.type)

    # Affine subscript grammar: sums/differences of INT, index, INT*index.
    def _affine(self) -> Affine:
        total = self._affine_term()
        while self.peek()[1] in ("+", "-"):
            _, op = self.next()
            term = self._affine_term()
            total = total + term if op == "+" else total - term
        return total

    def _affine_term(self) -> Affine:
        negative = self.accept("-")
        kind, value = self.next()
        if kind == "num":
            if "." in value:
                self._err("array subscripts must be integral", self.pos - 1)
            scale = int(value)
            if self.accept("*"):
                kind, index = self.next()
                if kind != "ident":
                    self._err("expected loop index after '*'", self.pos - 1)
                term = Affine.var(self._check_index(index), scale)
            else:
                term = Affine((), scale)
        elif kind == "ident":
            if self.accept("*"):
                scale = self._int_literal()
                term = Affine.var(self._check_index(value), scale)
            else:
                term = Affine.var(self._check_index(value))
        elif value == "(":
            term = self._affine()
            self.expect(")")
        else:
            self._err(
                f"unexpected {value!r} in array subscript", self.pos - 1
            )
        return -term if negative else term

    def _check_index(self, name: str) -> str:
        if name not in self.loop_indices:
            self._err(
                f"{name!r} used as a subscript index but is not an "
                "enclosing loop index",
                self.pos - 1,
            )
        return name

    # Expression grammar with ordinary precedence. Comparisons bind
    # loosest and do not chain (`a < b < c` is rejected; parenthesize).
    def _expr(self) -> Pending:
        value = self._additive()
        if self.peek()[1] in COMPARE_OPS:
            _, op = self.next()
            value = _combine(op, value, self._additive())
            if self.peek()[1] in COMPARE_OPS:
                self._err("comparisons do not chain; parenthesize")
        return value

    def _additive(self) -> Pending:
        value = self._term()
        while self.peek()[1] in ("+", "-"):
            _, op = self.next()
            value = _combine(op, value, self._term())
        return value

    def _term(self) -> Pending:
        value = self._factor()
        while self.peek()[1] in ("*", "/"):
            _, op = self.next()
            value = _combine(op, value, self._factor())
        return value

    def _factor(self) -> Pending:
        kind, value = self.peek()
        if value == "(":
            self.next()
            inner = self._expr()
            self.expect(")")
            return inner
        if value == "-":
            self.next()
            operand = self._factor()
            if isinstance(operand, Expr):
                return UnOp("neg", operand)
            return -operand
        if kind == "num":
            self.next()
            return float(value) if "." in value else int(value)
        if kind == "ident":
            self.next()
            if value in _CALL_NAMES:
                return self._call(value)
            if value in self.program.arrays:
                return self._array_ref(value)
            if value in self.program.scalars:
                return Var(value, self.program.scalars[value].type)
            self._err(f"undeclared identifier {value!r}", self.pos - 1)
        self._err(f"unexpected {value!r} in expression")

    def _call(self, fn: str) -> Pending:
        self.expect("(")
        first = self._expr()
        if fn == "select":
            self.expect(",")
            second = self._expr()
            self.expect(",")
            third = self._expr()
            self.expect(")")
            return _select(first, second, third)
        if fn in ("min", "max"):
            self.expect(",")
            second = self._expr()
            self.expect(")")
            return _combine(fn, first, second)
        self.expect(")")
        if not isinstance(first, Expr):
            self._err(f"{fn}() of a bare literal is not supported")
        return UnOp(fn, first)


def _coerce(value: Pending, elem: ScalarType) -> Expr:
    if isinstance(value, Expr):
        return value
    return Const(value, elem)


def _combine(op: str, left: Pending, right: Pending) -> Pending:
    if not isinstance(left, Expr) and not isinstance(right, Expr):
        # Constant fold untyped literals. Comparisons fold to the mask
        # values (1.0 / 0.0) the runtime produces.
        folds = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a / b,
            "min": min,
            "max": max,
            "<": lambda a, b: 1.0 if a < b else 0.0,
            "<=": lambda a, b: 1.0 if a <= b else 0.0,
            ">": lambda a, b: 1.0 if a > b else 0.0,
            ">=": lambda a, b: 1.0 if a >= b else 0.0,
            "==": lambda a, b: 1.0 if a == b else 0.0,
            "!=": lambda a, b: 1.0 if a != b else 0.0,
        }
        return folds[op](left, right)
    if isinstance(left, Expr) and not isinstance(right, Expr):
        right = Const(right, left.type)
    elif isinstance(right, Expr) and not isinstance(left, Expr):
        left = Const(left, right.type)
    assert isinstance(left, Expr) and isinstance(right, Expr)
    return BinOp(op, left, right)


def _select(cond: Pending, on_true: Pending, on_false: Pending) -> Pending:
    operands = (cond, on_true, on_false)
    typed = next((o for o in operands if isinstance(o, Expr)), None)
    if typed is None:
        # All-literal select folds like the other operators.
        return on_true if cond != 0 else on_false
    elem = typed.type
    cond, on_true, on_false = (_coerce(o, elem) for o in operands)
    return Select(cond, on_true, on_false)


def parse_program(src: str) -> Program:
    """Parse DSL text into a :class:`Program`."""
    return _Parser(src).parse()


def parse_block(src: str, declarations: str = "") -> BasicBlock:
    """Parse a straight-line statement sequence into one basic block.

    ``declarations`` supplies the array/scalar declarations the statements
    reference. Convenient for tests working at the basic-block level.
    """
    program = parse_program(declarations + "\n" + src)
    blocks = [item for item in program.body if isinstance(item, BasicBlock)]
    if len(blocks) != 1:
        raise ParseError(
            f"expected exactly one straight-line block, found {len(blocks)}"
        )
    return blocks[0]
