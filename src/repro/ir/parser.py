"""A tiny C-like front end for writing kernels as text.

The dialect covers exactly what the paper's examples need: global array
and scalar declarations, counted ``for`` loops, and assignment statements
over ``+ - * /``, ``min``/``max``/``sqrt``/``abs``, scalars, constants,
and affine array references::

    float A[1024]; float B[1024];
    float a, b;
    for (i = 0; i < 256; i += 1) {
        a = A[4*i];
        b = A[4*i + 3];
        B[2*i] = a * b;
    }

``parse_program`` returns a :class:`repro.ir.block.Program`.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from .block import BasicBlock, Loop, Program
from .expr import Affine, ArrayRef, BinOp, Const, Expr, UnOp, Var
from .stmt import Statement
from .types import NAMED_TYPES, ScalarType

# Deprecation shim: ``ParseError`` moved to :mod:`repro.errors` (it is
# now part of the structured exception hierarchy). Importing it from
# ``repro.ir.parser`` — its historical home — keeps working.
from ..errors import ParseError


_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<num>\d+\.\d+|\d+)"
    r"|(?P<ident>[A-Za-z_]\w*)"
    # Comments must precede `op`: otherwise the single-char `/` operator
    # consumes the first slash of `//` and the comment never matches.
    r"|(?P<comment>//[^\n]*|/\*.*?\*/)"
    r"|(?P<op>\+=|<=|>=|==|[-+*/=;,<>(){}\[\]])"
    r")",
    re.DOTALL,
)


def _tokenize(src: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(src):
        match = _TOKEN_RE.match(src, pos)
        if match is None:
            if src[pos:].strip():
                raise ParseError(f"unexpected character {src[pos]!r} at {pos}")
            break
        pos = match.end()
        if match.lastgroup == "comment":
            continue
        kind = match.lastgroup
        if kind is not None:
            tokens.append((kind, match.group(kind)))
    tokens.append(("eof", ""))
    return tokens


# A parsed operand is either a fully-typed Expr or a raw Python number
# whose type is decided by the first typed operand it meets.
Pending = Union[Expr, float, int]


class _Parser:
    def __init__(self, src: str):
        self.tokens = _tokenize(src)
        self.pos = 0
        self.program = Program()
        self.loop_indices: List[str] = []
        self._sid = 0

    # -- token helpers ---------------------------------------------------------

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str]:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, text: str) -> None:
        kind, value = self.next()
        if value != text:
            raise ParseError(f"expected {text!r}, found {value!r}")

    def accept(self, text: str) -> bool:
        if self.peek()[1] == text:
            self.pos += 1
            return True
        return False

    # -- grammar --------------------------------------------------------------

    def parse(self) -> Program:
        while self.peek()[0] != "eof":
            kind, value = self.peek()
            if value in NAMED_TYPES:
                self._declaration()
            elif value == "for":
                loop = self._loop()
                self.program.add(loop)
            else:
                self._flush_stmt_into_top()
        return self.program

    def _flush_stmt_into_top(self) -> None:
        block = BasicBlock()
        while self.peek()[0] != "eof" and self.peek()[1] not in NAMED_TYPES \
                and self.peek()[1] != "for":
            block.append(self._statement(len(block)))
        if len(block):
            self.program.add(block)

    def _declaration(self) -> None:
        _, type_name = self.next()
        elem = NAMED_TYPES[type_name]
        while True:
            kind, name = self.next()
            if kind != "ident":
                raise ParseError(f"expected identifier, found {name!r}")
            if self.peek()[1] == "[":
                shape: List[int] = []
                while self.accept("["):
                    kind, dim = self.next()
                    if kind != "num":
                        raise ParseError("array dimensions must be literals")
                    shape.append(int(dim))
                    self.expect("]")
                self.program.declare_array(name, tuple(shape), elem)
            else:
                self.program.declare_scalar(name, elem)
            if self.accept(","):
                continue
            self.expect(";")
            break

    def _loop(self) -> Loop:
        self.expect("for")
        self.expect("(")
        _, index = self.next()
        self.expect("=")
        start = self._int_literal()
        self.expect(";")
        _, index2 = self.next()
        if index2 != index:
            raise ParseError(f"loop condition tests {index2!r}, not {index!r}")
        self.expect("<")
        stop = self._int_literal()
        self.expect(";")
        _, index3 = self.next()
        if index3 != index:
            raise ParseError(f"loop increment steps {index3!r}, not {index!r}")
        self.expect("+=")
        step = self._int_literal()
        self.expect(")")
        self.expect("{")
        self.loop_indices.append(index)
        body = BasicBlock()
        inner: Optional[Loop] = None
        while not self.accept("}"):
            if self.peek()[1] == "for":
                if inner is not None:
                    raise ParseError(
                        "a loop body may contain at most one nested loop"
                    )
                inner = self._loop()
            else:
                body.append(self._statement(len(body)))
        self.loop_indices.pop()
        return Loop(index, start, stop, step, body, inner=inner)

    def _int_literal(self) -> int:
        negative = self.accept("-")
        kind, value = self.next()
        if kind != "num" or "." in value:
            raise ParseError(f"expected integer literal, found {value!r}")
        return -int(value) if negative else int(value)

    def _statement(self, sid: int) -> Statement:
        kind, name = self.next()
        if kind != "ident":
            raise ParseError(f"expected assignment target, found {name!r}")
        target: Union[Var, ArrayRef]
        if name in self.program.arrays:
            target = self._array_ref(name)
        elif name in self.program.scalars:
            target = Var(name, self.program.scalars[name].type)
        else:
            raise ParseError(f"assignment to undeclared variable {name!r}")
        self.expect("=")
        value = self._expr()
        self.expect(";")
        expr = _coerce(value, target.type)
        return Statement(sid, target, expr)

    def _array_ref(self, name: str) -> ArrayRef:
        decl = self.program.arrays[name]
        subscripts: List[Affine] = []
        while self.accept("["):
            subscripts.append(self._affine())
            self.expect("]")
        if len(subscripts) != len(decl.shape):
            raise ParseError(
                f"{name} expects {len(decl.shape)} subscripts, "
                f"got {len(subscripts)}"
            )
        return ArrayRef(name, tuple(subscripts), decl.type)

    # Affine subscript grammar: sums/differences of INT, index, INT*index.
    def _affine(self) -> Affine:
        total = self._affine_term()
        while self.peek()[1] in ("+", "-"):
            _, op = self.next()
            term = self._affine_term()
            total = total + term if op == "+" else total - term
        return total

    def _affine_term(self) -> Affine:
        negative = self.accept("-")
        kind, value = self.next()
        if kind == "num":
            if "." in value:
                raise ParseError("array subscripts must be integral")
            scale = int(value)
            if self.accept("*"):
                kind, index = self.next()
                if kind != "ident":
                    raise ParseError("expected loop index after '*'")
                term = Affine.var(self._check_index(index), scale)
            else:
                term = Affine((), scale)
        elif kind == "ident":
            if self.accept("*"):
                scale = self._int_literal()
                term = Affine.var(self._check_index(value), scale)
            else:
                term = Affine.var(self._check_index(value))
        elif value == "(":
            term = self._affine()
            self.expect(")")
        else:
            raise ParseError(f"unexpected {value!r} in array subscript")
        return -term if negative else term

    def _check_index(self, name: str) -> str:
        if name not in self.loop_indices:
            raise ParseError(
                f"{name!r} used as a subscript index but is not an "
                "enclosing loop index"
            )
        return name

    # Expression grammar with ordinary precedence.
    def _expr(self) -> Pending:
        value = self._term()
        while self.peek()[1] in ("+", "-"):
            _, op = self.next()
            value = _combine(op, value, self._term())
        return value

    def _term(self) -> Pending:
        value = self._factor()
        while self.peek()[1] in ("*", "/"):
            _, op = self.next()
            value = _combine(op, value, self._factor())
        return value

    def _factor(self) -> Pending:
        kind, value = self.peek()
        if value == "(":
            self.next()
            inner = self._expr()
            self.expect(")")
            return inner
        if value == "-":
            self.next()
            operand = self._factor()
            if isinstance(operand, Expr):
                return UnOp("neg", operand)
            return -operand
        if kind == "num":
            self.next()
            return float(value) if "." in value else int(value)
        if kind == "ident":
            self.next()
            if value in ("min", "max", "sqrt", "abs"):
                return self._call(value)
            if value in self.program.arrays:
                return self._array_ref(value)
            if value in self.program.scalars:
                return Var(value, self.program.scalars[value].type)
            raise ParseError(f"undeclared identifier {value!r}")
        raise ParseError(f"unexpected {value!r} in expression")

    def _call(self, fn: str) -> Pending:
        self.expect("(")
        first = self._expr()
        if fn in ("min", "max"):
            self.expect(",")
            second = self._expr()
            self.expect(")")
            return _combine(fn, first, second)
        self.expect(")")
        if not isinstance(first, Expr):
            raise ParseError(f"{fn}() of a bare literal is not supported")
        return UnOp(fn, first)


def _coerce(value: Pending, elem: ScalarType) -> Expr:
    if isinstance(value, Expr):
        return value
    return Const(value, elem)


def _combine(op: str, left: Pending, right: Pending) -> Pending:
    if not isinstance(left, Expr) and not isinstance(right, Expr):
        # Constant fold untyped literals.
        folds = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a / b,
            "min": min,
            "max": max,
        }
        return folds[op](left, right)
    if isinstance(left, Expr) and not isinstance(right, Expr):
        right = Const(right, left.type)
    elif isinstance(right, Expr) and not isinstance(left, Expr):
        left = Const(left, right.type)
    assert isinstance(left, Expr) and isinstance(right, Expr)
    return BinOp(op, left, right)


def parse_program(src: str) -> Program:
    """Parse DSL text into a :class:`Program`."""
    return _Parser(src).parse()


def parse_block(src: str, declarations: str = "") -> BasicBlock:
    """Parse a straight-line statement sequence into one basic block.

    ``declarations`` supplies the array/scalar declarations the statements
    reference. Convenient for tests working at the basic-block level.
    """
    program = parse_program(declarations + "\n" + src)
    blocks = [item for item in program.body if isinstance(item, BasicBlock)]
    if len(blocks) != 1:
        raise ParseError(
            f"expected exactly one straight-line block, found {len(blocks)}"
        )
    return blocks[0]
