"""Basic blocks, loops, and whole programs.

The compiler framework's input is "a set of basic blocks of a program"
(Section 3); loop-intensive code reaches that form via unrolling
(``repro.transform.unroll``). A :class:`Program` additionally carries the
array/scalar declarations the virtual machine needs to execute the code.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import IRError, StatementLookupError
from .expr import Affine, ArrayRef, Expr, Var
from .stmt import Statement
from .types import ScalarType


def _base_name(node: Union[Var, ArrayRef]) -> str:
    """The storage a Var or ArrayRef touches, by name."""
    return node.name if isinstance(node, Var) else node.array


@dataclass(frozen=True)
class IfRegion:
    """A single-level conditional region inside a basic block.

    Branch bodies hold plain statements only — nested regions are
    structurally unrepresentable, which is exactly the single-level form
    if-conversion (``repro.transform.if_convert``) flattens into
    predicated selects. Regions exist only between parsing and
    if-conversion; every downstream layer (SLP, scheduling, the VM
    engines) sees straight-line blocks.
    """

    cond: Expr
    then_body: Tuple[Statement, ...]
    else_body: Tuple[Statement, ...] = ()

    def __post_init__(self) -> None:
        if not self.then_body:
            raise IRError("if region requires a non-empty then-branch")
        hazard = self._condition_write_hazard()
        if hazard is not None:
            raise IRError(
                f"branch statement {hazard} assigns to "
                f"{_base_name(hazard.target)!r}, which the region condition "
                f"({self.cond}) reads; the predicated form would "
                "re-evaluate the condition against the mutated value"
            )

    @property
    def mergeable(self) -> bool:
        """True when then/else bodies pair up into select-merges: same
        length, and the k-th statements of both branches write
        structurally equal targets."""
        if not self.else_body:
            return False
        if len(self.then_body) != len(self.else_body):
            return False
        return all(
            t.target == e.target
            for t, e in zip(self.then_body, self.else_body)
        )

    def _condition_write_hazard(self) -> Optional[Statement]:
        """The first branch statement whose write could change a later
        re-evaluation of ``cond`` in the if-converted form, or None.

        If-conversion embeds ``cond`` in every lowered select, so a
        statement that writes a condition operand poisons every select
        *after* it. Only the final lowered statement is exempt: for the
        select-merge shape that is the last then/else pair, otherwise
        the last statement in then-before-else order. This keeps the
        common in-place clamp (``if (A[i] > c) A[i] = c;``) legal while
        rejecting genuinely divergent regions.
        """
        cond_bases = {
            _base_name(leaf)
            for leaf in self.cond.leaves()
            if isinstance(leaf, (Var, ArrayRef))
        }
        if not cond_bases:
            return None
        stmts = list(self.then_body) + list(self.else_body)
        if self.mergeable:
            allowed = {len(self.then_body) - 1, len(stmts) - 1}
        else:
            allowed = {len(stmts) - 1}
        for pos, stmt in enumerate(stmts):
            if pos in allowed:
                continue
            if _base_name(stmt.target) in cond_bases:
                return stmt
        return None

    def statements(self) -> Iterator[Statement]:
        yield from self.then_body
        yield from self.else_body

    def sids(self) -> Tuple[int, ...]:
        return tuple(s.sid for s in self.statements())

    def substitute_indices(self, bindings: Mapping[str, Affine]) -> "IfRegion":
        return IfRegion(
            self.cond.substitute_indices(bindings),
            tuple(s.substitute_indices(bindings) for s in self.then_body),
            tuple(s.substitute_indices(bindings) for s in self.else_body),
        )

    def __str__(self) -> str:
        lines = [f"if ({self.cond}) {{"]
        lines += [f"  {s}" for s in self.then_body]
        if self.else_body:
            lines.append("} else {")
            lines += [f"  {s}" for s in self.else_body]
        lines.append("}")
        return "\n".join(lines)


#: What a basic block may hold: straight-line statements plus (before
#: if-conversion) single-level conditional regions.
BlockItem = Union[Statement, IfRegion]


def _item_sids(item: BlockItem) -> Tuple[int, ...]:
    if isinstance(item, IfRegion):
        return item.sids()
    return (item.sid,)


class BasicBlock:
    """An ordered sequence of statements with unique sids.

    Before if-conversion the sequence may also contain
    :class:`IfRegion` items; sids stay unique across the whole block
    including region branches. Code that runs after if-conversion may
    keep iterating the block as plain statements.
    """

    def __init__(self, statements: Sequence[BlockItem] = ()):
        self.statements: List[BlockItem] = []
        for stmt in statements:
            self.append(stmt)

    def append(self, stmt: BlockItem) -> None:
        taken = {sid for item in self.statements for sid in _item_sids(item)}
        for sid in _item_sids(stmt):
            if sid in taken:
                raise IRError(f"duplicate sid {sid} in basic block")
            taken.add(sid)
        self.statements.append(stmt)

    @property
    def has_regions(self) -> bool:
        return any(isinstance(item, IfRegion) for item in self.statements)

    def flat_statements(self) -> Iterator[Statement]:
        """Every statement in program order, descending into regions."""
        for item in self.statements:
            if isinstance(item, IfRegion):
                yield from item.statements()
            else:
                yield item

    def __iter__(self) -> Iterator[Statement]:
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)

    def __getitem__(self, sid: int) -> Statement:
        for stmt in self.flat_statements():
            if stmt.sid == sid:
                return stmt
        raise StatementLookupError(f"no statement with sid {sid}")

    def position(self, sid: int) -> int:
        """Program order position of a statement (dependence direction)."""
        for pos, stmt in enumerate(self.statements):
            if isinstance(stmt, Statement) and stmt.sid == sid:
                return pos
        raise StatementLookupError(f"no statement with sid {sid}")

    def replace_statement(self, stmt: Statement) -> "BasicBlock":
        """A new block with the same-order statement of that sid swapped."""
        return BasicBlock(
            [
                stmt
                if isinstance(s, Statement) and s.sid == stmt.sid
                else s
                for s in self.statements
            ]
        )

    def renumbered(self, start: int = 0) -> "BasicBlock":
        items: List[BlockItem] = []
        sid = start
        for item in self.statements:
            if isinstance(item, IfRegion):
                then_body = []
                for s in item.then_body:
                    then_body.append(s.with_sid(sid))
                    sid += 1
                else_body = []
                for s in item.else_body:
                    else_body.append(s.with_sid(sid))
                    sid += 1
                items.append(
                    IfRegion(item.cond, tuple(then_body), tuple(else_body))
                )
            else:
                items.append(item.with_sid(sid))
                sid += 1
        return BasicBlock(items)

    def __eq__(self, other: object) -> bool:
        # Structural: two blocks are equal when their statement lists
        # are. Statements are frozen dataclasses, so this recurses all
        # the way down — which is what lets a pickled CompileResult
        # (e.g. one returned over the service wire or from the artifact
        # store) compare ``==`` to a locally compiled one. Hashing stays
        # identity-based: no existing code keys containers by
        # structurally-equal-but-distinct blocks, and identity hashing
        # keeps that behaviour unchanged.
        if not isinstance(other, BasicBlock):
            return NotImplemented
        return self.statements == other.statements

    __hash__ = object.__hash__

    def __str__(self) -> str:
        return "\n".join(str(s) for s in self.statements)


@dataclass
class Loop:
    """A counted loop ``for (index = start; index < stop; index += step)``.

    The body is a single basic block plus optional nested loops; the
    workloads in this reproduction (like the paper's, after SUIF's
    preprocessing) are perfect or near-perfect affine nests.
    """

    index: str
    start: int
    stop: int
    step: int
    body: BasicBlock
    inner: Optional["Loop"] = None

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise IRError("only positive loop steps are supported")

    @property
    def trip_count(self) -> int:
        if self.stop <= self.start:
            return 0
        return (self.stop - self.start + self.step - 1) // self.step

    def iter_values(self) -> Iterator[int]:
        return iter(range(self.start, self.stop, self.step))

    def indices(self) -> Tuple[str, ...]:
        """Loop indices from this (outermost) level inwards."""
        inner = self.inner.indices() if self.inner else ()
        return (self.index,) + inner

    def innermost(self) -> "Loop":
        return self.inner.innermost() if self.inner else self

    def with_body(self, body: BasicBlock) -> "Loop":
        return replace(self, body=body)


@dataclass(frozen=True)
class ArrayDecl:
    """A declared array: name, dimension sizes, element type."""

    name: str
    shape: Tuple[int, ...]
    type: ScalarType

    @property
    def size(self) -> int:
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    def flatten_index(self, subscript_values: Sequence[int]) -> int:
        """Row-major flattening; the default layout assumed in Section 5."""
        if len(subscript_values) != len(self.shape):
            raise IRError(
                f"{self.name} has {len(self.shape)} dims, "
                f"got {len(subscript_values)} subscripts"
            )
        flat = 0
        for value, dim in zip(subscript_values, self.shape):
            flat = flat * dim + value
        return flat


@dataclass(frozen=True)
class ScalarDecl:
    name: str
    type: ScalarType


class Program:
    """Declarations plus a body of loops and straight-line blocks."""

    def __init__(self, name: str = "program"):
        self.name = name
        self.arrays: Dict[str, ArrayDecl] = {}
        self.scalars: Dict[str, ScalarDecl] = {}
        self.body: List[Union[Loop, BasicBlock]] = []

    def declare_array(
        self, name: str, shape: Sequence[int], type: ScalarType
    ) -> ArrayDecl:
        if name in self.arrays or name in self.scalars:
            raise IRError(f"{name!r} is already declared")
        decl = ArrayDecl(name, tuple(shape), type)
        self.arrays[name] = decl
        return decl

    def declare_scalar(self, name: str, type: ScalarType) -> ScalarDecl:
        if name in self.arrays or name in self.scalars:
            raise IRError(f"{name!r} is already declared")
        decl = ScalarDecl(name, type)
        self.scalars[name] = decl
        return decl

    def add(self, item: Union[Loop, BasicBlock]) -> None:
        self.body.append(item)

    def loops(self) -> Iterator[Loop]:
        for item in self.body:
            if isinstance(item, Loop):
                yield item

    def blocks(self) -> Iterator[BasicBlock]:
        """Every basic block, including loop bodies (innermost first)."""
        for item in self.body:
            if isinstance(item, BasicBlock):
                yield item
            else:
                loop: Optional[Loop] = item
                stack = []
                while loop is not None:
                    stack.append(loop)
                    loop = loop.inner
                for nested in reversed(stack):
                    yield nested.body

    def clone_shell(self) -> "Program":
        """A new program with the same declarations and an empty body."""
        twin = Program(self.name)
        twin.arrays = dict(self.arrays)
        twin.scalars = dict(self.scalars)
        return twin

    def __eq__(self, other: object) -> bool:
        # Structural, like BasicBlock: declarations are frozen
        # dataclasses and body items are Loops (dataclasses) or
        # BasicBlocks, so equality recurses through the whole program.
        # ``name`` is a display label, not semantics — the printed form
        # (the faithful round-trippable rendering every cache key and
        # wire payload is built on) does not carry it, so equality
        # ignores it. Identity hashing is kept for the same reason as
        # BasicBlock.
        if not isinstance(other, Program):
            return NotImplemented
        return (
            self.arrays == other.arrays
            and self.scalars == other.scalars
            and self.body == other.body
        )

    __hash__ = object.__hash__
