"""Basic blocks, loops, and whole programs.

The compiler framework's input is "a set of basic blocks of a program"
(Section 3); loop-intensive code reaches that form via unrolling
(``repro.transform.unroll``). A :class:`Program` additionally carries the
array/scalar declarations the virtual machine needs to execute the code.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import IRError, StatementLookupError
from .stmt import Statement
from .types import ScalarType


class BasicBlock:
    """An ordered sequence of statements with unique sids."""

    def __init__(self, statements: Sequence[Statement] = ()):
        self.statements: List[Statement] = []
        for stmt in statements:
            self.append(stmt)

    def append(self, stmt: Statement) -> None:
        if any(s.sid == stmt.sid for s in self.statements):
            raise IRError(f"duplicate sid {stmt.sid} in basic block")
        self.statements.append(stmt)

    def __iter__(self) -> Iterator[Statement]:
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)

    def __getitem__(self, sid: int) -> Statement:
        for stmt in self.statements:
            if stmt.sid == sid:
                return stmt
        raise StatementLookupError(f"no statement with sid {sid}")

    def position(self, sid: int) -> int:
        """Program order position of a statement (dependence direction)."""
        for pos, stmt in enumerate(self.statements):
            if stmt.sid == sid:
                return pos
        raise StatementLookupError(f"no statement with sid {sid}")

    def replace_statement(self, stmt: Statement) -> "BasicBlock":
        """A new block with the same-order statement of that sid swapped."""
        return BasicBlock(
            [stmt if s.sid == stmt.sid else s for s in self.statements]
        )

    def renumbered(self, start: int = 0) -> "BasicBlock":
        return BasicBlock(
            [s.with_sid(start + i) for i, s in enumerate(self.statements)]
        )

    def __eq__(self, other: object) -> bool:
        # Structural: two blocks are equal when their statement lists
        # are. Statements are frozen dataclasses, so this recurses all
        # the way down — which is what lets a pickled CompileResult
        # (e.g. one returned over the service wire or from the artifact
        # store) compare ``==`` to a locally compiled one. Hashing stays
        # identity-based: no existing code keys containers by
        # structurally-equal-but-distinct blocks, and identity hashing
        # keeps that behaviour unchanged.
        if not isinstance(other, BasicBlock):
            return NotImplemented
        return self.statements == other.statements

    __hash__ = object.__hash__

    def __str__(self) -> str:
        return "\n".join(str(s) for s in self.statements)


@dataclass
class Loop:
    """A counted loop ``for (index = start; index < stop; index += step)``.

    The body is a single basic block plus optional nested loops; the
    workloads in this reproduction (like the paper's, after SUIF's
    preprocessing) are perfect or near-perfect affine nests.
    """

    index: str
    start: int
    stop: int
    step: int
    body: BasicBlock
    inner: Optional["Loop"] = None

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise IRError("only positive loop steps are supported")

    @property
    def trip_count(self) -> int:
        if self.stop <= self.start:
            return 0
        return (self.stop - self.start + self.step - 1) // self.step

    def iter_values(self) -> Iterator[int]:
        return iter(range(self.start, self.stop, self.step))

    def indices(self) -> Tuple[str, ...]:
        """Loop indices from this (outermost) level inwards."""
        inner = self.inner.indices() if self.inner else ()
        return (self.index,) + inner

    def innermost(self) -> "Loop":
        return self.inner.innermost() if self.inner else self

    def with_body(self, body: BasicBlock) -> "Loop":
        return replace(self, body=body)


@dataclass(frozen=True)
class ArrayDecl:
    """A declared array: name, dimension sizes, element type."""

    name: str
    shape: Tuple[int, ...]
    type: ScalarType

    @property
    def size(self) -> int:
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    def flatten_index(self, subscript_values: Sequence[int]) -> int:
        """Row-major flattening; the default layout assumed in Section 5."""
        if len(subscript_values) != len(self.shape):
            raise IRError(
                f"{self.name} has {len(self.shape)} dims, "
                f"got {len(subscript_values)} subscripts"
            )
        flat = 0
        for value, dim in zip(subscript_values, self.shape):
            flat = flat * dim + value
        return flat


@dataclass(frozen=True)
class ScalarDecl:
    name: str
    type: ScalarType


class Program:
    """Declarations plus a body of loops and straight-line blocks."""

    def __init__(self, name: str = "program"):
        self.name = name
        self.arrays: Dict[str, ArrayDecl] = {}
        self.scalars: Dict[str, ScalarDecl] = {}
        self.body: List[Union[Loop, BasicBlock]] = []

    def declare_array(
        self, name: str, shape: Sequence[int], type: ScalarType
    ) -> ArrayDecl:
        if name in self.arrays or name in self.scalars:
            raise IRError(f"{name!r} is already declared")
        decl = ArrayDecl(name, tuple(shape), type)
        self.arrays[name] = decl
        return decl

    def declare_scalar(self, name: str, type: ScalarType) -> ScalarDecl:
        if name in self.arrays or name in self.scalars:
            raise IRError(f"{name!r} is already declared")
        decl = ScalarDecl(name, type)
        self.scalars[name] = decl
        return decl

    def add(self, item: Union[Loop, BasicBlock]) -> None:
        self.body.append(item)

    def loops(self) -> Iterator[Loop]:
        for item in self.body:
            if isinstance(item, Loop):
                yield item

    def blocks(self) -> Iterator[BasicBlock]:
        """Every basic block, including loop bodies (innermost first)."""
        for item in self.body:
            if isinstance(item, BasicBlock):
                yield item
            else:
                loop: Optional[Loop] = item
                stack = []
                while loop is not None:
                    stack.append(loop)
                    loop = loop.inner
                for nested in reversed(stack):
                    yield nested.body

    def clone_shell(self) -> "Program":
        """A new program with the same declarations and an empty body."""
        twin = Program(self.name)
        twin.arrays = dict(self.arrays)
        twin.scalars = dict(self.scalars)
        return twin

    def __eq__(self, other: object) -> bool:
        # Structural, like BasicBlock: declarations are frozen
        # dataclasses and body items are Loops (dataclasses) or
        # BasicBlocks, so equality recurses through the whole program.
        # ``name`` is a display label, not semantics — the printed form
        # (the faithful round-trippable rendering every cache key and
        # wire payload is built on) does not carry it, so equality
        # ignores it. Identity hashing is kept for the same reason as
        # BasicBlock.
        if not isinstance(other, Program):
            return NotImplemented
        return (
            self.arrays == other.arrays
            and self.scalars == other.scalars
            and self.body == other.body
        )

    __hash__ = object.__hash__
