"""Assignment statements — the unit the SLP optimizer groups and schedules.

A basic block is a sequence ``S = <S1, ..., Sn>`` of statements
(Section 4.1); each statement assigns an expression to a scalar variable
or array element. After if-conversion a statement may also carry a
:class:`Predicate` recording which branch it came from; the predicate is
an annotation for the packer (predicate-compatible statements may share
a superword), not an execution guard — the guarded semantics live in the
statement's ``select`` expression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Tuple, Union

from .expr import Affine, ArrayRef, Const, Expr, Var

Target = Union[Var, ArrayRef]


@dataclass(frozen=True)
class Predicate:
    """The branch condition a statement was if-converted under.

    ``when=True`` marks statements from the then-branch, ``when=False``
    from the else-branch. Two statements are predicate-compatible (and
    hence may pack into one superword) iff their predicates are equal;
    mixed-predicate pairs only merge when if-conversion fuses then/else
    assignments to the same target into a single unpredicated select.
    """

    cond: Expr
    when: bool = True

    def signature(self) -> Tuple:
        return (self.when, self.cond.opcode_signature())

    def substitute_indices(self, bindings: Mapping[str, Affine]) -> "Predicate":
        return Predicate(self.cond.substitute_indices(bindings), self.when)

    def __str__(self) -> str:
        prefix = "" if self.when else "!"
        return f"{prefix}({self.cond})"


@dataclass(frozen=True)
class Statement:
    """One scalar assignment ``target = expr``.

    ``sid`` is the statement's identity within its basic block; grouping
    and scheduling decisions refer to statements by sid so that rewrites
    (e.g. data layout substitution) can replace the expression while the
    decisions remain valid.
    """

    sid: int
    target: Target
    expr: Expr
    pred: Optional[Predicate] = None

    # -- operand views -------------------------------------------------------

    def uses(self) -> Tuple[Expr, ...]:
        """Leaf operands read by this statement, in positional order.

        The subscript of an array *target* also reads its loop indices,
        but indices are not packable operands, so they are not included.
        (A predicate's condition already appears as the select's first
        operand, so the expression leaves cover every value read.)
        """
        return tuple(
            leaf for leaf in self.expr.leaves() if not isinstance(leaf, Const)
        )

    def defs(self) -> Target:
        return self.target

    def operand_positions(self) -> Tuple[Expr, ...]:
        """All pack positions: the target followed by every RHS leaf.

        Position 0 is the destination superword; positions 1..k are the
        source superwords. Corresponding positions across the statements
        of a candidate group form the group's variable packs (Section
        4.2.1).
        """
        return (self.target,) + tuple(self.expr.leaves())

    def isomorphism_signature(self) -> Tuple:
        """Signature equal across statements that may share a superword
        statement (validity constraint 3).

        The predicate participates: statements guarded by structurally
        different branch conditions must not share a superword, because
        their mask lanes would have to come from different compares.
        """
        target_kind = (
            ("var", self.target.type.name)
            if isinstance(self.target, Var)
            else ("ref", self.target.type.name)
        )
        pred_kind = self.pred.signature() if self.pred is not None else None
        return (target_kind, pred_kind, self.expr.opcode_signature())

    def is_isomorphic_to(self, other: "Statement") -> bool:
        return self.isomorphism_signature() == other.isomorphism_signature()

    # -- rewriting ------------------------------------------------------------

    def substitute_indices(
        self, bindings: Mapping[str, Affine]
    ) -> "Statement":
        target = self.target
        if isinstance(target, ArrayRef):
            target = target.substitute_indices(bindings)
        pred = (
            self.pred.substitute_indices(bindings)
            if self.pred is not None
            else None
        )
        return Statement(
            self.sid, target, self.expr.substitute_indices(bindings), pred
        )

    def with_sid(self, sid: int) -> "Statement":
        return Statement(sid, self.target, self.expr, self.pred)

    def array_refs(self) -> Iterator[ArrayRef]:
        """Every array reference, including the target if it is one."""
        if isinstance(self.target, ArrayRef):
            yield self.target
        for leaf in self.expr.leaves():
            if isinstance(leaf, ArrayRef):
                yield leaf

    def count_ops(self) -> int:
        return self.expr.count_ops()

    def __str__(self) -> str:
        return f"S{self.sid}: {self.target} = {self.expr};"
