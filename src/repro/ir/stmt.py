"""Assignment statements — the unit the SLP optimizer groups and schedules.

A basic block is a sequence ``S = <S1, ..., Sn>`` of statements
(Section 4.1); each statement assigns an expression to a scalar variable
or array element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Tuple, Union

from .expr import Affine, ArrayRef, Const, Expr, Var

Target = Union[Var, ArrayRef]


@dataclass(frozen=True)
class Statement:
    """One scalar assignment ``target = expr``.

    ``sid`` is the statement's identity within its basic block; grouping
    and scheduling decisions refer to statements by sid so that rewrites
    (e.g. data layout substitution) can replace the expression while the
    decisions remain valid.
    """

    sid: int
    target: Target
    expr: Expr

    # -- operand views -------------------------------------------------------

    def uses(self) -> Tuple[Expr, ...]:
        """Leaf operands read by this statement, in positional order.

        The subscript of an array *target* also reads its loop indices,
        but indices are not packable operands, so they are not included.
        """
        return tuple(
            leaf for leaf in self.expr.leaves() if not isinstance(leaf, Const)
        )

    def defs(self) -> Target:
        return self.target

    def operand_positions(self) -> Tuple[Expr, ...]:
        """All pack positions: the target followed by every RHS leaf.

        Position 0 is the destination superword; positions 1..k are the
        source superwords. Corresponding positions across the statements
        of a candidate group form the group's variable packs (Section
        4.2.1).
        """
        return (self.target,) + tuple(self.expr.leaves())

    def isomorphism_signature(self) -> Tuple:
        """Signature equal across statements that may share a superword
        statement (validity constraint 3)."""
        target_kind = (
            ("var", self.target.type.name)
            if isinstance(self.target, Var)
            else ("ref", self.target.type.name)
        )
        return (target_kind, self.expr.opcode_signature())

    def is_isomorphic_to(self, other: "Statement") -> bool:
        return self.isomorphism_signature() == other.isomorphism_signature()

    # -- rewriting ------------------------------------------------------------

    def substitute_indices(
        self, bindings: Mapping[str, Affine]
    ) -> "Statement":
        target = self.target
        if isinstance(target, ArrayRef):
            target = target.substitute_indices(bindings)
        return Statement(
            self.sid, target, self.expr.substitute_indices(bindings)
        )

    def with_sid(self, sid: int) -> "Statement":
        return Statement(sid, self.target, self.expr)

    def array_refs(self) -> Iterator[ArrayRef]:
        """Every array reference, including the target if it is one."""
        if isinstance(self.target, ArrayRef):
            yield self.target
        for leaf in self.expr.leaves():
            if isinstance(leaf, ArrayRef):
                yield leaf

    def count_ops(self) -> int:
        return self.expr.count_ops()

    def __str__(self) -> str:
        return f"S{self.sid}: {self.target} = {self.expr};"
