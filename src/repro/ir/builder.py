"""Fluent construction API for programs.

This is the primary way users (and the benchmark kernel generators) build
IR::

    b = ProgramBuilder("saxpy")
    X = b.array("X", (1024,), FLOAT32)
    Y = b.array("Y", (1024,), FLOAT32)
    a = b.scalar("a", FLOAT32)
    with b.loop("i", 0, 1024) as i:
        b.assign(Y[i], a * X[i] + Y[i])
    program = b.build()

Handles overload Python arithmetic so right-hand sides read like the
source code in the paper's figures.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import BuilderError, IRError
from .block import ArrayDecl, BasicBlock, IfRegion, Loop, Program, ScalarDecl
from .expr import Affine, ArrayRef, BinOp, Const, Expr, Select, UnOp, Var
from .stmt import Statement
from .types import ScalarType

Operand = Union["ExprHandle", Expr, int, float]


class ExprHandle:
    """Wraps an :class:`Expr` with operator overloading."""

    def __init__(self, expr: Expr):
        self.expr = expr

    def _coerce(self, other: Operand) -> Expr:
        if isinstance(other, ExprHandle):
            return other.expr
        if isinstance(other, Expr):
            return other
        if isinstance(other, (int, float)):
            return Const(other, self.expr.type)
        raise TypeError(f"cannot use {other!r} as an operand")

    def _bin(
        self, op: str, other: Operand, swapped: bool = False
    ) -> "ExprHandle":
        rhs = self._coerce(other)
        left, right = (rhs, self.expr) if swapped else (self.expr, rhs)
        return ExprHandle(BinOp(op, left, right))

    def __add__(self, other: Operand) -> "ExprHandle":
        return self._bin("+", other)

    def __radd__(self, other: Operand) -> "ExprHandle":
        return self._bin("+", other, swapped=True)

    def __sub__(self, other: Operand) -> "ExprHandle":
        return self._bin("-", other)

    def __rsub__(self, other: Operand) -> "ExprHandle":
        return self._bin("-", other, swapped=True)

    def __mul__(self, other: Operand) -> "ExprHandle":
        return self._bin("*", other)

    def __rmul__(self, other: Operand) -> "ExprHandle":
        return self._bin("*", other, swapped=True)

    def __truediv__(self, other: Operand) -> "ExprHandle":
        return self._bin("/", other)

    def __rtruediv__(self, other: Operand) -> "ExprHandle":
        return self._bin("/", other, swapped=True)

    def __neg__(self) -> "ExprHandle":
        return ExprHandle(UnOp("neg", self.expr))

    def min(self, other: Operand) -> "ExprHandle":
        return self._bin("min", other)

    def max(self, other: Operand) -> "ExprHandle":
        return self._bin("max", other)

    def sqrt(self) -> "ExprHandle":
        return ExprHandle(UnOp("sqrt", self.expr))

    def abs(self) -> "ExprHandle":
        return ExprHandle(UnOp("abs", self.expr))

    # Comparisons produce mask expressions (1.0 / 0.0 per lane) for
    # ``select`` and ``if_``. Equality stays a *method* (``eq``/``ne``),
    # not ``__eq__``: overloading ``==`` would break dict/set membership
    # of handles.

    def __lt__(self, other: Operand) -> "ExprHandle":
        return self._bin("<", other)

    def __le__(self, other: Operand) -> "ExprHandle":
        return self._bin("<=", other)

    def __gt__(self, other: Operand) -> "ExprHandle":
        return self._bin(">", other)

    def __ge__(self, other: Operand) -> "ExprHandle":
        return self._bin(">=", other)

    def eq(self, other: Operand) -> "ExprHandle":
        return self._bin("==", other)

    def ne(self, other: Operand) -> "ExprHandle":
        return self._bin("!=", other)


def select(cond: Operand, on_true: Operand, on_false: Operand) -> ExprHandle:
    """Build a :class:`Select` expression, coercing bare literals to the
    type of the first typed operand."""
    raw = [
        o.expr if isinstance(o, ExprHandle) else o
        for o in (cond, on_true, on_false)
    ]
    typed = next((o for o in raw if isinstance(o, Expr)), None)
    if typed is None:
        raise TypeError("select() needs at least one typed operand")
    coerced = [
        o if isinstance(o, Expr) else Const(o, typed.type) for o in raw
    ]
    return ExprHandle(Select(coerced[0], coerced[1], coerced[2]))


class ScalarHandle(ExprHandle):
    def __init__(self, decl: ScalarDecl):
        super().__init__(Var(decl.name, decl.type))
        self.decl = decl


Index = Union[Affine, "LoopIndex", int]


class LoopIndex:
    """A loop index usable in subscript arithmetic: ``A[4*i + 3]``."""

    def __init__(self, name: str):
        self.name = name
        self.affine = Affine.var(name)

    def __add__(self, other: Index) -> Affine:
        return self.affine + _as_index_affine(other)

    __radd__ = __add__

    def __sub__(self, other: Index) -> Affine:
        return self.affine - _as_index_affine(other)

    def __rsub__(self, other: Index) -> Affine:
        return _as_index_affine(other) - self.affine

    def __mul__(self, k: int) -> Affine:
        return self.affine * k

    __rmul__ = __mul__

    def __str__(self) -> str:
        return self.name


def _as_index_affine(value: Index) -> Affine:
    if isinstance(value, LoopIndex):
        return value.affine
    if isinstance(value, Affine):
        return value
    if isinstance(value, int):
        return Affine((), value)
    raise TypeError(f"cannot use {value!r} as an array subscript")


class ArrayHandle:
    """Indexable array handle: ``A[i]``, ``B[2*i + 1]``, ``C[i, j]``."""

    def __init__(self, decl: ArrayDecl):
        self.decl = decl

    def __getitem__(
        self, subscripts: Union[Index, Tuple[Index, ...]]
    ) -> ExprHandle:
        if not isinstance(subscripts, tuple):
            subscripts = (subscripts,)
        affines = tuple(_as_index_affine(s) for s in subscripts)
        if len(affines) != len(self.decl.shape):
            raise IRError(
                f"{self.decl.name} expects {len(self.decl.shape)} "
                f"subscripts, got {len(affines)}"
            )
        return ExprHandle(ArrayRef(self.decl.name, affines, self.decl.type))


@dataclass
class _LoopFrame:
    index: str
    start: int
    stop: int
    step: int
    body: BasicBlock
    inner: Optional[Loop] = None


@dataclass
class _RegionState:
    cond: Expr
    then_body: List[Statement]
    else_body: List[Statement]
    in_else: bool = False


def _build_statement(sid: int, target: ExprHandle, value: Operand) -> Statement:
    tgt = target.expr
    if not isinstance(tgt, (Var, ArrayRef)):
        raise TypeError("assignment target must be a scalar or array ref")
    if isinstance(value, ExprHandle):
        expr = value.expr
    elif isinstance(value, Expr):
        expr = value
    elif isinstance(value, (int, float)):
        expr = Const(value, tgt.type)
    else:
        raise TypeError(f"cannot assign {value!r}")
    return Statement(sid, tgt, expr)


class ProgramBuilder:
    """Accumulates declarations, loops, and statements into a Program."""

    def __init__(self, name: str = "program"):
        self._program = Program(name)
        self._top = BasicBlock()
        self._frames: List[_LoopFrame] = []
        self._sid_stack: List[int] = [0]
        self._region: Optional[_RegionState] = None
        self._last_if: Optional[Tuple[BasicBlock, _RegionState]] = None

    # -- declarations ---------------------------------------------------------

    def array(
        self, name: str, shape: Sequence[int], type: ScalarType
    ) -> ArrayHandle:
        return ArrayHandle(self._program.declare_array(name, shape, type))

    def scalar(self, name: str, type: ScalarType) -> ScalarHandle:
        return ScalarHandle(self._program.declare_scalar(name, type))

    def scalars(
        self, names: str, type: ScalarType
    ) -> Tuple[ScalarHandle, ...]:
        """Declare several scalars at once: ``a, b = b.scalars("a b", f32)``."""
        return tuple(self.scalar(n, type) for n in names.split())

    # -- statements ------------------------------------------------------------

    def assign(self, target: ExprHandle, value: Operand) -> Statement:
        stmt = _build_statement(self._sid_stack[-1], target, value)
        self._sid_stack[-1] += 1
        if self._region is not None:
            branch = (
                self._region.else_body
                if self._region.in_else
                else self._region.then_body
            )
            branch.append(stmt)
        else:
            self._last_if = None
            block = self._frames[-1].body if self._frames else self._top
            block.append(stmt)
        return stmt

    # -- conditional regions ---------------------------------------------------

    def _current_block(self) -> BasicBlock:
        return self._frames[-1].body if self._frames else self._top

    @contextlib.contextmanager
    def if_(self, cond: Operand) -> Iterator[None]:
        """Open a then-branch scope: ``with b.if_(a > t): b.assign(...)``.

        Regions are single-level — ``if_`` inside ``if_`` raises. An
        optional ``else_`` block may immediately follow.
        """
        if self._region is not None:
            raise BuilderError("if_ regions do not nest (single level only)")
        cond_expr = cond.expr if isinstance(cond, ExprHandle) else cond
        if not isinstance(cond_expr, Expr):
            raise TypeError("if_ condition must be a typed expression")
        state = _RegionState(cond_expr, [], [])
        self._region = state
        try:
            yield
        finally:
            self._region = None
            block = self._current_block()
            block.append(
                IfRegion(state.cond, tuple(state.then_body))
            )
            self._last_if = (block, state)

    @contextlib.contextmanager
    def else_(self) -> Iterator[None]:
        """Open the else-branch of the immediately preceding ``if_``."""
        if self._last_if is None:
            raise BuilderError("else_ requires an immediately preceding if_")
        block, state = self._last_if
        self._last_if = None
        block.statements.pop()  # re-emitted below with the else-branch
        state.in_else = True
        self._region = state
        try:
            yield
        finally:
            self._region = None
            block.append(
                IfRegion(
                    state.cond,
                    tuple(state.then_body),
                    tuple(state.else_body),
                )
            )

    # -- loops -------------------------------------------------------------------

    @contextlib.contextmanager
    def loop(
        self, index: str, start: int, stop: int, step: int = 1
    ) -> Iterator[LoopIndex]:
        """Open a loop scope; statements assigned inside land in its body.

        Loops may be nested; a loop body may contain at most one nested
        loop (perfect/near-perfect nests, as the layout optimizer
        assumes).
        """
        if self._region is not None:
            raise BuilderError("loops may not open inside an if_ region")
        self._last_if = None
        frame = _LoopFrame(index, start, stop, step, BasicBlock())
        self._frames.append(frame)
        self._sid_stack.append(0)
        try:
            yield LoopIndex(index)
        finally:
            self._sid_stack.pop()
            self._frames.pop()
            loop = Loop(
                frame.index,
                frame.start,
                frame.stop,
                frame.step,
                frame.body,
                inner=frame.inner,
            )
            if self._frames:
                if self._frames[-1].inner is not None:
                    raise BuilderError(
                        "a loop body may contain at most one nested loop"
                    )
                self._frames[-1].inner = loop
            else:
                self._flush_top()
                self._program.add(loop)

    def _flush_top(self) -> None:
        if len(self._top):
            self._program.add(self._top)
            self._top = BasicBlock()
            self._sid_stack[0] = 0

    # -- finish --------------------------------------------------------------------

    def build(self) -> Program:
        if self._frames:
            raise BuilderError("build() called inside an open loop scope")
        self._flush_top()
        return self._program


class BlockBuilder:
    """Builds a standalone basic block (loop bodies in tests, kernels)."""

    def __init__(self):
        self._block = BasicBlock()
        self._next_sid = 0

    def assign(self, target: ExprHandle, value: Operand) -> Statement:
        stmt = _build_statement(self._next_sid, target, value)
        self._next_sid += 1
        self._block.append(stmt)
        return stmt

    def build(self) -> BasicBlock:
        return self._block
