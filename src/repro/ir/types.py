"""Scalar element types for the SLP IR.

The paper's framework packs operands of the *same data type* into
superwords (validity constraint 3 in Section 4.1), and the number of lanes
a superword holds is ``datapath_bits // element_bits`` (constraint 4).
These small value types carry exactly the information those checks need.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import IRError


@dataclass(frozen=True)
class ScalarType:
    """An element type that can occupy one lane of a superword.

    Attributes:
        name: canonical C-like spelling, e.g. ``"float"``.
        bits: storage width in bits.
        is_float: whether arithmetic on it is floating point.
    """

    name: str
    bits: int
    is_float: bool

    @property
    def bytes(self) -> int:
        return self.bits // 8

    def lanes(self, datapath_bits: int) -> int:
        """Number of elements of this type a datapath-wide superword holds."""
        if datapath_bits % self.bits:
            raise IRError(
                f"datapath of {datapath_bits} bits is not a multiple of "
                f"{self.name} ({self.bits} bits)"
            )
        return datapath_bits // self.bits

    def __str__(self) -> str:
        return self.name


INT8 = ScalarType("int8", 8, is_float=False)
INT16 = ScalarType("int16", 16, is_float=False)
INT32 = ScalarType("int32", 32, is_float=False)
INT64 = ScalarType("int64", 64, is_float=False)
FLOAT32 = ScalarType("float", 32, is_float=True)
FLOAT64 = ScalarType("double", 64, is_float=True)

#: Types the tiny DSL front end understands, keyed by source spelling.
NAMED_TYPES = {
    "int8": INT8,
    "int16": INT16,
    "int": INT32,
    "int32": INT32,
    "int64": INT64,
    "long": INT64,
    "float": FLOAT32,
    "double": FLOAT64,
}
