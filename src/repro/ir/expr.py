"""Expression trees and affine index functions for the SLP IR.

Expressions are immutable. Leaves are :class:`Const`, :class:`Var` and
:class:`ArrayRef`; interior nodes are :class:`BinOp` / :class:`UnOp`.
Array subscripts are :class:`Affine` functions of enclosing loop indices,
which is what both the dependence tests (Section 4.1) and the polyhedral
data layout optimization (Section 5.2, Equation 1: r = Q·i + O) consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple, Union

from ..errors import IRError, IRTypeError
from .types import ScalarType


# ---------------------------------------------------------------------------
# Affine index functions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class Affine:
    """An affine function ``sum(coeff[v] * v) + const`` of loop indices.

    Ordering is lexicographic on the normalized representation — it has
    no numeric meaning but makes operand keys (and hence packs) sortable
    for canonicalization.

    This is one row of the paper's memory access vector
    ``r = Q·i + O`` (Equation 1): ``coeffs`` holds the row of Q keyed by
    loop-index name and ``const`` is the corresponding entry of O.
    """

    coeffs: Tuple[Tuple[str, int], ...] = ()
    const: int = 0

    @staticmethod
    def of(const: int = 0, **coeffs: int) -> "Affine":
        """Convenience constructor: ``Affine.of(3, i=4)`` is ``4*i + 3``."""
        return Affine(_norm(coeffs), const)

    @staticmethod
    def var(name: str, coeff: int = 1) -> "Affine":
        return Affine.of(0, **{name: coeff})

    @property
    def coeff_map(self) -> Dict[str, int]:
        return dict(self.coeffs)

    def coeff(self, index: str) -> int:
        return self.coeff_map.get(index, 0)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def variables(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.coeffs)

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: Union["Affine", int]) -> "Affine":
        other = _as_affine(other)
        merged = self.coeff_map
        for name, c in other.coeffs:
            merged[name] = merged.get(name, 0) + c
        return Affine(_norm(merged), self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "Affine":
        return Affine(
            tuple((name, -c) for name, c in self.coeffs), -self.const
        )

    def __sub__(self, other: Union["Affine", int]) -> "Affine":
        return self + (-_as_affine(other))

    def __rsub__(self, other: int) -> "Affine":
        return _as_affine(other) - self

    def __mul__(self, k: int) -> "Affine":
        if not isinstance(k, int):
            raise TypeError("Affine functions only scale by integers")
        if k == 0:
            return Affine((), 0)
        return Affine(
            tuple((name, c * k) for name, c in self.coeffs), self.const * k
        )

    __rmul__ = __mul__

    # -- evaluation and substitution ----------------------------------------

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under a binding of every referenced loop index."""
        total = self.const
        for name, c in self.coeffs:
            total += c * env[name]
        return total

    def substitute(self, bindings: Mapping[str, "Affine"]) -> "Affine":
        """Replace loop indices by affine functions (used by unrolling,
        where iteration ``k`` of an unrolled loop maps ``i -> u*i + k``)."""
        result = Affine((), self.const)
        for name, c in self.coeffs:
            if name in bindings:
                result = result + bindings[name] * c
            else:
                result = result + Affine.var(name, c)
        return result

    def __str__(self) -> str:
        parts = []
        for name, c in self.coeffs:
            if c == 1:
                parts.append(name)
            elif c == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{c}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        out = parts[0]
        for p in parts[1:]:
            out += f" - {p[1:]}" if p.startswith("-") else f" + {p}"
        return out


def _norm(coeffs: Mapping[str, int]) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted((n, c) for n, c in coeffs.items() if c != 0))


def _as_affine(value: Union["Affine", int]) -> Affine:
    if isinstance(value, Affine):
        return value
    if isinstance(value, int):
        return Affine((), value)
    raise TypeError(f"cannot coerce {value!r} to Affine")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for all expression nodes (immutable)."""

    type: ScalarType

    # Every subclass defines `children` and a positional reconstruction so
    # generic traversals (isomorphism, leaf extraction, substitution) stay
    # in one place.

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def with_children(self, children: Tuple["Expr", ...]) -> "Expr":
        if children:
            raise IRError(f"{type(self).__name__} takes no children")
        return self

    def leaves(self) -> Iterator["Expr"]:
        """Leaf operands in left-to-right (positional) order.

        The position of each leaf is what defines "corresponding
        positions" for isomorphic statements, and hence which operands
        land in the same variable pack.
        """
        kids = self.children()
        if not kids:
            yield self
            return
        for kid in kids:
            yield from kid.leaves()

    def opcode_signature(self) -> Tuple:
        """Structural signature: operator tree with leaf types.

        Two expressions are isomorphic (paper Section 2: "same operations
        in corresponding positions ... operands in the corresponding
        positions should have the same data type") iff their signatures
        are equal.
        """
        kids = self.children()
        if not kids:
            return ("leaf", self.type.name)
        label = getattr(self, "op", type(self).__name__)
        return (label, self.type.name) + tuple(
            k.opcode_signature() for k in kids
        )

    def substitute_indices(self, bindings: Mapping[str, Affine]) -> "Expr":
        """Rewrite affine loop indices inside every array subscript."""
        kids = self.children()
        if kids:
            return self.with_children(
                tuple(k.substitute_indices(bindings) for k in kids)
            )
        return self

    def count_ops(self) -> int:
        """Number of interior (arithmetic) nodes."""
        kids = self.children()
        return (1 if kids else 0) + sum(k.count_ops() for k in kids)


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant occupying one lane."""

    value: float
    type: ScalarType

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A scalar variable."""

    name: str
    type: ScalarType

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef(Expr):
    """A (possibly multi-dimensional) array element with affine subscripts."""

    array: str
    subscripts: Tuple[Affine, ...]
    type: ScalarType

    def children(self) -> Tuple[Expr, ...]:
        return ()

    def substitute_indices(self, bindings: Mapping[str, Affine]) -> "ArrayRef":
        return ArrayRef(
            self.array,
            tuple(s.substitute(bindings) for s in self.subscripts),
            self.type,
        )

    def __str__(self) -> str:
        subs = "][".join(str(s) for s in self.subscripts)
        return f"{self.array}[{subs}]"


#: Default relative cost of each operator, shared by the machine models
#: and the grouping profitability estimate (one unit = a simple ALU op).
OP_WEIGHTS = {
    "+": 1.0,
    "-": 1.0,
    "*": 2.0,
    "/": 10.0,
    "min": 1.0,
    "max": 1.0,
    "neg": 1.0,
    "abs": 1.0,
    "sqrt": 12.0,
    "<": 1.0,
    "<=": 1.0,
    ">": 1.0,
    ">=": 1.0,
    "==": 1.0,
    "!=": 1.0,
    "select": 1.0,
}

#: Comparison operators. They are ordinary :class:`BinOp` nodes whose
#: result is a mask value — ``1.0`` where the relation holds, ``0.0``
#: elsewhere — of the *operand* type, which keeps every lane of a
#: superword single-typed (the SIMD blend consumes the mask directly).
COMPARE_OPS = ("<", "<=", ">", ">=", "==", "!=")

#: Binary operators the IR supports, with commutativity for reuse analysis.
BINARY_OPS = {
    "+": True,
    "-": False,
    "*": True,
    "/": False,
    "min": True,
    "max": True,
    "<": False,
    "<=": False,
    ">": False,
    ">=": False,
    "==": True,
    "!=": True,
}

UNARY_OPS = ("neg", "abs", "sqrt")


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise IRError(f"unknown binary operator {self.op!r}")
        if self.left.type != self.right.type:
            raise IRTypeError(
                f"operand type mismatch in {self.op!r}: "
                f"{self.left.type} vs {self.right.type}"
            )

    @property
    def type(self) -> ScalarType:  # type: ignore[override]
        return self.left.type

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def with_children(self, children: Tuple[Expr, ...]) -> "BinOp":
        left, right = children
        return BinOp(self.op, left, right)

    def __str__(self) -> str:
        if self.op in ("min", "max"):
            return f"{self.op}({self.left}, {self.right})"
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Select(Expr):
    """Three-operand blend: ``on_true`` where ``cond`` is non-zero.

    This is the IR form of the vector ``vselect``/``blend`` instruction
    that if-conversion lowers branches into. Both value operands are
    evaluated eagerly (every operator in the IR is total, so this is
    safe), then the mask picks per-lane — exactly the SIMD execution
    model, which keeps scalar and vector semantics identical by
    construction.
    """

    cond: Expr
    on_true: Expr
    on_false: Expr

    #: Class-level opcode so generic traversals (`getattr(expr, "op")`)
    #: dispatch Select exactly like BinOp/UnOp.
    op = "select"

    def __post_init__(self) -> None:
        if not (
            self.cond.type == self.on_true.type == self.on_false.type
        ):
            raise IRTypeError(
                "operand type mismatch in select: "
                f"{self.cond.type} vs {self.on_true.type} "
                f"vs {self.on_false.type}"
            )

    @property
    def type(self) -> ScalarType:  # type: ignore[override]
        return self.on_true.type

    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.on_true, self.on_false)

    def with_children(self, children: Tuple[Expr, ...]) -> "Select":
        cond, on_true, on_false = children
        return Select(cond, on_true, on_false)

    def __str__(self) -> str:
        return f"select({self.cond}, {self.on_true}, {self.on_false})"


@dataclass(frozen=True)
class UnOp(Expr):
    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise IRError(f"unknown unary operator {self.op!r}")

    @property
    def type(self) -> ScalarType:  # type: ignore[override]
        return self.operand.type

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def with_children(self, children: Tuple[Expr, ...]) -> "UnOp":
        (operand,) = children
        return UnOp(self.op, operand)

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"
