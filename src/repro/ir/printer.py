"""Pretty-printing of IR to C-like source (round-trips with the parser)."""

from __future__ import annotations

from typing import List

from .block import BasicBlock, IfRegion, Loop, Program


def format_region(region: IfRegion, indent: int = 0) -> str:
    pad = "    " * indent
    inner = "    " * (indent + 1)
    lines: List[str] = [f"{pad}if ({region.cond}) {{"]
    lines += [f"{inner}{s.target} = {s.expr};" for s in region.then_body]
    if region.else_body:
        lines.append(f"{pad}}} else {{")
        lines += [f"{inner}{s.target} = {s.expr};" for s in region.else_body]
    lines.append(f"{pad}}}")
    return "\n".join(lines)


def format_block(block: BasicBlock, indent: int = 0) -> str:
    pad = "    " * indent
    lines: List[str] = []
    for stmt in block:
        if isinstance(stmt, IfRegion):
            lines.append(format_region(stmt, indent))
        else:
            lines.append(f"{pad}{stmt.target} = {stmt.expr};")
    return "\n".join(lines)


def format_loop(loop: Loop, indent: int = 0) -> str:
    pad = "    " * indent
    lines: List[str] = [
        f"{pad}for ({loop.index} = {loop.start}; "
        f"{loop.index} < {loop.stop}; {loop.index} += {loop.step}) {{"
    ]
    if len(loop.body):
        lines.append(format_block(loop.body, indent + 1))
    if loop.inner is not None:
        lines.append(format_loop(loop.inner, indent + 1))
    lines.append(f"{pad}}}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    lines: List[str] = []
    for decl in program.arrays.values():
        dims = "".join(f"[{d}]" for d in decl.shape)
        lines.append(f"{decl.type} {decl.name}{dims};")
    for decl in program.scalars.values():
        lines.append(f"{decl.type} {decl.name};")
    if lines:
        lines.append("")
    for item in program.body:
        if isinstance(item, Loop):
            lines.append(format_loop(item))
        else:
            lines.append(format_block(item))
    return "\n".join(lines) + "\n"
