"""Compiler IR: types, expressions, statements, blocks, loops, programs.

This is the substrate the SLP framework operates on — the moral
equivalent of the SUIF 2.0 statement lists the paper's implementation
consumed.
"""

from .block import ArrayDecl, BasicBlock, IfRegion, Loop, Program, ScalarDecl
from .builder import (
    ArrayHandle,
    BlockBuilder,
    ExprHandle,
    LoopIndex,
    ProgramBuilder,
    ScalarHandle,
    select,
)
from .expr import (
    Affine,
    ArrayRef,
    BINARY_OPS,
    BinOp,
    COMPARE_OPS,
    Const,
    Expr,
    Select,
    UnOp,
    UNARY_OPS,
    Var,
)
from .parser import ParseError, parse_block, parse_program
from .printer import format_block, format_loop, format_program, format_region
from .stmt import Predicate, Statement
from .types import (
    FLOAT32,
    FLOAT64,
    INT16,
    INT32,
    INT64,
    INT8,
    NAMED_TYPES,
    ScalarType,
)

__all__ = [
    "Affine",
    "ArrayDecl",
    "ArrayHandle",
    "ArrayRef",
    "BINARY_OPS",
    "BasicBlock",
    "BinOp",
    "BlockBuilder",
    "COMPARE_OPS",
    "Const",
    "Expr",
    "ExprHandle",
    "FLOAT32",
    "FLOAT64",
    "INT16",
    "INT32",
    "INT64",
    "INT8",
    "IfRegion",
    "Loop",
    "LoopIndex",
    "NAMED_TYPES",
    "ParseError",
    "Predicate",
    "Program",
    "ProgramBuilder",
    "ScalarDecl",
    "ScalarHandle",
    "ScalarType",
    "Select",
    "Statement",
    "UnOp",
    "UNARY_OPS",
    "Var",
    "format_block",
    "format_loop",
    "format_program",
    "format_region",
    "parse_block",
    "parse_program",
    "select",
]
