"""Structured decision tracing with runtime cost attribution.

``repro.perf`` (PR 1) answers *how long* each compiler phase took; this
module answers *what the compiler decided and what each decision cost at
runtime*. A global :data:`TRACE` registry collects a flat, ordered list
of events, with spans (``compile`` > ``block`` > ``round`` ...) giving
them hierarchical context. Every pass emits its decisions: candidate
search, VP graph construction, SG edge commits (winning weight plus the
runner-up edges that lost), iterative fusion rounds, scheduler reuse
hits against the live superword set, permutation orderings tried,
layout replication choices, and codegen pack/shuffle-reuse events.

Each committed group gets a stable **provenance ID** —
``b<block>:S<sid>+S<sid>+...`` — that codegen stamps onto the emitted
instructions, so the simulator can attribute runtime costs (cycles,
shuffles, cache misses) back to the compile-time decision that produced
them. :func:`fold_report` turns a finished :class:`ExecutionReport` into
``runtime.*`` events appended to the same trace.

Like ``PERF``, tracing is off by default and every emission site is
guarded by a single ``TRACE.enabled`` attribute check, so the disabled
cost is one attribute load + branch per hook. Events are deterministic:
the only volatile field is ``wall_ms`` on ``span.end`` records, which
:func:`canonical_jsonl` strips so two traces of the same compile are
byte-identical.
"""

from __future__ import annotations

import enum
import json
import time
from fractions import Fraction
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: Versioned schema tag written into every trace header. Bump on any
#: backwards-incompatible change to event kinds or required fields.
SCHEMA = "repro.trace/1"

#: Fields stripped by :func:`canonical_jsonl` before byte comparison.
VOLATILE_FIELDS = ("wall_ms",)

#: Event kind -> fields that must be present (beyond seq/ev/span).
#: ``validate_records`` enforces this table; it is the machine-readable
#: half of the schema documented in DESIGN.md section 9.
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "span.begin": ("name",),
    "span.end": ("name",),
    # -- if-conversion (runs before unroll/SLP)
    "if_convert": (
        "block",
        "decision",
        "statements_in",
        "statements_out",
        "has_else",
    ),
    # -- candidate generation / VP construction
    "candidates.search": ("units", "pairs_examined", "found"),
    "vp.build": ("candidates", "nodes", "edges"),
    # -- grouping decision loop
    "grouping.commit": (
        "prov",
        "sids",
        "weight",
        "score",
        "picked_by",
        "engine",
        "proven_optimal",
        "runners_up",
        "removed",
    ),
    "grouping.round": ("round", "units", "decided", "leftovers"),
    # -- greedy SLP baseline
    "baseline.pack": ("prov", "sids", "reason"),
    # -- scheduling
    "schedule.pick": ("prov", "reuse_hits", "reuse_misses"),
    "schedule.order": ("prov", "orderings_tried", "permutations", "order"),
    # -- layout
    "layout.replicate": ("array", "source", "lanes", "elements"),
    "layout.skip": ("source", "reason"),
    "layout.scalars": ("names", "base"),
    # -- codegen
    "codegen.reuse": ("prov", "kind"),
    "codegen.pack": ("prov", "mode"),
    "codegen.gate": ("block", "vector_cycles", "scalar_cycles", "vectorized"),
    # -- runtime attribution (folded in from the simulator's report)
    "runtime.provenance": (
        "prov",
        "cycles",
        "instructions",
        "shuffles",
        "cache_misses",
    ),
    "runtime.array_cache": ("array", "accesses", "hits", "misses"),
    "runtime.totals": ("cycles", "instructions", "pack_unpack", "shuffles"),
}

#: Event kinds that represent a compile-time packing decision; the diff
#: view keys on these.
DECISION_EVENTS = ("grouping.commit", "baseline.pack")


def provenance_id(sids: Iterable[int], block: Optional[str] = None) -> str:
    """Stable ID for a committed group: ``b0:S2+S3``.

    Statement IDs restart at zero in every block, so IDs are qualified
    by the block label whenever one is known.
    """
    core = "+".join(f"S{sid}" for sid in sorted(sids))
    return f"{block}:{core}" if block else core


def json_safe(value: Any) -> Any:
    """Coerce a value into something ``json.dumps`` handles, keeping the
    result deterministic (sets are sorted, Fractions become ``"2/3"``)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, enum.Enum):
        return json_safe(value.value)
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(json_safe(item) for item in value)
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    return str(value)


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager emitting ``span.begin``/``span.end`` events.

    ``__exit__`` is generation-guarded the same way ``perf._Section`` is:
    a ``reset()`` while the span is open invalidates it, so unwinding
    cannot pop frames that belong to a newer trace.
    """

    __slots__ = ("registry", "name", "fields", "started", "_generation", "_depth")

    def __init__(self, registry: "TraceRegistry", name: str, fields: Dict[str, Any]):
        self.registry = registry
        self.name = name
        self.fields = fields
        self.started = 0.0
        self._generation = -1
        self._depth = 0

    def __enter__(self) -> "_Span":
        registry = self.registry
        registry._emit("span.begin", {"name": self.name, **self.fields})
        registry._stack.append((self.name, self.fields))
        registry._path = ";".join(name for name, _ in registry._stack)
        self._generation = registry._generation
        self._depth = len(registry._stack)
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        registry = self.registry
        wall_ms = (time.perf_counter() - self.started) * 1e3
        stack = registry._stack
        if (
            registry._generation != self._generation
            or len(stack) != self._depth
            or not stack
            or stack[-1][0] != self.name
        ):
            return  # reset() intervened; this frame no longer exists
        stack.pop()
        registry._path = ";".join(name for name, _ in stack)
        if registry.enabled:
            registry._emit(
                "span.end", {"name": self.name, "wall_ms": round(wall_ms, 3)}
            )


class TraceRegistry:
    """Process-global trace collector (see module docstring)."""

    def __init__(self) -> None:
        self.enabled = False
        self.meta: Dict[str, Any] = {}
        self.events: List[Dict[str, Any]] = []
        self._seq = 0
        self._stack: List[Tuple[str, Dict[str, Any]]] = []
        self._path = ""
        self._generation = 0

    # -- lifecycle ---------------------------------------------------------

    def enable(self, **meta: Any) -> None:
        """Turn tracing on; ``meta`` keys land in the trace header."""
        self.enabled = True
        self.meta.update(meta)

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Discard all state. Safe with spans still open: bumping the
        generation invalidates their pending ``__exit__``."""
        self.meta.clear()
        self.events.clear()
        self._seq = 0
        self._stack.clear()
        self._path = ""
        self._generation += 1

    # -- emission ----------------------------------------------------------

    def span(self, name: str, **fields: Any) -> Any:
        """Open a named span; nested events carry its path for context."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, fields)

    def event(self, kind: str, /, **fields: Any) -> None:
        """Record one event. Call sites on hot paths should guard with
        ``if TRACE.enabled:`` to avoid building the kwargs dict.
        ``kind`` is positional-only so events may carry a ``kind``
        field of their own (e.g. ``codegen.reuse``)."""
        if not self.enabled:
            return
        self._emit(kind, fields)

    def _emit(self, kind: str, fields: Dict[str, Any]) -> None:
        self._seq += 1
        record: Dict[str, Any] = {
            "seq": self._seq,
            "ev": kind,
            "span": self._path,
        }
        for key, value in fields.items():
            record[key] = json_safe(value)
        self.events.append(record)

    def current(self, key: str) -> Any:
        """Field value from the innermost enclosing span that set it
        (e.g. ``TRACE.current("block")`` inside a per-block span)."""
        for _name, fields in reversed(self._stack):
            if key in fields:
                return fields[key]
        return None

    # -- export ------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Header + events, ready for :func:`to_jsonl`."""
        header = {
            "schema": SCHEMA,
            "meta": {key: json_safe(self.meta[key]) for key in sorted(self.meta)},
        }
        return [header] + list(self.events)

    def to_jsonl(self) -> str:
        return to_jsonl(self.records())


#: The process-global registry every pass emits through.
TRACE = TraceRegistry()


# -- serialization -------------------------------------------------------------


def to_jsonl(records: Sequence[Dict[str, Any]]) -> str:
    lines = [json.dumps(record, sort_keys=True) for record in records]
    return "\n".join(lines) + "\n"


def canonical_jsonl(records: Sequence[Dict[str, Any]]) -> str:
    """JSONL with volatile (timing) fields stripped — two traces of the
    same compile compare byte-equal on this form."""
    lines = []
    for record in records:
        stripped = {
            key: value
            for key, value in record.items()
            if key not in VOLATILE_FIELDS
        }
        lines.append(json.dumps(stripped, sort_keys=True))
    return "\n".join(lines) + "\n"


def load_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse a trace back into records; raises ``ValueError`` on a
    missing/incompatible schema header."""
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not JSON ({exc})") from exc
        if not isinstance(record, dict):
            raise ValueError(f"line {lineno}: expected an object")
        records.append(record)
    if not records:
        raise ValueError("empty trace")
    header = records[0]
    if header.get("schema") != SCHEMA:
        raise ValueError(
            f"unsupported trace schema {header.get('schema')!r}"
            f" (expected {SCHEMA!r})"
        )
    return records


def validate_records(records: Sequence[Dict[str, Any]]) -> List[str]:
    """Check a trace against the schema; returns human-readable errors
    (empty list = valid)."""
    errors: List[str] = []
    if not records:
        return ["trace is empty"]
    header = records[0]
    if header.get("schema") != SCHEMA:
        errors.append(f"header schema is {header.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(header.get("meta", {}), dict):
        errors.append("header meta is not an object")
    last_seq = 0
    span_stack: List[str] = []
    for index, record in enumerate(records[1:], start=2):
        where = f"record {index}"
        kind = record.get("ev")
        if kind not in EVENT_FIELDS:
            errors.append(f"{where}: unknown event kind {kind!r}")
            continue
        seq = record.get("seq")
        if not isinstance(seq, int) or seq <= last_seq:
            errors.append(f"{where}: seq {seq!r} not strictly increasing")
        else:
            last_seq = seq
        if not isinstance(record.get("span"), str):
            errors.append(f"{where}: missing span path")
        for field_name in EVENT_FIELDS[kind]:
            if field_name not in record:
                errors.append(f"{where}: {kind} missing field {field_name!r}")
        if kind == "span.begin":
            span_stack.append(record.get("name", ""))
        elif kind == "span.end":
            if not span_stack:
                errors.append(f"{where}: span.end with no open span")
            elif span_stack[-1] != record.get("name"):
                errors.append(
                    f"{where}: span.end {record.get('name')!r} does not"
                    f" match open span {span_stack[-1]!r}"
                )
            else:
                span_stack.pop()
    for name in span_stack:
        errors.append(f"span {name!r} never closed")
    return errors


# -- runtime attribution -------------------------------------------------------


def fold_report(report: Any) -> None:
    """Append ``runtime.*`` events for a finished execution report so
    runtime costs sit in the same trace as the decisions that caused
    them. No-op when tracing is disabled."""
    if not TRACE.enabled:
        return
    with TRACE.span("runtime"):
        for prov in sorted(report.provenance):
            cost = report.provenance[prov]
            TRACE.event(
                "runtime.provenance",
                prov=prov,
                cycles=round(cost.cycles, 3),
                instructions=cost.instructions,
                shuffles=cost.shuffles,
                cache_misses=cost.cache_misses,
            )
        for array in sorted(report.array_accesses):
            accesses = report.array_accesses[array]
            misses = report.array_misses.get(array, 0)
            TRACE.event(
                "runtime.array_cache",
                array=array,
                accesses=accesses,
                hits=accesses - misses,
                misses=misses,
            )
        TRACE.event(
            "runtime.totals",
            cycles=round(report.cycles, 3),
            instructions=report.total_instructions,
            pack_unpack=report.pack_unpack_ops,
            shuffles=report.counts.get("shuffle", 0),
            cache_hits=report.cache_hits,
            cache_misses=report.cache_misses,
        )


# -- human views ---------------------------------------------------------------


def _format_fields(record: Dict[str, Any], skip: Tuple[str, ...]) -> str:
    parts = []
    for key, value in record.items():
        if key in skip:
            continue
        if isinstance(value, (list, dict)):
            parts.append(f"{key}={json.dumps(value)}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def render_tree(records: Sequence[Dict[str, Any]]) -> str:
    """Indented tree view of a trace: spans nest, events sit under the
    span that emitted them."""
    header = records[0]
    meta = header.get("meta", {})
    title = f"trace {header.get('schema', '?')}"
    if meta:
        title += "  [" + " ".join(f"{k}={meta[k]}" for k in sorted(meta)) + "]"
    lines = [title]
    depth = 0
    for record in records[1:]:
        kind = record.get("ev")
        if kind == "span.end":
            depth = max(depth - 1, 0)
            wall = record.get("wall_ms")
            if wall is not None and depth <= 1:
                lines.append(
                    "  " * (depth + 1) + f"({record.get('name')}: {wall} ms)"
                )
            continue
        pad = "  " * depth
        if kind == "span.begin":
            label = record.get("name", "?")
            extra = _format_fields(record, ("seq", "ev", "span", "name"))
            lines.append(f"{pad}{label}" + (f" [{extra}]" if extra else ""))
            depth += 1
        else:
            extra = _format_fields(record, ("seq", "ev", "span"))
            lines.append(f"{pad}{kind}: {extra}")
    return "\n".join(lines)


def summarize(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Compact per-trace statistics (plain dict: must survive pickling
    across the bench suite's worker-process boundary)."""
    decisions = 0
    reuse_hits = 0
    reuse_misses = 0
    orderings = 0
    replications = 0
    totals: Dict[str, Any] = {}
    kinds: Dict[str, int] = {}
    for record in records[1:]:
        kind = record.get("ev", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind in DECISION_EVENTS:
            decisions += 1
        elif kind == "schedule.pick":
            reuse_hits += record.get("reuse_hits", 0)
            reuse_misses += record.get("reuse_misses", 0)
        elif kind == "schedule.order":
            orderings += record.get("orderings_tried", 0)
        elif kind == "layout.replicate":
            replications += 1
        elif kind == "runtime.totals":
            totals = {
                "cycles": record.get("cycles"),
                "instructions": record.get("instructions"),
                "pack_unpack": record.get("pack_unpack"),
                "shuffles": record.get("shuffles"),
            }
    return {
        "events": len(records) - 1,
        "decisions": decisions,
        "reuse_hits": reuse_hits,
        "reuse_misses": reuse_misses,
        "orderings_tried": orderings,
        "replications": replications,
        "runtime": totals,
        "event_counts": dict(sorted(kinds.items())),
    }


# -- diffing -------------------------------------------------------------------


def _decision_index(
    records: Sequence[Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """prov -> the decision event that committed it (last write wins, so
    the baseline's combine steps supersede the seeds they merged)."""
    out: Dict[str, Dict[str, Any]] = {}
    for record in records[1:]:
        if record.get("ev") in DECISION_EVENTS and record.get("prov"):
            out[record["prov"]] = record
    return out


def _runtime_index(
    records: Sequence[Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    return {
        record["prov"]: record
        for record in records[1:]
        if record.get("ev") == "runtime.provenance" and record.get("prov")
    }


def _array_index(records: Sequence[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    return {
        record["array"]: record
        for record in records[1:]
        if record.get("ev") == "runtime.array_cache" and record.get("array")
    }


def _totals(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    for record in records[1:]:
        if record.get("ev") == "runtime.totals":
            return record
    return {}


def _describe_decision(record: Dict[str, Any]) -> str:
    if record.get("ev") == "grouping.commit":
        return (
            f"weight={record.get('weight')} score={record.get('score')}"
            f" picked_by={record.get('picked_by')}"
        )
    return f"reason={record.get('reason')}"


def _runtime_note(runtime: Optional[Dict[str, Any]]) -> str:
    if not runtime:
        return "no runtime cost attributed"
    return (
        f"cycles={runtime.get('cycles')}"
        f" shuffles={runtime.get('shuffles')}"
        f" cache_misses={runtime.get('cache_misses')}"
    )


def diff_records(
    a: Sequence[Dict[str, Any]],
    b: Sequence[Dict[str, Any]],
    label_a: str = "a",
    label_b: str = "b",
) -> str:
    """Human-readable decision + runtime-cost delta between two traces."""
    dec_a, dec_b = _decision_index(a), _decision_index(b)
    run_a, run_b = _runtime_index(a), _runtime_index(b)
    arr_a, arr_b = _array_index(a), _array_index(b)
    tot_a, tot_b = _totals(a), _totals(b)

    lines = [f"--- {label_a}", f"+++ {label_b}", ""]

    only_a = sorted(set(dec_a) - set(dec_b))
    only_b = sorted(set(dec_b) - set(dec_a))
    shared = sorted(set(dec_a) & set(dec_b))

    lines.append(f"decisions only in {label_a} ({len(only_a)}):")
    for prov in only_a:
        lines.append(
            f"  - {prov}  {_describe_decision(dec_a[prov])}"
            f"  [{_runtime_note(run_a.get(prov))}]"
        )
    if not only_a:
        lines.append("  (none)")
    lines.append(f"decisions only in {label_b} ({len(only_b)}):")
    for prov in only_b:
        lines.append(
            f"  + {prov}  {_describe_decision(dec_b[prov])}"
            f"  [{_runtime_note(run_b.get(prov))}]"
        )
    if not only_b:
        lines.append("  (none)")

    lines.append(f"shared decisions ({len(shared)}), runtime deltas:")
    for prov in shared:
        ra, rb = run_a.get(prov), run_b.get(prov)
        d_cycles = (rb or {}).get("cycles", 0) - (ra or {}).get("cycles", 0)
        d_shuffles = (rb or {}).get("shuffles", 0) - (ra or {}).get(
            "shuffles", 0
        )
        d_misses = (rb or {}).get("cache_misses", 0) - (ra or {}).get(
            "cache_misses", 0
        )
        lines.append(
            f"  = {prov}  dcycles={d_cycles:+.1f} dshuffles={d_shuffles:+d}"
            f" dcache_misses={d_misses:+d}"
        )
    if not shared:
        lines.append("  (none)")

    arrays = sorted(set(arr_a) | set(arr_b))
    if arrays:
        lines.append("per-array cache deltas:")
        for array in arrays:
            ma = arr_a.get(array, {})
            mb = arr_b.get(array, {})
            lines.append(
                f"  {array}: accesses {ma.get('accesses', 0)} -> "
                f"{mb.get('accesses', 0)}, misses {ma.get('misses', 0)} -> "
                f"{mb.get('misses', 0)}"
            )

    if tot_a or tot_b:
        ca, cb = tot_a.get("cycles", 0), tot_b.get("cycles", 0)
        delta = cb - ca
        pct = (delta / ca * 100.0) if ca else 0.0
        lines.append(
            f"totals: cycles {ca} -> {cb} ({delta:+.1f}, {pct:+.1f}%),"
            f" shuffles {tot_a.get('shuffles', 0)} -> {tot_b.get('shuffles', 0)},"
            f" pack_unpack {tot_a.get('pack_unpack', 0)} -> "
            f"{tot_b.get('pack_unpack', 0)}"
        )
    return "\n".join(lines)
