"""The remote artifact-store tier: L2 over HTTP under the on-disk L1.

goSLP-style offline-solve/online-reuse applied across machines: one
node pays for a compile, every node reuses the artifact. Three pieces:

* :class:`StoreServer` — a threaded stdlib HTTP server exposing a
  content-addressed blob namespace (``GET/PUT /v1/artifacts/<key>``,
  ``?kind=kernel`` for compiled-engine kernels) over an
  :class:`~repro.store.ArtifactStore` directory. Blobs are moved as raw
  bytes — the store node never unpickles what it holds, so a hostile
  artifact cannot execute there. ``repro store serve`` runs one.
* :class:`RemoteStore` — the blocking client: per-thread keep-alive
  connections, short timeouts, and a *never-raise* contract (a dead or
  slow remote degrades to a miss / dropped put; the L2 is an
  optimization, not a dependency). Hit/miss/error counts and get/put
  latency histograms land in a :class:`~repro.telemetry.metrics.
  MetricsRegistry` and in ``repro.perf`` counters, so worker-side
  traffic surfaces in the merged ``/metrics`` view.
* :class:`TieredStore` — the read-through / write-behind composition
  the service workers actually hold: ``get`` tries L1, then L2
  (populating L1 on an L2 hit); ``put`` writes L1 synchronously and
  queues the remote put onto a background writer thread, so the
  request path never waits on the network. The queue is bounded;
  overflow drops the remote copy (counted) rather than blocking.
"""

from __future__ import annotations

import http.client
import http.server
import os
import pickle
import queue
import re
import tempfile
import threading
import time
import urllib.parse
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..perf import count
from ..telemetry.metrics import MetricsRegistry

from . import ArtifactStore

#: Keys are hex digests (compile keys and kernel fingerprints are both
#: sha256-derived); anything else is rejected before touching the
#: filesystem, so the blob namespace cannot traverse directories.
_KEY_RE = re.compile(r"^[0-9a-f]{8,64}$")

#: Artifact kinds and the on-disk suffix each maps to.
KINDS = {
    "compile": ArtifactStore.SUFFIX,
    "kernel": ArtifactStore.KERNEL_SUFFIX,
}

#: Upper bound on a single artifact blob (pure abuse protection; real
#: pickled CompileResults are tens of KB).
MAX_BLOB_BYTES = 256 << 20


def _blob_path(root: Path, key: str, kind: str) -> Path:
    if not _KEY_RE.match(key):
        raise ValueError(f"malformed artifact key {key!r}")
    try:
        suffix = KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown artifact kind {kind!r}")
    return root / f"{key}{suffix}"


class _StoreHandler(http.server.BaseHTTPRequestHandler):
    """One request to the store server. The handler is stateless; all
    state lives on ``server`` (a :class:`_StoreHTTPServer`)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-store/1"

    # -- plumbing --------------------------------------------------------------

    def log_message(self, *args: Any) -> None:  # noqa: D102 - quiet
        pass

    def _reply(
        self, status: int, body: bytes,
        content_type: str = "application/octet-stream",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, status: int, payload: Dict[str, Any]) -> None:
        import json

        self._reply(
            status, json.dumps(payload).encode("utf-8"),
            content_type="application/json",
        )

    def _artifact_target(self) -> Optional[Tuple[Path, str]]:
        path, _, query = self.path.partition("?")
        if not path.startswith("/v1/artifacts/"):
            self._reply_json(404, {"ok": False, "error": "no such endpoint"})
            return None
        key = path[len("/v1/artifacts/"):]
        params = urllib.parse.parse_qs(query)
        kind = params.get("kind", ["compile"])[-1]
        try:
            blob_path = _blob_path(self.server.root, key, kind)
        except ValueError as exc:
            self._reply_json(400, {"ok": False, "error": str(exc)})
            return None
        return blob_path, kind

    # -- endpoints -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.partition("?")[0]
        if path == "/healthz":
            self._reply_json(
                200, {"ok": True, "schema": "repro.store/1"}
            )
            return
        if path == "/metrics":
            server = self.server
            stats = server.store.stats()
            self._reply_json(
                200,
                {
                    "ok": True,
                    "schema": "repro.store/1",
                    "entries": stats.entries,
                    "bytes": stats.bytes,
                    "gets": server.gets,
                    "puts": server.puts,
                    "not_found": server.not_found,
                },
            )
            return
        target = self._artifact_target()
        if target is None:
            return
        blob_path, _kind = target
        try:
            blob = blob_path.read_bytes()
        except (FileNotFoundError, OSError):
            self.server.not_found += 1
            self._reply_json(404, {"ok": False, "error": "no such artifact"})
            return
        self.server.gets += 1
        try:
            os.utime(blob_path)  # recency for the server-side pruner
        except OSError:
            pass
        self._reply(200, blob)

    def do_PUT(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        target = self._artifact_target()
        if target is None:
            return
        blob_path, _kind = target
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._reply_json(400, {"ok": False, "error": "bad Content-Length"})
            return
        if length <= 0 or length > MAX_BLOB_BYTES:
            self._reply_json(
                400, {"ok": False, "error": f"bad blob size {length}"}
            )
            return
        blob = self.rfile.read(length)
        server = self.server
        # Torn-write safety, same discipline as ArtifactStore.put:
        # temp file in the same directory, then an atomic rename.
        fd, tmp = tempfile.mkstemp(dir=server.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, blob_path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            self._reply_json(500, {"ok": False, "error": "write failed"})
            return
        server.puts += 1
        server.maybe_prune()
        self._reply_json(200, {"ok": True})


class _StoreHTTPServer(http.server.ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address, root: Path, max_bytes: Optional[int]):
        super().__init__(address, _StoreHandler)
        self.root = root
        self.store = ArtifactStore(root)
        self.max_bytes = max_bytes
        self.gets = 0
        self.puts = 0
        self.not_found = 0
        self._prune_lock = threading.Lock()

    #: Puts between byte-budget checks (stat-ing the whole directory
    #: per put would make writes O(entries)).
    PRUNE_EVERY = 32

    def maybe_prune(self) -> None:
        if self.max_bytes is None or self.puts % self.PRUNE_EVERY:
            return
        with self._prune_lock:
            self.store.prune(self.max_bytes)


class StoreServer:
    """An HTTP blob server over one artifact-store directory.

    Runs its handler threads as daemons; ``serve_forever`` blocks (the
    CLI path), ``start``/``stop`` run it on a background thread (tests
    and embedded topologies)."""

    def __init__(
        self,
        root: str,
        host: str = "127.0.0.1",
        port: int = 0,
        max_bytes: Optional[int] = None,
    ):
        root_path = Path(root)
        root_path.mkdir(parents=True, exist_ok=True)
        self._server = _StoreHTTPServer((host, port), root_path, max_bytes)
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def stats(self) -> Dict[str, int]:
        server = self._server
        return {
            "gets": server.gets,
            "puts": server.puts,
            "not_found": server.not_found,
        }

    def serve_forever(self) -> None:
        self._server.serve_forever(poll_interval=0.2)

    def start(self) -> "StoreServer":
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-store", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def __enter__(self) -> "StoreServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


class RemoteStore:
    """Blocking client for a :class:`StoreServer`; never raises on
    remote failure — a broken L2 degrades to misses and dropped puts."""

    def __init__(
        self,
        url: str,
        timeout: float = 5.0,
        metrics: Optional[MetricsRegistry] = None,
    ):
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported URL scheme {parsed.scheme!r}")
        self.url = url
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.timeout = timeout
        self._local = threading.local()
        registry = metrics or MetricsRegistry()
        self._ops = registry.counter(
            "repro_remote_store_ops_total",
            "Remote (L2) artifact store operations by this handle",
            labels=("op",),
        )
        self._latency = registry.histogram(
            "repro_remote_store_latency_ms",
            "Remote (L2) artifact store round-trip latency",
            labels=("op",),
        )

    def op_count(self, name: str) -> int:
        return int(self._ops.labels(op=name).value)

    # -- transport -------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
            self._local.conn = None

    def _round_trip(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Optional[Tuple[int, bytes]]:
        """One request on the per-thread keep-alive connection,
        transparently reconnecting once when the server closed it.
        Returns ``None`` on transport failure (the remote is down)."""
        for attempt in (0, 1):
            conn = self._connection()
            reused = conn.sock is not None
            try:
                conn.request(method, path, body=body)
                response = conn.getresponse()
                return response.status, response.read()
            except (http.client.HTTPException, OSError):
                self._drop_connection()
                if attempt == 0 and reused:
                    continue  # stale keep-alive: retry on a fresh socket
                return None
        return None  # pragma: no cover - loop always returns

    # -- blob API --------------------------------------------------------------

    def _blob_url(self, key: str, kind: str) -> str:
        if kind not in KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}")
        return f"/v1/artifacts/{key}?kind={kind}"

    def get_bytes(self, key: str, kind: str = "compile") -> Optional[bytes]:
        started = time.perf_counter()
        outcome = self._round_trip("GET", self._blob_url(key, kind))
        self._latency.labels(op="get").observe(
            time.perf_counter() - started
        )
        if outcome is None:
            self._ops.labels(op="error").inc()
            count("remote_store.errors")
            return None
        status, blob = outcome
        if status != 200:
            self._ops.labels(op="miss").inc()
            count("remote_store.misses")
            return None
        self._ops.labels(op="hit").inc()
        count("remote_store.hits")
        return blob

    def put_bytes(
        self, key: str, blob: bytes, kind: str = "compile"
    ) -> bool:
        started = time.perf_counter()
        outcome = self._round_trip(
            "PUT", self._blob_url(key, kind), body=blob
        )
        self._latency.labels(op="put").observe(
            time.perf_counter() - started
        )
        if outcome is None or outcome[0] != 200:
            self._ops.labels(op="error").inc()
            count("remote_store.errors")
            return False
        self._ops.labels(op="put").inc()
        count("remote_store.puts")
        return True

    def is_up(self, timeout: float = 2.0) -> bool:
        outcome = self._round_trip("GET", "/healthz")
        return bool(outcome and outcome[0] == 200)

    def close(self) -> None:
        self._drop_connection()


class TieredStore:
    """Read-through / write-behind composition of a local
    :class:`ArtifactStore` (L1) and a :class:`RemoteStore` (L2).

    Duck-compatible with ``ArtifactStore`` everywhere the service uses
    one (``get``/``put``/``get_kernel``/``put_kernel``/``stats``/
    ``prune``/``key``), so a worker holds either interchangeably."""

    #: Bounded write-behind queue; overflow drops the *remote* copy
    #: only (the L1 write already happened synchronously).
    QUEUE_SIZE = 256

    key = staticmethod(ArtifactStore.key)

    def __init__(
        self,
        local: ArtifactStore,
        remote: RemoteStore,
        queue_size: int = QUEUE_SIZE,
    ):
        self.local = local
        self.remote = remote
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_size)
        self._writer = threading.Thread(
            target=self._drain, name="repro-store-writeback", daemon=True
        )
        self._writer.start()

    # -- write-behind ----------------------------------------------------------

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                key, blob, kind = item
                self.remote.put_bytes(key, blob, kind)
            finally:
                self._queue.task_done()

    def _enqueue(self, key: str, obj: Any, kind: str) -> None:
        try:
            blob = pickle.dumps(obj)
        except Exception:  # pragma: no cover - artifacts pickle by design
            return
        try:
            self._queue.put_nowait((key, blob, kind))
        except queue.Full:
            count("remote_store.dropped_puts")

    def flush(self, timeout: float = 10.0) -> bool:
        """Block until queued remote puts have drained (tests, graceful
        worker exit). Returns False on timeout."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._queue.unfinished_tasks == 0:
                return True
            time.sleep(0.01)
        return False

    def close(self, flush_timeout: float = 5.0) -> None:
        self.flush(flush_timeout)
        try:
            self._queue.put_nowait(None)
        except queue.Full:  # pragma: no cover - queue just drained
            pass
        self._writer.join(timeout=flush_timeout)
        self.remote.close()

    # -- read-through ----------------------------------------------------------

    def _read_through(self, key: str, kind: str, local_get, local_put):
        result = local_get(key)
        if result is not None:
            return result
        blob = self.remote.get_bytes(key, kind)
        if blob is None:
            return None
        try:
            obj = pickle.loads(blob)
        except Exception:
            # A corrupt remote blob is a miss here and everywhere.
            count("remote_store.corrupt")
            return None
        # Populate L1 so the next read never leaves the machine.
        local_put(key, obj)
        count("remote_store.l1_fills")
        return obj

    def get(self, key: str):
        return self._read_through(
            key, "compile", self.local.get, self.local.put
        )

    def get_kernel(self, fingerprint: str):
        return self._read_through(
            fingerprint, "kernel",
            self.local.get_kernel, self.local.put_kernel,
        )

    def put(self, key: str, result: Any) -> None:
        self.local.put(key, result)
        self._enqueue(key, result, "compile")

    def put_kernel(self, fingerprint: str, artifact: Any) -> None:
        self.local.put_kernel(fingerprint, artifact)
        self._enqueue(fingerprint, artifact, "kernel")

    # -- maintenance (delegates to L1) -----------------------------------------

    @property
    def root(self):
        return self.local.root

    def stats(self):
        return self.local.stats()

    def remote_stats(self) -> Dict[str, int]:
        """L2 traffic counters for this handle (the ``/metrics`` body
        nests them next to the L1 StoreStats)."""
        return {
            "url": self.remote.url,
            "hits": self.remote.op_count("hit"),
            "misses": self.remote.op_count("miss"),
            "puts": self.remote.op_count("put"),
            "errors": self.remote.op_count("error"),
        }

    def prune(self, max_bytes: int) -> int:
        return self.local.prune(max_bytes)


def open_store(
    cache_dir: Optional[str],
    remote_url: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
):
    """The one place that decides which store a component holds:
    ``None`` (no caching), a plain :class:`ArtifactStore` (L1 only), or
    a :class:`TieredStore` (L1 + remote L2)."""
    if cache_dir is None:
        return None
    local = ArtifactStore(cache_dir, metrics=metrics)
    if not remote_url:
        return local
    return TieredStore(local, RemoteStore(remote_url, metrics=metrics))


__all__ = [
    "KINDS",
    "MAX_BLOB_BYTES",
    "RemoteStore",
    "StoreServer",
    "TieredStore",
    "open_store",
]
