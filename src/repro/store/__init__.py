"""The content-addressed artifact store.

``ArtifactStore`` is the on-disk memo of :func:`repro.compiler.
compile_program` results, shared by the bench runner (``run_suite``'s
``cache_dir``), the compile-and-simulate service (``repro serve``), and
the ``repro cache`` CLI. It grew out of ``repro.bench.suite.
CompileCache`` (which remains as a deprecation alias) when the service
needed the same store outside the bench harness.

Design points:

* **Content addressing.** The key covers the *entire* compile input —
  printed program text, variant, machine parameters, and compiler
  options — so a hit is guaranteed to reproduce the exact compile it
  replaces (the printer is a faithful round-trippable rendering of the
  IR, and both ``MachineModel`` and ``CompilerOptions`` are plain
  dataclasses whose reprs enumerate every field).
* **Torn-write safety.** Values are pickled ``CompileResult`` objects;
  writes go through a temp file + rename so concurrent workers sharing
  one store directory never observe a torn entry.
* **Corruption tolerance.** A truncated or otherwise unreadable entry
  is treated as a miss, *deleted* so it cannot poison later readers,
  and counted in ``corrupt_evictions``.
* **Bounded size.** :meth:`prune` evicts least-recently-used entries
  (hits refresh an entry's mtime) until the store fits a byte budget.
* **Two artifact kinds.** Compile results (``.pkl``) are keyed by
  :meth:`key`, which normalizes the simulation engine *out* — the
  engine plays no part in compilation, so reference/batched/compiled
  runs share compile entries. Compiled-engine kernels (``.kern.pkl``,
  :meth:`get_kernel`/:meth:`put_kernel`) are keyed separately by the
  kernel fingerprint from :func:`repro.vm.compiled.kernel_fingerprint`,
  which covers the plan content, machine, and codegen version — so warm
  service workers reuse emitted kernels across processes without ever
  re-running codegen.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from ..perf import count
from ..telemetry.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..compiler import CompilerOptions, CompileResult, Variant
    from ..vm import MachineModel


@dataclass(frozen=True)
class StoreStats:
    """A point-in-time summary of one store directory plus the counters
    this handle accumulated (counters are per-handle, not global: two
    processes sharing a directory each count their own traffic)."""

    root: str
    entries: int
    bytes: int
    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt_evictions: int = 0
    pruned: int = 0


class ArtifactStore:
    """On-disk, content-addressed memo of pickled compile artifacts."""

    #: Filename suffix of committed compile entries.
    SUFFIX = ".pkl"
    #: Filename suffix of compiled-engine kernel entries. Distinct from
    #: ``SUFFIX`` so a kernel fingerprint can never collide with a
    #: compile key; both kinds participate in :meth:`stats`/:meth:`prune`.
    KERNEL_SUFFIX = ".kern.pkl"

    def __init__(
        self,
        root: Union[str, Path],
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Op counters live in a metrics registry — per-handle by
        # default (a fresh private registry), preserving the documented
        # StoreStats semantics: two processes sharing a directory each
        # count their own traffic. Pass a shared registry to fold them
        # into a server's Prometheus exposition instead.
        self._ops = (metrics or MetricsRegistry()).counter(
            "repro_store_ops_total",
            "Artifact store operations by this handle",
            labels=("op",),
        )

    def _op(self, name: str) -> int:
        return int(self._ops.labels(op=name).value)

    @property
    def hits(self) -> int:
        return self._op("hit")

    @property
    def misses(self) -> int:
        return self._op("miss")

    @property
    def puts(self) -> int:
        return self._op("put")

    @property
    def corrupt_evictions(self) -> int:
        return self._op("corrupt_eviction")

    @property
    def pruned(self) -> int:
        return self._op("pruned")

    # -- keying ----------------------------------------------------------------

    @staticmethod
    def key(
        program,
        variant: "Variant",
        machine: "MachineModel",
        options: Optional["CompilerOptions"],
    ) -> str:
        from ..compiler import CompilerOptions
        from ..ir.printer import format_program

        # The simulation engine plays no part in compilation, so it is
        # normalized out of the key: reference and batched runs share
        # store entries.
        normalized = replace(options or CompilerOptions(), engine=None)
        blob = "\x00".join(
            (
                format_program(program),
                variant.value,
                repr(machine),
                repr(normalized),
            )
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}{self.SUFFIX}"

    # -- read/write ------------------------------------------------------------

    def get(self, key: str) -> Optional["CompileResult"]:
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self._ops.labels(op="miss").inc()
            count("compile_cache.misses")
            return None
        except Exception:
            # A torn, truncated, or otherwise corrupt entry must never
            # kill the run — unpickling garbage raises whatever opcode
            # it trips on (ValueError, KeyError, EOFError, ...). Treat
            # it as a miss, and delete the bad file so it cannot keep
            # poisoning readers (the recompile will rewrite it).
            self._ops.labels(op="miss").inc()
            self._ops.labels(op="corrupt_eviction").inc()
            count("compile_cache.misses")
            count("store.corrupt_evictions")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self._ops.labels(op="hit").inc()
        count("compile_cache.hits")
        try:
            # Refresh recency so prune() evicts genuinely cold entries.
            os.utime(path)
        except OSError:
            pass
        return result

    def put(self, key: str, result: "CompileResult") -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle)
            os.replace(tmp, self._path(key))
            self._ops.labels(op="put").inc()
        except OSError:  # pragma: no cover - store is best-effort
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- compiled-engine kernels -----------------------------------------------

    def _kernel_path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}{self.KERNEL_SUFFIX}"

    def get_kernel(self, fingerprint: str):
        """Load a pickled :class:`repro.vm.compiled.PlanKernelsArtifact`
        by kernel fingerprint, or ``None``. Same corruption policy as
        :meth:`get`: unreadable entries are evicted and count as misses."""
        path = self._kernel_path(fingerprint)
        try:
            with open(path, "rb") as handle:
                artifact = pickle.load(handle)
        except FileNotFoundError:
            self._ops.labels(op="miss").inc()
            count("kernel_store.misses")
            return None
        except Exception:
            self._ops.labels(op="miss").inc()
            self._ops.labels(op="corrupt_eviction").inc()
            count("kernel_store.misses")
            count("store.corrupt_evictions")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self._ops.labels(op="hit").inc()
        count("kernel_store.hits")
        try:
            os.utime(path)
        except OSError:
            pass
        return artifact

    def put_kernel(self, fingerprint: str, artifact) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(artifact, handle)
            os.replace(tmp, self._kernel_path(fingerprint))
            self._ops.labels(op="put").inc()
            count("kernel_store.puts")
        except OSError:  # pragma: no cover - store is best-effort
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- maintenance -----------------------------------------------------------

    def _entries(self):
        """(path, mtime, size) of every committed entry; unreadable
        files (concurrently deleted) are skipped."""
        out = []
        for path in self.root.glob(f"*{self.SUFFIX}"):
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append((path, stat.st_mtime, stat.st_size))
        return out

    def stats(self) -> StoreStats:
        entries = self._entries()
        return StoreStats(
            root=str(self.root),
            entries=len(entries),
            bytes=sum(size for _, _, size in entries),
            hits=self.hits,
            misses=self.misses,
            puts=self.puts,
            corrupt_evictions=self.corrupt_evictions,
            pruned=self.pruned,
        )

    def prune(self, max_bytes: int) -> int:
        """Evict least-recently-used entries until the store holds at
        most ``max_bytes``; returns the number of entries removed.

        Safe under concurrency: another pruner (or a corrupt-entry
        eviction in a reader) may delete an entry between our scan and
        our unlink. A vanished file no longer occupies space, so it
        still counts toward the byte budget we are reclaiming — but not
        toward *our* removed count."""
        entries = sorted(self._entries(), key=lambda e: e[1])
        total = sum(size for _, _, size in entries)
        removed = 0
        for path, _, size in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except FileNotFoundError:
                # Lost the race to a concurrent pruner/evictor: the
                # bytes are gone either way.
                total -= size
                continue
            except OSError:
                continue
            total -= size
            removed += 1
        if removed:
            self._ops.labels(op="pruned").inc(removed)
        return removed


#: Deprecation alias — the name this class had when it lived in
#: ``repro.bench.suite``. Old pickles are unaffected (entries hold
#: ``CompileResult`` objects, never the store class itself).
CompileCache = ArtifactStore

# The multi-node tier: an HTTP remote store (L2) layered under the
# on-disk store (L1). Imported at the bottom so ``repro.store`` keeps
# its historical import cost and ``remote`` can import ArtifactStore.
from .remote import (  # noqa: E402
    RemoteStore,
    StoreServer,
    TieredStore,
)

__all__ = [
    "ArtifactStore",
    "CompileCache",
    "RemoteStore",
    "StoreServer",
    "StoreStats",
    "TieredStore",
]
