"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile FILE`` — run a DSL source file through a chosen variant and
  print the schedule, the disassembled plan, and/or the execution
  report.
* ``compare FILE`` — run all variants on one source file and print the
  per-variant cycle/instruction comparison.
* ``explain FILE`` — show the holistic grouping decisions (candidate
  groups with their SG-edge reuse weights and cost-aware scores) for
  every optimizable block of a source file.
* ``trace FILE`` — compile (and simulate) with the structured tracer
  enabled and show the decision/cost tree; diff two variants or two
  saved traces with ``--diff``.
* ``bench`` — run the Table 3 suite on a machine model and print the
  Figure 16/19-style table; ``--check`` gates the run against a
  committed baseline (``--inject-slowdown`` is the CI mutation hook).
* ``profile FILE`` — collapsed-stack (flamegraph-compatible) profile
  of a compile: deterministic per-stage self-times by default, or a
  wall-clock stack sampler with ``--mode sampled``.
* ``kernels`` — list the benchmark kernels (Table 3).
* ``verify FILE`` — structural well-formedness checks on a source file,
  then a fully-verified compile of every variant.
* ``fuzz`` — differential fuzzing: random programs through every
  variant/engine combination against the scalar baseline.
* ``serve`` — run the compile-and-simulate server (warm sharded worker
  pool, request coalescing, shared artifact store, ``/healthz`` and
  ``/metrics``).
* ``submit FILE`` — send a compile(+simulate) job to a running server,
  falling back to local compilation when none is reachable.
* ``cache`` — inspect (``stats``) or size-bound (``prune``) an on-disk
  artifact store directory.

Examples::

    python -m repro compile saxpy.slp --variant global --emit-plan
    python -m repro compare saxpy.slp --machine amd
    python -m repro trace saxpy.slp --diff global:baseline
    python -m repro bench --n 64
    python -m repro bench --check --baseline benchmarks/results/BENCH_suite.json
    python -m repro profile --kernel cg --out cg.collapsed
    python -m repro verify saxpy.slp
    python -m repro fuzz --seed 0 --count 500
    python -m repro serve --workers 4 --cache-dir /var/cache/repro
    python -m repro submit saxpy.slp --variant global
    python -m repro cache stats --cache-dir /var/cache/repro
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .bench import ALL_KERNELS, ascii_table, percent, run_suite
from .compiler import CompilerOptions, Variant, compile_program
from .engines import engine_names
from .errors import ReproError, SuiteError
from .ir import parse_program
from .vm import MACHINES, Simulator, reduction
from .vm.pretty import disassemble_plan

VARIANTS = {v.value: v for v in Variant}


def _machine(name: str, datapath: Optional[int]):
    machine = MACHINES[name]()
    if datapath:
        machine = machine.with_datapath(datapath)
    return machine


def _options(args: argparse.Namespace) -> CompilerOptions:
    """The CompilerOptions a command's flags describe.

    The CLI expresses every knob *by building options* — see the
    precedence rule on :class:`CompilerOptions`: a flag left unset
    stays ``None`` and defers to the knob's environment variable, then
    to the built-in default. No command consults ``os.environ``.
    """
    return CompilerOptions(
        engine=getattr(args, "engine", None),
        grouping_engine=getattr(args, "grouping_engine", None)
        or "incremental",
        optimal_node_budget=getattr(args, "optimal_node_budget", None),
        checks=getattr(args, "checks", None),
        on_error=getattr(args, "on_error", None) or "raise",
    )


def _read_program(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return parse_program(handle.read())


def cmd_compile(args: argparse.Namespace) -> int:
    from .perf import PERF

    program = _read_program(args.file)
    machine = _machine(args.machine, args.datapath)
    variant = VARIANTS[args.variant]
    options = _options(args)
    if args.perf:
        PERF.reset()
        PERF.enable()
    try:
        result = compile_program(program, variant, machine, options)
        for diagnostic in result.diagnostics:
            print(f"note: {diagnostic}", file=sys.stderr)
        if args.emit_schedule:
            for schedule in result.schedules:
                print(schedule)
                print()
        if args.emit_plan:
            print(disassemble_plan(result.plan), end="")
        if args.run or not (args.emit_schedule or args.emit_plan):
            report, _memory = Simulator(
                result.machine, engine=options.engine
            ).run(result.plan)
            print(report.summary())
    finally:
        if args.perf:
            print(PERF.report(), file=sys.stderr)
            PERF.disable()
    if not args.quiet:
        stats = result.stats
        print(
            f"[{variant.value}] {stats.superword_statements} superword "
            f"statements, {stats.grouped_fraction:.0%} of statements "
            f"grouped, {stats.replications} replications, compiled in "
            f"{stats.compile_seconds * 1e3:.1f} ms",
            file=sys.stderr,
        )
    return 0


# Friendlier spellings accepted by ``trace --diff`` (and anywhere a
# variant name is resolved through :func:`_resolve_variant`).
VARIANT_ALIASES = {
    "baseline": "slp",
    "layout": "global+layout",
}


def _resolve_variant(name: str) -> Variant:
    resolved = VARIANT_ALIASES.get(name, name)
    if resolved not in VARIANTS:
        choices = sorted(VARIANTS) + sorted(VARIANT_ALIASES)
        raise SystemExit(
            f"repro trace: unknown variant {name!r}"
            f" (choose from {', '.join(choices)})"
        )
    return VARIANTS[resolved]


def _traced_compile(
    path: str,
    variant: Variant,
    machine,
    options: Optional[CompilerOptions] = None,
) -> list:
    """Compile+simulate one source file with tracing on; returns the
    trace records (runtime costs folded in)."""
    from .trace import TRACE, fold_report

    options = options or CompilerOptions()
    program = _read_program(path)
    TRACE.reset()
    TRACE.enable(file=os.path.basename(path), variant=variant.value)
    try:
        result = compile_program(program, variant, machine, options)
        report, _memory = Simulator(
            result.machine, engine=options.engine
        ).run(result.plan)
        fold_report(report)
        return TRACE.records()
    finally:
        TRACE.disable()
        TRACE.reset()


def _load_trace_file(path: str) -> list:
    from .trace import load_jsonl

    with open(path, "r", encoding="utf-8") as handle:
        return load_jsonl(handle.read())


def cmd_trace(args: argparse.Namespace) -> int:
    from .trace import (
        diff_records,
        render_tree,
        to_jsonl,
        validate_records,
    )

    machine = _machine(args.machine, args.datapath)
    options = _options(args)
    is_trace_file = args.file.endswith(".jsonl")

    if args.diff:
        spec = args.diff
        if ":" in spec and not os.path.exists(spec):
            if is_trace_file:
                raise SystemExit(
                    "repro trace: --diff A:B needs a DSL source file"
                    " to compile, not a saved .jsonl trace"
                )
            name_a, name_b = spec.split(":", 1)
            variant_a = _resolve_variant(name_a)
            variant_b = _resolve_variant(name_b)
            records_a = _traced_compile(
                args.file, variant_a, machine, options
            )
            records_b = _traced_compile(
                args.file, variant_b, machine, options
            )
            label_a, label_b = variant_a.value, variant_b.value
        else:
            if is_trace_file:
                records_a = _load_trace_file(args.file)
                label_a = os.path.basename(args.file)
            else:
                variant_a = _resolve_variant(args.variant)
                records_a = _traced_compile(
                    args.file, variant_a, machine, options
                )
                label_a = variant_a.value
            records_b = _load_trace_file(spec)
            label_b = os.path.basename(spec)
        print(diff_records(records_a, records_b, label_a, label_b))
        return 0

    if is_trace_file:
        records = _load_trace_file(args.file)
    else:
        records = _traced_compile(
            args.file, _resolve_variant(args.variant), machine, options
        )

    status = 0
    if args.validate:
        errors = validate_records(records)
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        if errors:
            status = 1
        else:
            print(f"valid: {len(records) - 1} events", file=sys.stderr)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(to_jsonl(records))
    if args.json:
        sys.stdout.write(to_jsonl(records))
    elif not (args.validate or args.out):
        print(render_tree(records))
    return status


def cmd_explain(args: argparse.Namespace) -> int:
    from .analysis import DependenceGraph
    from .ir import BasicBlock
    from .slp import BasicGrouping, GroupNode, iterative_grouping
    from .transform import if_convert_program, unroll_program

    program = _read_program(args.file)
    machine = _machine(args.machine, args.datapath)
    # Same pipeline order as compile_program: regions flatten to
    # predicated selects before unrolling ever sees the block.
    pre = unroll_program(if_convert_program(program), machine.datapath_bits)
    decl_of = lambda name: pre.arrays[name]  # noqa: E731

    blocks = []
    for item in pre.body:
        if isinstance(item, BasicBlock):
            blocks.append(("straight-line block", item))
        else:
            loop = item
            while loop.inner is not None:
                loop = loop.inner
            blocks.append((f"loop {loop.index} body", loop.body))

    for label, block in blocks:
        print(f"=== {label} ===")
        print(block)
        deps = DependenceGraph(block)
        units = [GroupNode.of_statement(s) for s in block]
        grouping = BasicGrouping(
            units, deps, machine.datapath_bits, decl_of
        )
        print(f"{len(grouping.candidates)} candidate groups:")
        for index, candidate in enumerate(grouping.candidates):
            sids = "{" + ", ".join(
                f"S{s}" for s in sorted(candidate.sid_set)
            ) + "}"
            print(
                f"  {sids:14s} weight {str(grouping.weight(index)):>6s}"
                f"  score {str(grouping.score(index)):>8s}"
                f"  adjacency {grouping.adjacency[index]}"
            )
        final_units, traces = iterative_grouping(
            block, deps, machine.datapath_bits, decl_of
        )
        print("decisions:")
        for round_index, trace in enumerate(traces):
            for candidate, weight in trace.decisions:
                sids = "{" + ", ".join(
                    f"S{s}" for s in sorted(candidate.sid_set)
                ) + "}"
                print(
                    f"  round {round_index}: {sids:14s} weight {weight}"
                )
        groups = [u for u in final_units if u.size > 1]
        singles = [u for u in final_units if u.size == 1]
        print(
            f"result: {len(groups)} superword statements, "
            f"{len(singles)} scalar statements\n"
        )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    machine = _machine(args.machine, args.datapath)
    options = _options(args)
    rows = []
    baseline = None
    base_memory = None
    for variant in Variant:
        program = _read_program(args.file)
        result = compile_program(program, variant, machine, options)
        report, memory = Simulator(
            result.machine, engine=options.engine
        ).run(result.plan)
        if variant is Variant.SCALAR:
            baseline = report
            base_memory = memory
        assert baseline is not None and base_memory is not None
        rows.append(
            (
                variant.value,
                f"{report.cycles:.0f}",
                percent(reduction(baseline.cycles, report.cycles)),
                str(report.pack_unpack_ops),
                "ok" if memory.state_equal(base_memory) else "MISMATCH",
            )
        )
    print(
        ascii_table(
            ("variant", "cycles", "vs scalar", "pack/unpack", "semantics"),
            rows,
        )
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .perf import PERF

    machine = _machine(args.machine, args.datapath)
    if args.timings:
        PERF.reset()
        PERF.enable()
    options = _options(args)
    status = 0
    try:
        results = run_suite(
            machine, options=options, n=args.n, jobs=args.jobs,
            cache_dir=args.cache_dir, trace_dir=args.trace_dir,
        )
    except SuiteError as exc:
        # Every kernel ran before this surfaced: report each failure
        # with its traceback, then the table of whatever finished.
        for name in sorted(exc.failures):
            print(f"=== {name} failed ===", file=sys.stderr)
            print(exc.failures[name], file=sys.stderr)
        print(str(exc), file=sys.stderr)
        results = getattr(exc, "results", {})
        status = 1
    for name in sorted(results):
        for variant, diags in sorted(
            results[name].diagnostics.items(), key=lambda kv: kv[0].value
        ):
            for diagnostic in diags:
                print(
                    f"note: {name} [{variant.value}] {diagnostic}",
                    file=sys.stderr,
                )
    rows = []
    for result in sorted(
        results.values(),
        key=lambda r: r.time_reduction(Variant.GLOBAL),
    ):
        rows.append(
            (
                result.kernel.name,
                percent(result.time_reduction(Variant.NATIVE)),
                percent(result.time_reduction(Variant.SLP)),
                percent(result.time_reduction(Variant.GLOBAL)),
                percent(result.time_reduction(Variant.GLOBAL_LAYOUT)),
            )
        )
    print(
        ascii_table(
            ("benchmark", "Native", "SLP", "Global", "Global+Layout"),
            rows,
        )
    )
    if args.trace_dir:
        print(f"\ntraces written to {args.trace_dir}:")
        for name in sorted(results):
            result = results[name]
            for variant in sorted(
                result.trace_summaries, key=lambda v: v.value
            ):
                summary = result.trace_summaries[variant]
                runtime = summary.get("runtime") or {}
                print(
                    f"  {name} [{variant.value}]: "
                    f"{summary['events']} events, "
                    f"{summary['decisions']} decisions, "
                    f"{summary['reuse_hits']} reuse hits / "
                    f"{summary['reuse_misses']} misses, "
                    f"{summary['replications']} replications, "
                    f"{runtime.get('cycles', '?')} cycles"
                )
    if args.timings:
        print(PERF.report(), file=sys.stderr)

    # -- the perf-regression gate (same suite run, no extra sweep) ------
    if args.write_baseline or args.check:
        from pathlib import Path

        from .bench.regress import (
            check_suite,
            render_verdict,
            write_suite_baseline,
        )

        if args.write_baseline:
            write_suite_baseline(
                Path(args.write_baseline), results,
                machine=args.machine, n=args.n,
            )
            print(
                f"baseline written to {args.write_baseline}",
                file=sys.stderr,
            )
        if args.check:
            try:
                verdict = check_suite(
                    Path(args.baseline),
                    results,
                    inject_slowdown=args.inject_slowdown,
                    config={"machine": args.machine, "n": args.n},
                )
            except (OSError, ValueError) as exc:
                print(f"repro bench --check: {exc}", file=sys.stderr)
                return 2
            if args.check_json:
                import json

                Path(args.check_json).write_text(
                    json.dumps(verdict, indent=2, sort_keys=True) + "\n"
                )
            print(render_verdict(verdict))
            if verdict["status"] != "ok":
                status = 1
            # The optimality-gap plane rides along: when a committed
            # BENCH_optimality.json sits next to the suite baseline,
            # recompute its deterministic score plane and gate it too
            # (a grouping-heuristic tweak that widens the greedy-vs-
            # optimal gap must not land silently).
            optimality_baseline = (
                Path(args.baseline).parent / "BENCH_optimality.json"
            )
            if optimality_baseline.exists():
                from .bench.optimality import check_optimality

                try:
                    opt_verdict = check_optimality(optimality_baseline)
                except (OSError, ValueError) as exc:
                    print(
                        f"repro bench --check (optimality): {exc}",
                        file=sys.stderr,
                    )
                    return 2
                print("optimality-gap plane:")
                print(render_verdict(opt_verdict))
                if opt_verdict["status"] != "ok":
                    status = 1
            # Likewise the predication plane: a committed
            # BENCH_predication.json next to the suite baseline pins
            # the branchy-kernel if-conversion metrics (vectorization,
            # vselect counts, cycle planes) and gates them here.
            predication_baseline = (
                Path(args.baseline).parent / "BENCH_predication.json"
            )
            if predication_baseline.exists():
                from .bench.predication import check_predication

                try:
                    pred_verdict = check_predication(predication_baseline)
                except (OSError, ValueError) as exc:
                    print(
                        f"repro bench --check (predication): {exc}",
                        file=sys.stderr,
                    )
                    return 2
                print("predication plane:")
                print(render_verdict(pred_verdict))
                if pred_verdict["status"] != "ok":
                    status = 1
    return status


def cmd_verify(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .verify import verify_program

    machine = _machine(args.machine, args.datapath)
    # ``verify`` exists to check: run every stage unless told otherwise.
    options = replace(
        _options(args), checks=getattr(args, "checks", None) or "all"
    )
    try:
        program = _read_program(args.file)
        verify_program(program)
    except ReproError as exc:
        print(f"invalid: {exc}")
        return 1
    status = 0
    variants = (
        [VARIANTS[args.variant]] if args.variant else list(Variant)
    )
    for variant in variants:
        try:
            result = compile_program(program, variant, machine, options)
        except ReproError as exc:
            print(f"{variant.value}: FAIL {exc}")
            status = 1
            continue
        if result.diagnostics:
            for diagnostic in result.diagnostics:
                print(f"{variant.value}: {diagnostic}")
            status = 1
        else:
            print(f"{variant.value}: ok")
    return status


def cmd_fuzz(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .fuzz import differential_check, fuzz

    machine = _machine(args.machine, args.datapath)
    options = _options(args)
    status = 0

    corpus = Path(args.corpus) if args.corpus else None
    if corpus is not None and corpus.is_dir():
        # Replay the saved regression corpus before generating anything.
        for path in sorted(corpus.glob("*.slp")):
            result = differential_check(
                parse_program(path.read_text(encoding="utf-8")), machine,
                options,
            )
            if result.status == "diverged":
                print(f"corpus {path.name}: {result.divergence.summary()}")
                status = 1
            elif not args.quiet:
                print(f"corpus {path.name}: {result.status}")

    report = fuzz(
        seed=args.seed,
        count=args.count,
        machine=machine,
        options=options,
        reduce_failures=args.reduce,
        max_divergences=args.max_divergences,
        conditional=args.conditional,
    )
    print(report.summary())
    if report.divergences:
        status = 1
        for divergence in report.divergences:
            print(f"\n=== seed {divergence.seed} ===")
            print(divergence.detail.rstrip())
            source = divergence.reduced_source or divergence.source
            print("--- reproduction ---")
            print(source.rstrip())
            if corpus is not None:
                corpus.mkdir(parents=True, exist_ok=True)
                stem = f"divergence-{divergence.seed}"
                (corpus / f"{stem}.slp").write_text(
                    divergence.source, encoding="utf-8"
                )
                if divergence.reduced_source:
                    (corpus / f"{stem}.reduced.slp").write_text(
                        divergence.reduced_source, encoding="utf-8"
                    )
                print(f"(saved to {corpus / stem}.slp)")
    return status


def cmd_profile(args: argparse.Namespace) -> int:
    from .perf import PERF
    from .telemetry.profile import SamplingProfiler, stage_collapsed

    if args.file:
        program = _read_program(args.file)
    elif args.kernel:
        from .bench import KERNELS

        if args.kernel not in KERNELS:
            raise SystemExit(
                f"repro profile: unknown kernel {args.kernel!r}"
            )
        program = KERNELS[args.kernel].build(args.n)
    else:
        raise SystemExit("repro profile: need a FILE or --kernel NAME")

    machine = _machine(args.machine, args.datapath)
    variant = VARIANTS[args.variant]
    options = _options(args)

    def workload() -> None:
        result = compile_program(program, variant, machine, options)
        if args.run:
            Simulator(result.machine, engine=options.engine).run(
                result.plan
            )

    if args.mode == "stages":
        PERF.reset()
        PERF.enable()
        try:
            for _ in range(args.repeat):
                workload()
            text = stage_collapsed(PERF.snapshot())
        finally:
            PERF.disable()
    else:
        profiler = SamplingProfiler(interval=args.interval)
        with profiler:
            for _ in range(args.repeat):
                workload()
        text = profiler.collapsed()
        print(
            f"{profiler.samples} samples at {args.interval * 1e3:.1f} ms",
            file=sys.stderr,
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"collapsed stacks written to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service.server import ReproService
    from .telemetry.log import LOG

    if args.log_json is not None:
        if args.log_json == "-":
            LOG.configure(service="repro-serve")
        else:
            LOG.configure(path=args.log_json, service="repro-serve")

    service = ReproService(
        host=args.host,
        port=args.port,
        shards=args.workers,
        queue_limit=args.queue_limit,
        cache_dir=args.cache_dir,
        job_timeout=args.job_timeout,
        test_hooks=os.environ.get("REPRO_SERVICE_TEST_HOOKS") == "1",
        remote_store_url=args.remote_store,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        min_workers=args.min_workers,
        max_workers=args.max_workers,
    )

    async def main() -> None:
        await service.start()
        await service.serve_forever()

    asyncio.run(main())
    return 0


def cmd_route(args: argparse.Namespace) -> int:
    import asyncio

    from .service.router import RouterService
    from .telemetry.log import LOG

    if args.log_json is not None:
        if args.log_json == "-":
            LOG.configure(service="repro-route")
        else:
            LOG.configure(path=args.log_json, service="repro-route")

    router = RouterService(
        nodes=args.node,
        host=args.host,
        port=args.port,
        load_factor=args.load_factor,
        health_interval=args.health_interval,
        retries=args.retries,
    )

    async def main() -> None:
        await router.start()
        await router.serve_forever()

    asyncio.run(main())
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient

    url = args.url or os.environ.get(
        "REPRO_SERVICE_URL", "http://127.0.0.1:8642"
    )
    options = _options(args)
    source = None
    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            source = handle.read()
    elif not args.kernel:
        raise SystemExit("repro submit: need a FILE or --kernel NAME")

    client = ServiceClient(url)
    if client.is_up():
        outcome = (
            client.compile if args.compile_only else client.simulate
        )(
            source=source,
            kernel=args.kernel,
            n=args.n,
            variant=args.variant,
            machine=args.machine,
            datapath=args.datapath,
            options=options,
            tenant=args.tenant,
            priority=args.priority,
            # --wait: honor the server's Retry-After (with jitter)
            # instead of failing on the first 429.
            retries=args.retries if args.wait else 0,
        )
        result, report = outcome.result, outcome.report
        origin = (
            f"served by {url}"
            f" (cached={str(outcome.cached).lower()},"
            f" coalesced={str(outcome.coalesced).lower()})"
        )
    else:
        # Transparent degradation: no server, same answer — compile
        # (and simulate) in-process exactly like ``repro compile``.
        if source is not None:
            program = parse_program(source)
        else:
            from .bench import KERNELS

            if args.kernel not in KERNELS:
                raise SystemExit(
                    f"repro submit: unknown kernel {args.kernel!r}"
                )
            program = KERNELS[args.kernel].build(args.n)
        machine = _machine(args.machine, args.datapath)
        result = compile_program(
            program, VARIANTS[args.variant], machine, options
        )
        report = None
        if not args.compile_only:
            report, _memory = Simulator(
                result.machine, engine=options.engine
            ).run(result.plan)
        origin = f"no server at {url}; compiled locally"
    for diagnostic in result.diagnostics:
        print(f"note: {diagnostic}", file=sys.stderr)
    if report is not None:
        print(report.summary())
    if not args.quiet:
        stats = result.stats
        print(
            f"[{args.variant}] {origin}; {stats.superword_statements} "
            f"superword statements, {stats.grouped_fraction:.0%} of "
            f"statements grouped",
            file=sys.stderr,
        )
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from .store import ArtifactStore

    if args.cache_command == "serve":
        import signal as signal_mod

        from .store.remote import StoreServer

        max_bytes = (
            int(args.max_mb * (1 << 20)) if args.max_mb else None
        )
        server = StoreServer(
            args.cache_dir, host=args.host, port=args.port,
            max_bytes=max_bytes,
        )

        def _term(_signum, _frame):
            raise KeyboardInterrupt

        signal_mod.signal(signal_mod.SIGTERM, _term)
        print(
            f"repro.store serving {args.cache_dir} on {server.url}",
            file=sys.stderr,
            flush=True,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
            print(
                "repro.store drained cleanly", file=sys.stderr, flush=True
            )
        return 0

    store = ArtifactStore(args.cache_dir)
    if args.cache_command == "stats":
        stats = store.stats()
        rows = [
            ("entries", str(stats.entries)),
            ("bytes", str(stats.bytes)),
            ("megabytes", f"{stats.bytes / (1 << 20):.2f}"),
        ]
        print(f"store: {stats.root}")
        print(ascii_table(("field", "value"), rows))
        return 0
    # prune
    max_bytes = int(args.max_mb * (1 << 20))
    before = store.stats()
    removed = store.prune(max_bytes)
    after = store.stats()
    print(
        f"pruned {removed} entr{'y' if removed == 1 else 'ies'} "
        f"({before.bytes - after.bytes} bytes): {before.entries} -> "
        f"{after.entries} entries, {after.bytes} bytes"
    )
    return 0


def cmd_kernels(_args: argparse.Namespace) -> int:
    rows = [(k.suite, k.name, k.description) for k in ALL_KERNELS]
    print(ascii_table(("suite", "benchmark", "description"), rows))
    return 0


def cmd_engines(args: argparse.Namespace) -> int:
    """List the registered grouping/sim engines — the same registry
    every ``--engine``/``--grouping-engine`` flag, ``CompilerOptions``,
    the fuzzer, and the service wire schema resolve against."""
    from . import engines as registry

    if args.markdown:
        print(registry.markdown_table())
        return 0
    rows = []
    for kind in registry.KINDS:
        for engine in registry.engines(kind):
            flags = []
            if engine.equivalence:
                flags.append(f"class={engine.equivalence}")
            if engine.proves_optimal:
                flags.append("proves-optimal")
            rows.append(
                (
                    kind,
                    engine.name,
                    engine.description,
                    engine.select_support,
                    " ".join(flags),
                )
            )
    print(
        ascii_table(
            ("kind", "engine", "description", "select support", "notes"),
            rows,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Holistic SLP: the PLDI 2012 framework, end to end.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--machine", choices=sorted(MACHINES), default="intel"
        )
        p.add_argument(
            "--datapath", type=int, default=None,
            help="SIMD width in bits (default: the machine's)",
        )
        p.add_argument(
            "--engine", choices=engine_names("sim"),
            default=None,
            help="simulation engine (default: $REPRO_SIM_ENGINE, then"
            " the reference interpreter); all produce identical"
            " reports",
        )
        p.add_argument(
            "--grouping-engine", choices=engine_names("grouping"),
            default=None, dest="grouping_engine",
            help="grouping decision loop (default: incremental); see"
            " `repro engines`",
        )
        p.add_argument(
            "--optimal-node-budget", type=int, default=None,
            dest="optimal_node_budget", metavar="N",
            help="search-node budget for --grouping-engine=optimal"
            " before falling back to the incremental result",
        )
        p.add_argument(
            "--checks", default=None, metavar="STAGES",
            help="pipeline verifier stages: 'all', 'none', or a comma"
            " list of ir,schedule,plan (default: $REPRO_CHECKS, then"
            " none)",
        )
        p.add_argument(
            "--on-error", choices=("raise", "fallback"), default=None,
            dest="on_error",
            help="per-block failure policy: raise (default) or fall"
            " back to scalar code with a diagnostic",
        )

    p_compile = sub.add_parser("compile", help="compile one DSL file")
    p_compile.add_argument("file")
    p_compile.add_argument(
        "--variant", choices=sorted(VARIANTS), default="global"
    )
    p_compile.add_argument("--emit-schedule", action="store_true")
    p_compile.add_argument("--emit-plan", action="store_true")
    p_compile.add_argument(
        "--run", action="store_true", help="simulate and print the report"
    )
    p_compile.add_argument(
        "--quiet", action="store_true",
        help="suppress the one-line compile stats on stderr",
    )
    p_compile.add_argument(
        "--perf", action="store_true",
        help="collect stage timings/counters, printed to stderr",
    )
    common(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_trace = sub.add_parser(
        "trace",
        help="trace the compile pipeline's decisions and runtime costs",
    )
    p_trace.add_argument(
        "file",
        help="a DSL source file to compile, or a saved .jsonl trace",
    )
    p_trace.add_argument(
        "--variant", default="global",
        help="variant to compile (accepts aliases 'baseline', 'layout')",
    )
    p_trace.add_argument(
        "--json", action="store_true",
        help="emit the raw JSONL trace instead of the tree view",
    )
    p_trace.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSONL trace to a file",
    )
    p_trace.add_argument(
        "--validate", action="store_true",
        help="check the trace against the schema; nonzero exit on errors",
    )
    p_trace.add_argument(
        "--diff", default=None, metavar="SPEC",
        help="diff decisions+costs: 'A:B' compiles two variants of FILE;"
        " a path diffs FILE's trace against a saved .jsonl trace",
    )
    common(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_compare = sub.add_parser(
        "compare", help="all variants on one DSL file"
    )
    p_compare.add_argument("file")
    common(p_compare)
    p_compare.set_defaults(func=cmd_compare)

    p_explain = sub.add_parser(
        "explain", help="show the grouping decisions for one DSL file"
    )
    p_explain.add_argument("file")
    common(p_explain)
    p_explain.set_defaults(func=cmd_explain)

    p_bench = sub.add_parser("bench", help="run the Table 3 suite")
    p_bench.add_argument("--n", type=int, default=64)
    p_bench.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the kernel sweep (default: 1)",
    )
    p_bench.add_argument(
        "--timings", action="store_true",
        help="collect compile/simulate stage timings and counters, "
        "printed to stderr after the table",
    )
    p_bench.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="on-disk compile cache: repeated bench invocations "
        "skip recompilation",
    )
    p_bench.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write a JSONL decision/cost trace per kernel+variant and "
        "fold per-kernel trace summaries into the report "
        "(bypasses the compile cache)",
    )
    p_bench.add_argument(
        "--check", action="store_true",
        help="gate this run against a committed baseline: deterministic"
        " cycle/instruction metrics compare everywhere, wall-clock only"
        " on the recording machine; nonzero exit on regression",
    )
    p_bench.add_argument(
        "--baseline", default="benchmarks/results/BENCH_suite.json",
        metavar="PATH",
        help="baseline artifact for --check (default:"
        " benchmarks/results/BENCH_suite.json)",
    )
    p_bench.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        dest="write_baseline",
        help="record this run as a new baseline artifact",
    )
    p_bench.add_argument(
        "--inject-slowdown", type=float, default=1.0,
        dest="inject_slowdown", metavar="FACTOR",
        help="multiply measured cycles before --check comparison"
        " (mutation hook: CI proves FACTOR=2.0 fails the gate)",
    )
    p_bench.add_argument(
        "--check-json", default=None, metavar="PATH", dest="check_json",
        help="also write the --check verdict document to PATH",
    )
    common(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_verify = sub.add_parser(
        "verify",
        help="verify a DSL file and a fully-checked compile per variant",
    )
    p_verify.add_argument("file")
    p_verify.add_argument(
        "--variant", choices=sorted(VARIANTS), default=None,
        help="verify one variant only (default: all of them)",
    )
    common(p_verify)
    p_verify.set_defaults(func=cmd_verify)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing against the scalar baseline",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0,
        help="base seed; case k uses seed+k (default: 0)",
    )
    p_fuzz.add_argument(
        "--count", type=int, default=100,
        help="number of generated programs (default: 100)",
    )
    p_fuzz.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="replay every *.slp in DIR through the oracle first, and"
        " save new divergences (full + reduced source) there",
    )
    p_fuzz.add_argument(
        "--reduce", action=argparse.BooleanOptionalAction, default=True,
        help="shrink each divergence to a minimal reproduction"
        " (default: on)",
    )
    p_fuzz.add_argument(
        "--max-divergences", type=int, default=10,
        help="stop after this many failures (default: 10)",
    )
    p_fuzz.add_argument(
        "--conditional", action="store_true",
        help="also generate if/else regions and select() expressions"
        " (the if-conversion grammar); adds a branch-semantics"
        " interpreter oracle per case",
    )
    p_fuzz.add_argument(
        "--quiet", action="store_true",
        help="don't print per-file corpus replay results",
    )
    common(p_fuzz)
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_serve = sub.add_parser(
        "serve",
        help="run the compile-and-simulate server",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8642,
        help="TCP port (0 picks an ephemeral port, printed on stderr)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=max(2, (os.cpu_count() or 2) // 2),
        help="worker shards — warm compile processes jobs are routed"
        " to by content key (default: half the cores, at least 2)",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=32, dest="queue_limit",
        help="max in-flight jobs before requests are shed with 429 +"
        " Retry-After (coalesced followers don't count; default: 32)",
    )
    p_serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed artifact store shared by all workers"
        " (default: no on-disk store; workers keep in-memory memos)",
    )
    p_serve.add_argument(
        "--job-timeout", type=float, default=300.0, dest="job_timeout",
        help="seconds before a silent worker is declared dead and the"
        " job retried on a fresh one (default: 300)",
    )
    p_serve.add_argument(
        "--log-json", nargs="?", const="-", default=None,
        dest="log_json", metavar="PATH",
        help="structured JSON-lines request logging, one record per"
        " event with correlation IDs, to PATH (append) or stderr"
        " when PATH is omitted",
    )
    p_serve.add_argument(
        "--remote-store", default=None, dest="remote_store",
        metavar="URL",
        help="URL of a `repro cache serve` blob server used as the L2"
        " artifact tier behind the on-disk --cache-dir (read-through,"
        " write-behind)",
    )
    p_serve.add_argument(
        "--tenant-rate", type=float, default=0.0, dest="tenant_rate",
        metavar="N",
        help="per-tenant token-bucket refill rate in requests/second"
        " (0 disables tenant rate limiting; default: 0)",
    )
    p_serve.add_argument(
        "--tenant-burst", type=float, default=0.0, dest="tenant_burst",
        metavar="N",
        help="per-tenant bucket capacity (default: max(1, rate))",
    )
    p_serve.add_argument(
        "--min-workers", type=int, default=None, dest="min_workers",
        metavar="N",
        help="autoscaler floor; with --max-workers, worker shards"
        " scale between the bounds from the queue-wait latency"
        " histogram with hysteresis",
    )
    p_serve.add_argument(
        "--max-workers", type=int, default=None, dest="max_workers",
        metavar="N",
        help="autoscaler ceiling (see --min-workers)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_route = sub.add_parser(
        "route",
        help="consistent-hash router over N running servers",
    )
    p_route.add_argument("--host", default="127.0.0.1")
    p_route.add_argument(
        "--port", type=int, default=8640,
        help="TCP port (0 picks an ephemeral port; default: 8640)",
    )
    p_route.add_argument(
        "--node", action="append", required=True, metavar="URL",
        help="a backend `repro serve` URL; repeat per node",
    )
    p_route.add_argument(
        "--load-factor", type=float, default=1.25, dest="load_factor",
        help="bounded-load limit: skip a preferred node whose in-flight"
        " count exceeds this multiple of the fleet average"
        " (default: 1.25)",
    )
    p_route.add_argument(
        "--health-interval", type=float, default=1.0,
        dest="health_interval",
        help="seconds between /healthz probes of every node"
        " (default: 1.0)",
    )
    p_route.add_argument(
        "--retries", type=int, default=3,
        help="extra nodes to try after a node loss, 429, or worker"
        " crash before surfacing the failure (default: 3)",
    )
    p_route.add_argument(
        "--log-json", nargs="?", const="-", default=None,
        dest="log_json", metavar="PATH",
        help="structured JSON-lines event logging (see `serve`)",
    )
    p_route.set_defaults(func=cmd_route)

    p_profile = sub.add_parser(
        "profile",
        help="collapsed-stack (flamegraph) profile of a compile",
    )
    p_profile.add_argument(
        "file", nargs="?", default=None,
        help="a DSL source file (or use --kernel)",
    )
    p_profile.add_argument(
        "--kernel", default=None, metavar="NAME",
        help="profile a benchmark kernel by name instead of a file",
    )
    p_profile.add_argument(
        "--n", type=int, default=64,
        help="kernel size for --kernel (default: 64)",
    )
    p_profile.add_argument(
        "--variant", choices=sorted(VARIANTS), default="global"
    )
    p_profile.add_argument(
        "--mode", choices=("stages", "sampled"), default="stages",
        help="stages: deterministic per-stage self-times from the perf"
        " registry (byte-stable, diffable); sampled: wall-clock stack"
        " sampler (default: stages)",
    )
    p_profile.add_argument(
        "--run", action="store_true",
        help="profile the simulation too, not just the compile",
    )
    p_profile.add_argument(
        "--repeat", type=int, default=1,
        help="workload repetitions (sampled mode needs enough wall time"
        " to collect samples; try 50)",
    )
    p_profile.add_argument(
        "--interval", type=float, default=0.005,
        help="sampling interval in seconds for --mode sampled"
        " (default: 0.005)",
    )
    p_profile.add_argument(
        "--out", default=None, metavar="PATH",
        help="write collapsed stacks to PATH instead of stdout"
        " (feed to flamegraph.pl or speedscope)",
    )
    common(p_profile)
    p_profile.set_defaults(func=cmd_profile)

    p_submit = sub.add_parser(
        "submit",
        help="submit a job to a running server (local fallback)",
    )
    p_submit.add_argument(
        "file", nargs="?", default=None,
        help="a DSL source file (or use --kernel)",
    )
    p_submit.add_argument(
        "--kernel", default=None, metavar="NAME",
        help="submit a benchmark kernel by name instead of a file",
    )
    p_submit.add_argument(
        "--n", type=int, default=0,
        help="kernel size for --kernel (default: the kernel's)",
    )
    p_submit.add_argument(
        "--variant", choices=sorted(VARIANTS), default="global"
    )
    p_submit.add_argument(
        "--url", default=None,
        help="server URL (default: $REPRO_SERVICE_URL, then"
        " http://127.0.0.1:8642)",
    )
    p_submit.add_argument(
        "--compile-only", action="store_true", dest="compile_only",
        help="compile without simulating",
    )
    p_submit.add_argument(
        "--quiet", action="store_true",
        help="suppress the one-line stats on stderr",
    )
    p_submit.add_argument(
        "--wait", action="store_true",
        help="when the server sheds the request (429), sleep its"
        " Retry-After (with jitter) and resubmit instead of failing",
    )
    p_submit.add_argument(
        "--retries", type=int, default=5,
        help="max resubmits under --wait (default: 5)",
    )
    p_submit.add_argument(
        "--tenant", default=None, metavar="NAME",
        help="tenant name for per-tenant rate accounting"
        " (default: 'default')",
    )
    p_submit.add_argument(
        "--priority", choices=("high", "normal", "bulk"), default=None,
        help="admission priority lane (default: normal)",
    )
    common(p_submit)
    p_submit.set_defaults(func=cmd_submit)

    p_cache = sub.add_parser(
        "cache",
        help="inspect or prune an artifact-store directory",
    )
    cache_sub = p_cache.add_subparsers(
        dest="cache_command", required=True
    )
    p_cache_stats = cache_sub.add_parser(
        "stats", help="entry/byte totals for a store directory"
    )
    p_cache_stats.add_argument(
        "--cache-dir", required=True, metavar="DIR"
    )
    p_cache_stats.set_defaults(func=cmd_cache)
    p_cache_prune = cache_sub.add_parser(
        "prune", help="evict least-recently-used entries to a budget"
    )
    p_cache_prune.add_argument(
        "--cache-dir", required=True, metavar="DIR"
    )
    p_cache_prune.add_argument(
        "--max-mb", type=float, required=True, dest="max_mb",
        help="target store size in megabytes",
    )
    p_cache_prune.set_defaults(func=cmd_cache)
    p_cache_serve = cache_sub.add_parser(
        "serve",
        help="serve a store directory over HTTP (the cluster L2 tier)",
    )
    p_cache_serve.add_argument(
        "--cache-dir", required=True, metavar="DIR"
    )
    p_cache_serve.add_argument("--host", default="127.0.0.1")
    p_cache_serve.add_argument(
        "--port", type=int, default=8641,
        help="TCP port (0 picks an ephemeral port; default: 8641)",
    )
    p_cache_serve.add_argument(
        "--max-mb", type=float, default=None, dest="max_mb",
        help="prune the directory toward this budget as puts land",
    )
    p_cache_serve.set_defaults(func=cmd_cache)

    p_kernels = sub.add_parser("kernels", help="list the benchmarks")
    p_kernels.set_defaults(func=cmd_kernels)

    p_engines = sub.add_parser(
        "engines", help="list the registered grouping/sim engines"
    )
    p_engines.add_argument(
        "--markdown", action="store_true",
        help="emit the README's engine table (GitHub markdown)",
    )
    p_engines.set_defaults(func=cmd_engines)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
