"""Prometheus text exposition (format version 0.0.4) + validator.

:func:`render_prometheus` turns one or more
:class:`~repro.telemetry.metrics.MetricsRegistry` instances — plus an
optional ``repro.perf`` snapshot — into the plain-text exposition
format every Prometheus-compatible scraper speaks. The service serves
it at ``GET /metrics?format=prometheus`` (the JSON body stays the
default and unchanged).

:func:`validate_exposition` is a pure-python checker of the same
format: line grammar, label syntax and escaping, ``# TYPE`` placement,
sample grouping, histogram bucket monotonicity, the mandatory
``le="+Inf"`` bucket, and ``_count``/``+Inf`` agreement. Tests pin the
server's exposition with it, and CI runs it against a live ``repro
serve`` instance (``python -m repro.telemetry.promtext`` reads a file
or stdin and exits non-zero on violations) — so a scraper-breaking
regression fails the build, not the fleet.

The ``repro.perf`` bridge keeps one source of truth: compile/simulate
stage timings and engine counters already flow through ``PERF``
(including worker-process snapshots merged by the pool), so the
exposition derives ``repro_perf_*`` series from a snapshot instead of
double-instrumenting the hot paths. Only flat section names are
exported — the ``;``-joined nesting paths are unbounded-cardinality
and belong to the profiler (:mod:`repro.telemetry.profile`), not a
scrape.
"""

from __future__ import annotations

import math
import re
import sys
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .metrics import Histogram, MetricsRegistry

_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"          # metric name
    r"(?:\{(.*)\})?"                        # optional label block
    r" (-?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf)|NaN|\+Inf|-Inf)"
    r"(?: (-?[0-9]+))?$"                    # optional timestamp
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_block(names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


def _render_family(family, lines: List[str]) -> None:
    if family.help:
        lines.append(f"# HELP {family.name} {escape_help(family.help)}")
    lines.append(f"# TYPE {family.name} {family.kind}")
    for values, child in family.samples():
        block = _label_block(family.label_names, values)
        if family.kind == "histogram":
            for bound, cumulative in child.cumulative():
                le = "+Inf" if math.isinf(bound) else f"{bound:g}"
                bucket_labels = list(zip(family.label_names, values))
                pairs = ",".join(
                    f'{name}="{escape_label_value(value)}"'
                    for name, value in bucket_labels
                )
                pairs = pairs + "," if pairs else ""
                lines.append(
                    f'{family.name}_bucket{{{pairs}le="{le}"}} {cumulative}'
                )
            lines.append(
                f"{family.name}_sum{block} {_format_value(child.sum_ms)}"
            )
            lines.append(f"{family.name}_count{block} {child.total}")
        else:
            lines.append(
                f"{family.name}{block} {_format_value(child.value)}"
            )


def perf_registry(perf_snapshot: Dict[str, Any]) -> MetricsRegistry:
    """A throwaway registry derived from a ``PerfRegistry.snapshot()``,
    exporting flat sections as seconds/calls counters and perf counters
    as plain counters."""
    registry = MetricsRegistry()
    seconds = registry.counter(
        "repro_perf_section_seconds_total",
        "Cumulative wall time per repro.perf section (flat names)",
        labels=("section",),
    )
    calls = registry.counter(
        "repro_perf_section_calls_total",
        "Entry count per repro.perf section (flat names)",
        labels=("section",),
    )
    counters = registry.counter(
        "repro_perf_counter_total",
        "repro.perf event counters (compile, engines, caches)",
        labels=("counter",),
    )
    for name, (secs, count) in sorted(
        perf_snapshot.get("sections", {}).items()
    ):
        if ";" in name:
            continue  # nesting paths: profiler territory, not scrapes
        seconds.labels(section=name).inc(secs)
        calls.labels(section=name).inc(count)
    for name, value in sorted(perf_snapshot.get("counters", {}).items()):
        counters.labels(counter=name).inc(value)
    return registry


def render_prometheus(
    *registries: MetricsRegistry,
    perf_snapshot: Optional[Dict[str, Any]] = None,
) -> str:
    """The exposition body for one scrape. Families across registries
    must not collide (the service keeps its instance registry and the
    perf bridge disjoint by prefix)."""
    lines: List[str] = []
    seen: set = set()
    sources = list(registries)
    if perf_snapshot is not None:
        sources.append(perf_registry(perf_snapshot))
    for registry in sources:
        for family in registry.families():
            if family.name in seen:
                raise ValueError(
                    f"metric {family.name!r} exposed by two registries"
                )
            seen.add(family.name)
            _render_family(family, lines)
    return "\n".join(lines) + "\n"


CONTENT_TYPE = _CONTENT_TYPE


# -- validation ----------------------------------------------------------------


def _parse_labels(block: str, where: str, errors: List[str]) -> Optional[
    Tuple[Tuple[str, str], ...]
]:
    """Parse a label block's ``name="value"`` pairs; None on syntax
    errors (already appended to ``errors``)."""
    if block is None:
        return ()
    rest = block
    pairs: List[Tuple[str, str]] = []
    while rest:
        match = _LABEL_PAIR_RE.match(rest)
        if not match:
            errors.append(f"{where}: bad label syntax near {rest[:30]!r}")
            return None
        pairs.append((match.group(1), match.group(2)))
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            errors.append(f"{where}: expected ',' between labels")
            return None
    names = [name for name, _ in pairs]
    if len(set(names)) != len(names):
        errors.append(f"{where}: duplicate label name")
        return None
    return tuple(pairs)


def _base_name(name: str) -> str:
    """The family a sample belongs to (strips histogram/summary
    suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def validate_exposition(text: str) -> List[str]:
    """Check a text exposition; returns human-readable problems (empty
    list = valid)."""
    errors: List[str] = []
    if not text:
        return ["exposition is empty"]
    if not text.endswith("\n"):
        errors.append("exposition must end with a newline")

    types: Dict[str, str] = {}
    sampled: set = set()       # families that already emitted samples
    finished: set = set()      # families whose sample group has closed
    last_family: Optional[str] = None
    seen_samples: set = set()  # (name, labels) duplicates
    # histogram family -> {non-le labels -> [(le, value), ...]}
    buckets: Dict[str, Dict[Tuple, List[Tuple[str, float]]]] = {}
    sums: Dict[str, Dict[Tuple, float]] = {}
    counts: Dict[str, Dict[Tuple, float]] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"line {lineno}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                    errors.append(f"{where}: malformed {parts[1]} comment")
                    continue
                name = parts[2]
                if parts[1] == "TYPE":
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in _TYPES:
                        errors.append(
                            f"{where}: unknown metric type {kind!r}"
                        )
                    if name in types:
                        errors.append(f"{where}: duplicate TYPE for {name}")
                    if name in sampled:
                        errors.append(
                            f"{where}: TYPE for {name} after its samples"
                        )
                    types[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            errors.append(f"{where}: malformed sample line {line[:60]!r}")
            continue
        name, label_block, value_text = (
            match.group(1), match.group(2), match.group(3),
        )
        pairs = _parse_labels(label_block, where, errors)
        if pairs is None:
            continue
        try:
            value = float(value_text.replace("Inf", "inf"))
        except ValueError:
            errors.append(f"{where}: unparsable value {value_text!r}")
            continue
        family = _base_name(name) if _base_name(name) in types else name
        if family != last_family:
            if last_family is not None:
                finished.add(last_family)
            if family in finished:
                errors.append(
                    f"{where}: samples of {family} are not contiguous"
                )
            last_family = family
        sampled.add(family)
        sample_key = (name, pairs)
        if sample_key in seen_samples:
            errors.append(f"{where}: duplicate sample {name}{dict(pairs)}")
        seen_samples.add(sample_key)

        if types.get(family) == "histogram":
            rest = tuple(
                (label, val) for label, val in pairs if label != "le"
            )
            if name == f"{family}_bucket":
                le = dict(pairs).get("le")
                if le is None:
                    errors.append(f"{where}: bucket without le label")
                    continue
                buckets.setdefault(family, {}).setdefault(rest, []).append(
                    (le, value)
                )
            elif name == f"{family}_sum":
                sums.setdefault(family, {})[rest] = value
            elif name == f"{family}_count":
                counts.setdefault(family, {})[rest] = value
            else:
                errors.append(
                    f"{where}: stray sample {name} in histogram {family}"
                )

    for family, by_labels in buckets.items():
        for rest, series in by_labels.items():
            label_note = f"{family}{dict(rest)}"
            les = [le for le, _ in series]
            if les[-1] != "+Inf":
                errors.append(f"{label_note}: last bucket must be +Inf")
            numeric = []
            for le in les[:-1] if les[-1] == "+Inf" else les:
                try:
                    numeric.append(float(le))
                except ValueError:
                    errors.append(f"{label_note}: bad le value {le!r}")
            if numeric != sorted(numeric):
                errors.append(f"{label_note}: bucket bounds not sorted")
            values = [value for _, value in series]
            if any(b > a for b, a in zip(values, values[1:])):
                errors.append(f"{label_note}: bucket counts not cumulative")
            count = counts.get(family, {}).get(rest)
            if count is None:
                errors.append(f"{label_note}: histogram without _count")
            elif les[-1] == "+Inf" and values[-1] != count:
                errors.append(
                    f"{label_note}: _count {count:g} != +Inf bucket"
                    f" {values[-1]:g}"
                )
            if rest not in sums.get(family, {}):
                errors.append(f"{label_note}: histogram without _sum")
    for family, kind in types.items():
        if kind == "histogram" and family in sampled:
            if family not in buckets:
                errors.append(f"{family}: histogram without buckets")
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.telemetry.promtext [FILE]`` — validate an
    exposition from FILE (or stdin), printing problems; exit 1 if any."""
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] not in ("-",):
        with open(args[0], "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    problems = validate_exposition(text)
    for problem in problems:
        print(f"invalid: {problem}", file=sys.stderr)
    if not problems:
        samples = sum(
            1
            for line in text.splitlines()
            if line.strip() and not line.startswith("#")
        )
        print(f"valid: {samples} samples", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())


__all__ = [
    "CONTENT_TYPE",
    "escape_help",
    "escape_label_value",
    "main",
    "perf_registry",
    "render_prometheus",
    "validate_exposition",
]
