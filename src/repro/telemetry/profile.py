"""Profilers emitting collapsed-stack (flamegraph-compatible) output.

Two complementary views, one output format — the classic
``frame;frame;frame count`` collapsed-stack lines that
``flamegraph.pl``, speedscope, and every flame viewer ingest:

* :class:`SamplingProfiler` — a wall-clock sampler. A daemon thread
  snapshots the target thread's Python stack via
  ``sys._current_frames()`` at a fixed interval; counts are samples.
  Zero instrumentation in the profiled code, statistically honest,
  non-deterministic.
* :func:`stage_collapsed` — a *deterministic* profile derived from a
  ``repro.perf`` snapshot. ``PerfRegistry`` already records every
  section under its ``;``-joined dynamic nesting path
  (``compile;grouping;grouping.decide``) — exactly a collapsed stack,
  with wall seconds instead of sample counts. This function rebuilds
  the tree, computes per-node *self* time, and emits counts in
  microseconds. Same compile, same profile, byte for byte — which
  makes it diffable and CI-artifact-friendly where a sampler is not.

The ``repro profile`` CLI fronts both (``--mode stages`` is the
default; ``--mode sampled`` wraps the same compile in the sampler).
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Dict, List, Optional, Tuple

#: Sampling interval of the wall-clock profiler (5 ms ~= 200 Hz).
DEFAULT_INTERVAL = 0.005


def _frame_label(frame) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{code.co_name}"


class SamplingProfiler:
    """Periodic stack sampler for one thread (default: the caller's).

    Use as a context manager around the region of interest::

        with SamplingProfiler() as prof:
            compile_program(...)
        print(prof.collapsed())
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        target_thread_id: Optional[int] = None,
    ):
        self.interval = interval
        self.target_thread_id = (
            target_thread_id
            if target_thread_id is not None
            else threading.get_ident()
        )
        self.stacks: Dict[Tuple[str, ...], int] = {}
        self.samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _run(self) -> None:
        while not self._stop.is_set():
            frame = sys._current_frames().get(self.target_thread_id)
            if frame is not None:
                stack: List[str] = []
                while frame is not None:
                    stack.append(_frame_label(frame))
                    frame = frame.f_back
                key = tuple(reversed(stack))  # outermost first
                self.stacks[key] = self.stacks.get(key, 0) + 1
                self.samples += 1
            self._stop.wait(self.interval)

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def collapsed(self, trim_prefix: bool = True) -> str:
        """Collapsed-stack lines, one per distinct stack. With
        ``trim_prefix`` the frames below (and including) the profiler's
        own start site's caller chain common to *every* stack are
        dropped — the interpreter/pytest bootstrap adds ~10 identical
        frames of noise."""
        stacks = dict(self.stacks)
        if trim_prefix and len(stacks) > 1:
            common = 0
            first = min(stacks)
            limit = min(len(stack) for stack in stacks)
            while common < limit - 1 and all(
                stack[common] == first[common] for stack in stacks
            ):
                common += 1
            stacks = {stack[common:]: n for stack, n in stacks.items()}
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(stacks.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")


# -- deterministic per-stage profile from repro.perf ---------------------------


def stage_tree(
    perf_snapshot: Dict[str, Any]
) -> Dict[Tuple[str, ...], float]:
    """Rebuild the section nesting tree from a ``PerfRegistry``
    snapshot: node path -> *total* seconds attributed to that path.

    ``PerfRegistry`` records a nested section under both its flat name
    and its full ``;`` path; top-level sections only under the flat
    name. A flat name's root-level share is therefore its flat total
    minus every nested occurrence (paths ending in ``;name``).
    """
    sections = {
        name: float(seconds)
        for name, (seconds, _calls) in perf_snapshot.get(
            "sections", {}
        ).items()
    }
    tree: Dict[Tuple[str, ...], float] = {}
    for name, seconds in sections.items():
        if ";" in name:
            tree[tuple(name.split(";"))] = seconds
    for name, seconds in sections.items():
        if ";" in name:
            continue
        nested = sum(
            secs
            for path, secs in sections.items()
            if ";" in path and path.split(";")[-1] == name
        )
        root_share = seconds - nested
        if root_share > 1e-12 or not nested:
            tree[(name,)] = root_share
    return tree


def stage_collapsed(perf_snapshot: Dict[str, Any]) -> str:
    """Collapsed-stack lines from a perf snapshot; counts are the
    node's **self** microseconds (total minus direct children), so a
    flame viewer reconstructs totals by summation exactly."""
    tree = stage_tree(perf_snapshot)
    lines = []
    for path in sorted(tree):
        total = tree[path]
        children = sum(
            seconds
            for child, seconds in tree.items()
            if len(child) == len(path) + 1 and child[: len(path)] == path
        )
        self_us = int(round(max(0.0, total - children) * 1e6))
        if self_us > 0:
            lines.append(";".join(path) + f" {self_us}")
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = [
    "DEFAULT_INTERVAL",
    "SamplingProfiler",
    "stage_collapsed",
    "stage_tree",
]
