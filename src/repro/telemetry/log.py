"""Structured JSON-lines logging and request correlation IDs.

One request to the compile service crosses at least four execution
contexts: the client process, the server's event loop, a worker
thread, and a worker *process* (plus every follower coalesced onto the
same leader). A plain log line from any one of them is uncorrelatable.
This module gives each request a **correlation ID**:

* :func:`new_request_id` mints one (``ServiceClient`` does this per
  job and sends it in the wire envelope; the server mints one for
  clients that didn't);
* :func:`bind_request_id` binds it to a ``contextvars`` context so
  every log line emitted while handling that request carries it
  automatically, across threads and ``await`` points;
* responses, error payloads (including ``WorkerCrashError``), and
  per-request trace metadata all echo it back, so a client log line, a
  server log line, a worker perf snapshot, and a saved trace can be
  joined on one key. Coalesced followers additionally record the
  *leader's* ID (``leader_request_id``), linking the N requests that
  shared one compile.

:data:`LOG` follows the house rule: off by default, one attribute
check when disabled. Hot paths must guard with ``if LOG.enabled:``
before building kwargs — same discipline as ``TRACE``.
"""

from __future__ import annotations

import contextvars
import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, TextIO

#: The context-local correlation ID (None outside a request).
_REQUEST_ID: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_request_id", default=None
)


def new_request_id() -> str:
    """A fresh correlation ID: 16 hex chars, collision-safe for any
    realistic request volume, cheap to mint, grep-friendly."""
    return os.urandom(8).hex()


def current_request_id() -> Optional[str]:
    """The correlation ID bound to this context, if any."""
    return _REQUEST_ID.get()


@contextmanager
def bind_request_id(request_id: Optional[str]) -> Iterator[Optional[str]]:
    """Bind ``request_id`` for the dynamic extent of the block."""
    token = _REQUEST_ID.set(request_id)
    try:
        yield request_id
    finally:
        _REQUEST_ID.reset(token)


class JsonLogger:
    """A JSON-lines event logger.

    Each call to :meth:`event` writes exactly one line::

        {"ts": 1754650000.123456, "event": "request.done",
         "request_id": "9f2c1a7e55aa40d1", "path": "/v1/compile", ...}

    ``request_id`` is filled from the bound context automatically (an
    explicit ``request_id=`` kwarg wins). Writes are serialized by a
    lock — the service logs from the event loop and worker threads.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._stream: Optional[TextIO] = None
        self._owns_stream = False
        self._base: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def configure(
        self,
        stream: Optional[TextIO] = None,
        path: Optional[str] = None,
        **base_fields: Any,
    ) -> "JsonLogger":
        """Enable logging to ``stream``, or append-mode ``path``, or
        stderr. ``base_fields`` are merged into every record (e.g.
        ``service="repro-serve"``)."""
        if self._owns_stream and self._stream is not None:
            self._stream.close()
        if path is not None:
            self._stream = open(path, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = stream if stream is not None else sys.stderr
            self._owns_stream = False
        self._base = dict(base_fields)
        self.enabled = True
        return self

    def disable(self) -> None:
        self.enabled = False
        if self._owns_stream and self._stream is not None:
            self._stream.close()
        self._stream = None
        self._owns_stream = False
        self._base = {}

    def event(self, event: str, /, **fields: Any) -> None:
        """Write one record; no-op when disabled. ``event`` is
        positional-only so a record may carry an ``event=`` field of
        its own payload."""
        if not self.enabled:
            return
        record: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "event": event,
        }
        request_id = fields.pop("request_id", None) or _REQUEST_ID.get()
        if request_id is not None:
            record["request_id"] = request_id
        record.update(self._base)
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        line = json.dumps(record, sort_keys=True, default=str)
        stream = self._stream
        if stream is None:  # pragma: no cover - defensive
            return
        with self._lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):  # pragma: no cover - closed sink
                pass


def parse_jsonl(text: str) -> list:
    """Parse a log capture back into records (tests, tooling)."""
    records = []
    for line in text.splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records


#: The process-global logger (off by default; ``repro serve
#: --log-json`` turns it on server-side).
LOG = JsonLogger()

__all__ = [
    "LOG",
    "JsonLogger",
    "bind_request_id",
    "current_request_id",
    "new_request_id",
    "parse_jsonl",
]
