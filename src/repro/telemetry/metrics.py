"""Labeled metric families: Counter, Gauge, Histogram.

The model is deliberately the Prometheus one — a *family* has a name,
a help string, a metric kind, and a fixed tuple of label names; each
distinct label-value combination materializes a *child* holding the
actual numbers. ``family.labels(shard="3").inc()`` is the hot call;
families with no labels proxy the child methods directly
(``family.inc()``), so unlabeled call sites stay one-liners.

Registries own families. :data:`METRICS` is the process-global default
every library call site shares; components that must not bleed state
into each other — two embedded test servers in one pytest process —
construct private :class:`MetricsRegistry` instances and pass them
down (the service does exactly this).

Children are plain mutable objects updated without locks: CPython
attribute stores are atomic enough for monotonically-increasing
counters, and the service's writers are short critical paths on the
event-loop / worker threads. Snapshot readers tolerate torn reads the
same way ``/metrics`` always has.

The :class:`Histogram` here is the direct migration of the fixed-bucket
latency histogram that previously lived privately in
``repro.service.server`` — same default bucket bounds, same
``snapshot()`` JSON shape, byte-for-byte, so the service's JSON
``/metrics`` stayed backward compatible when it moved. It gains
``merge`` (cross-process aggregation) and ``cumulative`` (Prometheus
exposition needs cumulative bucket counts).
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """Misuse of the metrics API (bad name, label mismatch, kind
    conflict). Raised at registration/update time, never at read time."""


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, delta: float = 1.0) -> None:
        if delta < 0:
            raise MetricError(f"counter increment must be >= 0, got {delta}")
        self.value += delta

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, delta: float = 1.0) -> None:
        self.value += delta

    def dec(self, delta: float = 1.0) -> None:
        self.value -= delta

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """A fixed-bucket latency histogram (milliseconds).

    ``observe`` takes *seconds* (what ``time.perf_counter`` math hands
    you) and buckets in milliseconds — the exact semantics of the
    service histogram this class migrated from.
    """

    BOUNDS_MS: Tuple[float, ...] = (
        1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
    )

    __slots__ = ("bounds", "counts", "total", "sum_ms")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds or self.BOUNDS_MS)
        if list(self.bounds) != sorted(self.bounds) or len(
            set(self.bounds)
        ) != len(self.bounds):
            raise MetricError(
                f"histogram bounds must be strictly increasing:"
                f" {self.bounds}"
            )
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum_ms = 0.0

    def observe(self, seconds: float) -> None:
        ms = seconds * 1e3
        self.total += 1
        self.sum_ms += ms
        for index, bound in enumerate(self.bounds):
            if ms <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same bounds) into this one."""
        if other.bounds != self.bounds:
            raise MetricError(
                f"cannot merge histograms with different bounds:"
                f" {self.bounds} vs {other.bounds}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum_ms += other.sum_ms

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound_ms, cumulative_count)`` pairs ending with
        ``(inf, total)`` — the shape Prometheus exposition needs."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def snapshot(self) -> Dict[str, Any]:
        buckets = {
            f"le_{bound:g}": count
            for bound, count in zip(self.bounds, self.counts)
        }
        buckets["inf"] = self.counts[-1]
        return {
            "count": self.total,
            "sum_ms": round(self.sum_ms, 3),
            "buckets": buckets,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its per-label-combination children."""

    __slots__ = ("name", "help", "kind", "label_names", "_bounds", "_children")

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        label_names: Tuple[str, ...],
        bounds: Optional[Sequence[float]] = None,
    ):
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise MetricError(f"invalid label name {label!r}")
        if len(set(label_names)) != len(label_names):
            raise MetricError(f"duplicate label names in {label_names}")
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = label_names
        self._bounds = tuple(bounds) if bounds else None
        self._children: Dict[Tuple[str, ...], Any] = {}

    def labels(self, **labels: Any):
        """The child for one label-value combination, created on first
        use. Values are coerced to strings (Prometheus labels are)."""
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"{self.name} takes labels {self.label_names},"
                f" got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            factory = _KINDS[self.kind]
            child = (
                factory(self._bounds)
                if self.kind == "histogram"
                else factory()
            )
            self._children[key] = child
        return child

    # Unlabeled families proxy the single child so call sites read
    # ``family.inc()`` / ``family.observe()`` / ``family.set()``.

    def _solo(self):
        if self.label_names:
            raise MetricError(
                f"{self.name} is labeled {self.label_names};"
                f" use .labels(...)"
            )
        return self.labels()

    def inc(self, delta: float = 1.0) -> None:
        self._solo().inc(delta)

    def dec(self, delta: float = 1.0) -> None:
        self._solo().dec(delta)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, seconds: float) -> None:
        self._solo().observe(seconds)

    @property
    def value(self) -> float:
        return self._solo().value

    def samples(self) -> Iterator[Tuple[Tuple[str, ...], Any]]:
        """``(label_values, child)`` pairs in insertion order."""
        return iter(sorted(self._children.items()))

    def snapshot(self) -> Dict[str, Any]:
        return {
            ",".join(values) if values else "": child.snapshot()
            for values, child in self._children.items()
        }


class MetricsRegistry:
    """A named collection of metric families.

    Registration is idempotent: asking for an existing name returns the
    existing family, provided kind and label names agree (a mismatch is
    a programming error and raises). This lets every call site declare
    the metric it uses without an init-order dance.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        help: str,
        kind: str,
        labels: Sequence[str],
        bounds: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        label_names = tuple(labels)
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != label_names:
                raise MetricError(
                    f"metric {name!r} already registered as"
                    f" {existing.kind}{existing.label_names}, cannot"
                    f" re-register as {kind}{label_names}"
                )
            return existing
        family = MetricFamily(name, help, kind, label_names, bounds)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, help, "counter", labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, help, "gauge", labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        bounds: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        return self._register(name, help, "histogram", labels, bounds)

    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe dump of every family (used by tests and debug
        endpoints; the service's ``/metrics`` JSON keeps its own
        pinned shape)."""
        return {
            family.name: {
                "kind": family.kind,
                "labels": list(family.label_names),
                "values": family.snapshot(),
            }
            for family in self.families()
        }

    def reset(self) -> None:
        """Drop every family. Test isolation only — production code
        never resets the global registry."""
        self._families.clear()


#: The process-global default registry.
METRICS = MetricsRegistry()

__all__ = [
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricFamily",
    "MetricsRegistry",
]
