"""``repro.telemetry`` — the unified observability subsystem.

Before this package, observability was fragmented across three
generations of ad-hoc tooling: ``repro.perf`` section timers (PR 1),
the ``repro.trace`` decision tracer (PR 2), and a private latency
``Histogram`` plus plain-int counters buried in the compile service
(PR 5). Each answered one question in one format; none composed.

This package is the single place the answers meet:

* :mod:`repro.telemetry.metrics` — labeled Counter / Gauge / Histogram
  families in a :class:`~repro.telemetry.metrics.MetricsRegistry`.
  The process-global default registry is :data:`METRICS`; components
  that need isolation (an embedded test server) construct their own.
* :mod:`repro.telemetry.promtext` — Prometheus text exposition
  (format version 0.0.4) over any registry, a bridge folding
  ``repro.perf`` snapshots into the same exposition, and a pure-python
  exposition validator used by tests and CI.
* :mod:`repro.telemetry.log` — structured JSON-lines logging plus the
  request/correlation-ID machinery: IDs are minted client-side,
  travel in the wire envelope, bind to a context variable on the
  server, and come back stamped on responses, errors, and traces.
* :mod:`repro.telemetry.profile` — a sampling wall-clock profiler and
  a deterministic per-stage profile derived from ``repro.perf``
  nesting paths, both emitting collapsed-stack (flamegraph-compatible)
  output; the ``repro profile`` CLI fronts them.

Everything here follows the house observability contract established
by ``perf`` and ``trace``: **off by default, one attribute check when
disabled** — the disabled-telemetry overhead gate
(``benchmarks/bench_telemetry_overhead.py``) holds the whole package
under 2% of compile time.
"""

from __future__ import annotations

from .log import (
    LOG,
    JsonLogger,
    bind_request_id,
    current_request_id,
    new_request_id,
)
from .metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .promtext import render_prometheus, validate_exposition

__all__ = [
    "LOG",
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "MetricsRegistry",
    "bind_request_id",
    "current_request_id",
    "new_request_id",
    "render_prometheus",
    "validate_exposition",
]
