"""Memory access vectors — Equation (1) of the paper.

For an array reference inside an affine loop nest, the access pattern is
``r = Q·i + O`` where ``i`` is the iteration vector, ``Q`` the m×n memory
access matrix and ``O`` the offset vector. The array-reference data
layout optimization (Section 5.2) manipulates exactly these objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import IRError
from ..ir import ArrayRef, Loop


@dataclass(frozen=True)
class AccessVector:
    """``r = Q·i + O`` for one reference under a fixed index ordering."""

    array: str
    indices: Tuple[str, ...]      # iteration vector ordering (outer→inner)
    matrix: Tuple[Tuple[int, ...], ...]  # Q, one row per array dimension
    offset: Tuple[int, ...]       # O

    @property
    def Q(self) -> np.ndarray:
        return np.array(self.matrix, dtype=np.int64)

    @property
    def O(self) -> np.ndarray:  # noqa: E743 - matches the paper's symbol
        return np.array(self.offset, dtype=np.int64)

    @property
    def dims(self) -> int:
        return len(self.matrix)

    def evaluate(self, iteration: Sequence[int]) -> Tuple[int, ...]:
        values = self.Q @ np.array(iteration, dtype=np.int64) + self.O
        return tuple(int(v) for v in values)

    def innermost_column(self) -> Tuple[int, ...]:
        """The column of Q for the innermost loop — what determines the
        access pattern across successive innermost iterations."""
        return tuple(row[-1] for row in self.matrix)

    def innermost_stride_rowmajor(self, shape: Sequence[int]) -> int:
        """Flat (row-major) address delta per innermost iteration."""
        stride = 0
        scale = 1
        for row, dim in zip(reversed(self.matrix), reversed(list(shape))):
            stride += row[-1] * scale
            scale *= dim
        return stride


def access_vector(ref: ArrayRef, indices: Sequence[str]) -> AccessVector:
    """Build the access vector of ``ref`` w.r.t. an index ordering."""
    rows: List[Tuple[int, ...]] = []
    offsets: List[int] = []
    names = tuple(indices)
    for subscript in ref.subscripts:
        extra = set(subscript.variables()) - set(names)
        if extra:
            raise IRError(
                f"subscript {subscript} references indices {sorted(extra)} "
                f"outside the iteration vector {names}"
            )
        rows.append(tuple(subscript.coeff(name) for name in names))
        offsets.append(subscript.const)
    return AccessVector(ref.array, names, tuple(rows), tuple(offsets))


def loop_access_vectors(loop: Loop) -> List[Tuple[ArrayRef, AccessVector]]:
    """Access vectors for every reference in the innermost body of a nest."""
    indices = loop.indices()
    innermost = loop.innermost()
    out: List[Tuple[ArrayRef, AccessVector]] = []
    for stmt in innermost.body:
        for ref in stmt.array_refs():
            out.append((ref, access_vector(ref, indices)))
    return out
