"""Intra-block dependence analysis.

The grouping phase needs to know, for every statement pair, whether the
two statements are dependence free (validity constraint 1) and, for the
scheduling phase, the full flow/anti/output dependence relation so the
original semantics are preserved (constraint 2).

Array references are compared symbolically: two affine references to the
same array definitely alias when their affine functions are identical,
definitely do not alias when the functions differ by a provably nonzero
constant, and *may* alias otherwise — in which case we conservatively
record a dependence.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from ..ir import ArrayRef, BasicBlock, Statement, Var


class DepKind(Enum):
    FLOW = "flow"      # read after write
    ANTI = "anti"      # write after read
    OUTPUT = "output"  # write after write


@dataclass(frozen=True)
class Dependence:
    """A dependence from program-order-earlier ``src`` to later ``dst``."""

    src: int
    dst: int
    kind: DepKind


def refs_may_alias(a: ArrayRef, b: ArrayRef) -> bool:
    """Whether two references may touch the same element (same iteration)."""
    if a.array != b.array:
        return False
    if len(a.subscripts) != len(b.subscripts):
        return True  # malformed mixed-rank access: stay conservative
    for sa, sb in zip(a.subscripts, b.subscripts):
        delta = sa - sb
        if delta.is_constant and delta.const != 0:
            # This dimension provably differs for every index value.
            return False
    return True


def refs_must_alias(a: ArrayRef, b: ArrayRef) -> bool:
    """Whether two references certainly denote the same element."""
    return a.array == b.array and a.subscripts == b.subscripts


def _writes_conflict(a: Statement, b: Statement) -> bool:
    ta, tb = a.target, b.target
    if isinstance(ta, Var) and isinstance(tb, Var):
        return ta.name == tb.name
    if isinstance(ta, ArrayRef) and isinstance(tb, ArrayRef):
        return refs_may_alias(ta, tb)
    return False


def _read_write_conflict(reader: Statement, writer: Statement) -> bool:
    target = writer.target
    for leaf in reader.expr.leaves():
        if isinstance(target, Var) and isinstance(leaf, Var):
            if leaf.name == target.name:
                return True
        elif isinstance(target, ArrayRef) and isinstance(leaf, ArrayRef):
            if refs_may_alias(leaf, target):
                return True
    return False


class DependenceGraph:
    """All pairwise dependences of one basic block, in program order."""

    def __init__(self, block: BasicBlock):
        self.block = block
        self.edges: List[Dependence] = []
        self._dependent_pairs: Set[FrozenSet[int]] = set()
        self._successors: Dict[int, Set[int]] = {
            s.sid: set() for s in block
        }
        self._predecessors: Dict[int, Set[int]] = {
            s.sid: set() for s in block
        }
        self._analyze()

    def _analyze(self) -> None:
        statements = list(self.block)
        for i, earlier in enumerate(statements):
            for later in statements[i + 1:]:
                kinds = self._pair_kinds(earlier, later)
                for kind in kinds:
                    self._add(Dependence(earlier.sid, later.sid, kind))

    @staticmethod
    def _pair_kinds(
        earlier: Statement, later: Statement
    ) -> Tuple[DepKind, ...]:
        kinds = []
        if _read_write_conflict(later, earlier):
            kinds.append(DepKind.FLOW)
        if _read_write_conflict(earlier, later):
            kinds.append(DepKind.ANTI)
        if _writes_conflict(earlier, later):
            kinds.append(DepKind.OUTPUT)
        return tuple(kinds)

    def _add(self, dep: Dependence) -> None:
        self.edges.append(dep)
        self._dependent_pairs.add(frozenset((dep.src, dep.dst)))
        self._successors[dep.src].add(dep.dst)
        self._predecessors[dep.dst].add(dep.src)

    # -- queries ---------------------------------------------------------------

    def dependent(self, sid_a: int, sid_b: int) -> bool:
        """True when any dependence connects the two statements."""
        return frozenset((sid_a, sid_b)) in self._dependent_pairs

    def independent(self, sid_a: int, sid_b: int) -> bool:
        return not self.dependent(sid_a, sid_b)

    def successors(self, sid: int) -> FrozenSet[int]:
        return frozenset(self._successors[sid])

    def predecessors(self, sid: int) -> FrozenSet[int]:
        return frozenset(self._predecessors[sid])

    def group_depends(
        self, group_a: FrozenSet[int], group_b: FrozenSet[int]
    ) -> bool:
        """Whether some statement of ``group_a`` must precede one of
        ``group_b`` (the group-level relation d of Section 4.1)."""
        return any(
            b in self._successors[a]
            for a in group_a
            for b in group_b
        )

    def groups_conflict(
        self, group_a: FrozenSet[int], group_b: FrozenSet[int]
    ) -> bool:
        """Conflicting candidate groups (Section 4.2.1): they share a
        statement or form a dependence cycle at group level."""
        if group_a & group_b:
            return True
        return self.group_depends(group_a, group_b) and self.group_depends(
            group_b, group_a
        )

    def iter_pairs_independent(self) -> Iterator[Tuple[int, int]]:
        statements = list(self.block)
        for a, b in itertools.combinations(statements, 2):
            if self.independent(a.sid, b.sid):
                yield (a.sid, b.sid)
