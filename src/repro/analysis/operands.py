"""Canonical operand identity keys.

Variable packs, superword reuse detection, and dependence analysis all
need a hashable notion of "the same data": two occurrences of ``a`` are
the same operand; two occurrences of ``A[4*i + 3]`` inside one basic
block denote the same element (the block executes within a single loop
iteration, so the affine function pins the address); constants are equal
by value. ``operand_key`` maps IR leaves to such keys.
"""

from __future__ import annotations

from typing import Tuple

from ..ir import ArrayRef, Const, Expr, Var

OperandKey = Tuple

#: Key kinds, exposed for readable pattern matching in client code.
KIND_VAR = "var"
KIND_REF = "ref"
KIND_CONST = "const"


def operand_key(leaf: Expr) -> OperandKey:
    """A hashable identity for a leaf operand within one basic block."""
    if isinstance(leaf, Var):
        return (KIND_VAR, leaf.name)
    if isinstance(leaf, ArrayRef):
        return (KIND_REF, leaf.array, leaf.subscripts)
    if isinstance(leaf, Const):
        return (KIND_CONST, leaf.type.name, leaf.value)
    raise TypeError(f"{leaf!r} is not a leaf operand")


def is_memory_key(key: OperandKey) -> bool:
    return key[0] == KIND_REF


def is_scalar_key(key: OperandKey) -> bool:
    return key[0] == KIND_VAR


def is_const_key(key: OperandKey) -> bool:
    return key[0] == KIND_CONST
