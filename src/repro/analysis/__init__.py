"""Program analyses: operand identity, def-use, dependence, access
vectors, and alignment — the information the SLP stages consume."""

from .access import AccessVector, access_vector, loop_access_vectors
from .alignment import alignment_of, flat_affine, is_aligned, pack_contiguity
from .defuse import DefUseChains, UseSite
from .dependence import (
    DepKind,
    Dependence,
    DependenceGraph,
    refs_may_alias,
    refs_must_alias,
)
from .operands import (
    KIND_CONST,
    KIND_REF,
    KIND_VAR,
    OperandKey,
    is_const_key,
    is_memory_key,
    is_scalar_key,
    operand_key,
)

__all__ = [
    "AccessVector",
    "DefUseChains",
    "DepKind",
    "Dependence",
    "DependenceGraph",
    "KIND_CONST",
    "KIND_REF",
    "KIND_VAR",
    "OperandKey",
    "UseSite",
    "access_vector",
    "alignment_of",
    "flat_affine",
    "is_aligned",
    "is_const_key",
    "is_memory_key",
    "is_scalar_key",
    "loop_access_vectors",
    "operand_key",
    "pack_contiguity",
    "refs_may_alias",
    "refs_must_alias",
]
