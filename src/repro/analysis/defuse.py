"""Def-use and use-def chains within a basic block.

The original SLP algorithm of Larsen & Amarasinghe extends its seed packs
"by following the def-use and use-def chains" — this module provides
those chains for our re-implementation of that baseline
(:mod:`repro.slp.baseline`), and for dead-code queries in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir import ArrayRef, BasicBlock, Const, Statement, Var
from .dependence import refs_must_alias


@dataclass(frozen=True)
class UseSite:
    """One read of an operand: statement sid and leaf position (0-based
    within the statement's RHS leaves)."""

    sid: int
    position: int


class DefUseChains:
    """Reaching definitions restricted to one basic block.

    A definition reaches a use when it is the latest earlier statement
    writing an operand that *must* alias the used operand, and no
    intervening statement *may* alias-write it. May-but-not-must aliasing
    writes break the chain (we refuse to guess).
    """

    def __init__(self, block: BasicBlock):
        self.block = block
        # use (sid, position) -> defining sid, or None when the value
        # flows in from outside the block.
        self.reaching_def: Dict[Tuple[int, int], Optional[int]] = {}
        # def sid -> list of use sites fed by it.
        self.uses_of_def: Dict[int, List[UseSite]] = {
            s.sid: [] for s in block
        }
        self._analyze()

    def _analyze(self) -> None:
        statements = list(self.block)
        for i, stmt in enumerate(statements):
            for position, leaf in enumerate(stmt.expr.leaves()):
                if isinstance(leaf, Const):
                    continue
                def_sid = self._find_reaching_def(statements, i, leaf)
                self.reaching_def[(stmt.sid, position)] = def_sid
                if def_sid is not None:
                    self.uses_of_def[def_sid].append(
                        UseSite(stmt.sid, position)
                    )

    @staticmethod
    def _find_reaching_def(statements, use_index: int, leaf) -> Optional[int]:
        for j in range(use_index - 1, -1, -1):
            target = statements[j].target
            if isinstance(leaf, Var) and isinstance(target, Var):
                if target.name == leaf.name:
                    return statements[j].sid
            elif isinstance(leaf, ArrayRef) and isinstance(target, ArrayRef):
                if refs_must_alias(target, leaf):
                    return statements[j].sid
                # A may-alias write of the same array kills certainty.
                from .dependence import refs_may_alias

                if refs_may_alias(target, leaf):
                    return None
        return None

    # -- queries ---------------------------------------------------------------

    def definition_feeding(
        self, sid: int, position: int
    ) -> Optional[Statement]:
        def_sid = self.reaching_def.get((sid, position))
        if def_sid is None:
            return None
        return self.block[def_sid]

    def users(self, sid: int) -> Tuple[UseSite, ...]:
        return tuple(self.uses_of_def.get(sid, ()))

    def is_dead(self, sid: int) -> bool:
        """A scalar def with no users inside the block and a target no
        later statement reads — only meaningful for whole-program scalars
        in tests; array writes are always considered live."""
        stmt = self.block[sid]
        if isinstance(stmt.target, ArrayRef):
            return False
        return not self.uses_of_def.get(sid)
