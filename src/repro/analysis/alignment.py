"""Alignment and contiguity analysis for array references.

Part of the paper's pre-processing (Figure 3): the code generator only
emits a single wide vector load/store for a pack of references when the
pack is *contiguous* (consecutive elements in pack order) and *aligned*
(the first element's address is a multiple of the superword width for
every value of the loop indices). Everything else is packed lane by lane.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import IRError
from ..ir import Affine, ArrayDecl, ArrayRef


def flat_affine(ref: ArrayRef, decl: ArrayDecl) -> Affine:
    """Row-major flattened element index of a reference, as one Affine."""
    if len(ref.subscripts) != len(decl.shape):
        raise IRError(
            f"{ref.array} has {len(decl.shape)} dims, reference uses "
            f"{len(ref.subscripts)}"
        )
    flat = Affine((), 0)
    for subscript, dim in zip(ref.subscripts, decl.shape):
        flat = flat * dim + subscript
    return flat


def pack_contiguity(
    refs: Sequence[ArrayRef], decl_of, lanes: int
) -> Optional[Affine]:
    """If the refs cover consecutive flat addresses in order, return the
    flat affine address of lane 0; otherwise ``None``.

    ``decl_of`` maps an array name to its :class:`ArrayDecl`.
    """
    if len(refs) != lanes:
        return None
    first = refs[0]
    if any(r.array != first.array for r in refs):
        return None
    base = flat_affine(first, decl_of(first.array))
    for lane, ref in enumerate(refs[1:], start=1):
        delta = flat_affine(ref, decl_of(ref.array)) - base
        if not (delta.is_constant and delta.const == lane):
            return None
    return base


def is_aligned(base: Affine, lanes: int) -> bool:
    """Whether a flat element address is a multiple of ``lanes`` for all
    index values: every coefficient and the constant must divide evenly.

    This matches SSE-era alignment rules where a 16-byte-aligned array
    base plus an element offset that is a multiple of the lane count
    yields an aligned superword access.
    """
    if base.const % lanes:
        return False
    return all(coeff % lanes == 0 for _, coeff in base.coeffs)


def alignment_of(base: Affine, lanes: int) -> Optional[int]:
    """The constant residue ``address mod lanes`` when it is the same for
    all iterations, else ``None`` (unknown alignment)."""
    if any(coeff % lanes for _, coeff in base.coeffs):
        return None
    return base.const % lanes


def alignment_with_induction(
    base: Affine,
    lanes: int,
    index: str,
    start: int,
    step: int,
) -> Optional[int]:
    """Alignment residue using induction-variable knowledge.

    Inside ``for (index = start; ...; index += step)`` the index is
    always ``start (mod step)``, so a subscript coefficient that is not
    itself a multiple of ``lanes`` can still yield a fixed residue when
    ``coeff * step`` is. This is the alignment analysis of the paper's
    pre-processing (Figure 3): e.g. ``X[i]`` with ``i`` stepping by the
    lane count from 0 is aligned even though ``coeff = 1``.
    """
    residue = base.const
    for name, coeff in base.coeffs:
        if name == index:
            if (coeff * step) % lanes:
                return None
            residue += coeff * start
        elif coeff % lanes:
            return None
    return residue % lanes


def is_aligned_in_loop(
    base: Affine, lanes: int, index: str, start: int, step: int
) -> bool:
    return alignment_with_induction(base, lanes, index, start, step) == 0
