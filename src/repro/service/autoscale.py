"""Worker-pool autoscaling from the service's own latency histograms.

The signal is deliberately the *public* telemetry — the same
``repro_request_stage_latency_ms{stage="queue_wait"}`` histogram and
coalescer depth exposed on ``/metrics`` — so the scaling decision is
always explainable from a metrics scrape: no hidden internal state.

Policy (classic hysteresis so the pool doesn't flap):

* Each tick, diff the ``queue_wait`` histogram against the previous
  tick's snapshot and estimate the *recent* p50 from the bucket-count
  deltas (not the process-lifetime p50, which goes inert as counts
  accumulate).
* **Scale up** one shard when the tick was hot — recent queue-wait p50
  above ``hot_ms`` *or* queue depth at/above 2x the shard count — for
  ``up_ticks`` consecutive ticks, bounded by ``max_shards``.
* **Scale down** one shard when the tick was idle — no new requests
  and an empty queue — for ``down_ticks`` consecutive ticks, bounded
  by ``min_shards``. Idle-based (not p50-based) because a healthy warm
  path has near-zero p50 too; only genuine silence should shrink.
* A ``cooldown`` tick count after any resize suppresses both
  directions, so a resize's own warm-up transient cannot trigger the
  next resize.

The evaluator is pure (state in, decision out) so tests drive it with
synthetic snapshots — no sleeping, no real pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..telemetry.log import LOG
from ..telemetry.metrics import METRICS, MetricsRegistry


def _bucket_bound(key: str) -> float:
    """``le_50`` -> 50.0, ``inf`` -> +inf (Histogram.snapshot keys)."""
    if key == "inf":
        return float("inf")
    return float(key[3:])


def recent_p50_ms(
    prev: Optional[Dict[str, object]], cur: Dict[str, object]
) -> Optional[float]:
    """Median latency of the requests *between* two histogram
    snapshots, from per-bucket-count deltas. ``None`` when no requests
    landed in the window. Buckets are ``Histogram.snapshot()`` shape:
    ``{"le_<bound>": count, ..., "inf": count}`` (non-cumulative)."""
    prev_buckets = dict(prev["buckets"]) if prev else {}
    deltas = []
    for key, count in cur["buckets"].items():
        delta = count - prev_buckets.get(key, 0)
        if delta > 0:
            deltas.append((_bucket_bound(key), delta))
    deltas.sort()
    total = sum(d for _, d in deltas)
    if total == 0:
        return None
    seen = 0
    for bound, delta in deltas:
        seen += delta
        if seen * 2 >= total:
            return bound
    return deltas[-1][0]  # pragma: no cover - loop always returns


@dataclass
class AutoscalerConfig:
    min_shards: int = 1
    max_shards: int = 8
    #: Recent queue-wait p50 above this marks a tick "hot".
    hot_ms: float = 50.0
    #: Consecutive hot ticks before growing.
    up_ticks: int = 2
    #: Consecutive idle ticks before shrinking.
    down_ticks: int = 6
    #: Ticks after any resize during which both directions are held.
    cooldown: int = 3
    #: Seconds between ticks (used by the service loop, not the math).
    interval: float = 2.0


@dataclass
class Autoscaler:
    """Pure hysteresis evaluator; the service owns the clock and the
    actual :meth:`WorkerPool.resize` call."""

    config: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    metrics: Optional[MetricsRegistry] = None

    def __post_init__(self):
        self._prev_snapshot: Optional[Dict[str, object]] = None
        self._hot = 0
        self._idle = 0
        self._cooldown = 0
        registry = self.metrics or METRICS
        self._resizes = registry.counter(
            "repro_autoscale_resizes_total",
            "Autoscaler resize decisions by direction",
            labels=("direction",),
        )
        self._shards_gauge = registry.gauge(
            "repro_autoscale_shards",
            "Worker shard count chosen by the autoscaler",
        )

    def tick(
        self,
        shards: int,
        queue_depth: int,
        queue_wait_snapshot: Dict[str, object],
    ) -> int:
        """One evaluation. Returns the desired shard count (== current
        when no change). ``queue_wait_snapshot`` is ``Histogram.
        snapshot()`` of the ``queue_wait`` stage."""
        cfg = self.config
        p50 = recent_p50_ms(self._prev_snapshot, queue_wait_snapshot)
        new_requests = queue_wait_snapshot["count"] - (
            self._prev_snapshot["count"] if self._prev_snapshot else 0
        )
        self._prev_snapshot = queue_wait_snapshot
        self._shards_gauge.set(shards)

        if self._cooldown > 0:
            self._cooldown -= 1
            self._hot = self._idle = 0
            return shards

        hot = (p50 is not None and p50 > cfg.hot_ms) or (
            queue_depth >= 2 * shards
        )
        idle = new_requests == 0 and queue_depth == 0

        self._hot = self._hot + 1 if hot else 0
        self._idle = self._idle + 1 if idle else 0

        if self._hot >= cfg.up_ticks and shards < cfg.max_shards:
            self._hot = self._idle = 0
            self._cooldown = cfg.cooldown
            self._resizes.labels(direction="up").inc()
            target = shards + 1
            if LOG.enabled:
                LOG.event(
                    "autoscale.up", shards=target, p50_ms=p50,
                    queue_depth=queue_depth,
                )
            self._shards_gauge.set(target)
            return target
        if self._idle >= cfg.down_ticks and shards > cfg.min_shards:
            self._hot = self._idle = 0
            self._cooldown = cfg.cooldown
            self._resizes.labels(direction="down").inc()
            target = shards - 1
            if LOG.enabled:
                LOG.event("autoscale.down", shards=target)
            self._shards_gauge.set(target)
            return target
        return shards
