"""The sharded warm worker pool behind the compile service.

Each shard is a long-lived worker process holding a warm interpreter,
an in-memory memo of recent ``CompileResult`` objects, and a handle on
the shared on-disk :class:`repro.store.ArtifactStore`. Jobs are routed
to shards by content key, so repeated compiles of the same program hit
the same worker's warm memo; different keys spread across shards and
run in parallel.

Failure model (the part the acceptance tests pin):

* a worker that dies mid-job (crash, OOM-kill, hang past the job
  timeout) is killed and respawned, and the job is retried **once** on
  the fresh worker;
* a second death raises a structured
  :class:`repro.errors.WorkerCrashError` — never a hung caller, never
  a raw traceback;
* errors raised *by the job itself* (parse errors, verifier
  violations, ...) travel back as pickled exceptions and re-raise in
  the parent with their context intact — they are the job's result,
  not a worker failure, and do not trigger restarts.

Every job response carries the worker's ``repro.perf`` snapshot; the
pool merges them into the parent registry on collection, so
``/metrics`` sees one coherent view across all shards.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import threading
import time
from typing import Any, Dict, Optional

from ..errors import ReproError, ServiceError, WorkerCrashError
from ..perf import PERF
from ..store import ArtifactStore
from ..telemetry.log import LOG, bind_request_id
from ..telemetry.metrics import METRICS, MetricsRegistry
from ..trace import TRACE, fold_report, summarize

#: In-worker memo entries kept per shard (FIFO evicted). Small: the
#: memo only needs to absorb the warm working set; the artifact store
#: holds everything else.
MEMO_ENTRIES = 64


def _execute_job(
    job: Dict[str, Any],
    store: Optional[ArtifactStore],
    memo: Dict[str, Any],
    test_hooks: bool,
) -> Dict[str, Any]:
    """Run one compile / compile+simulate job inside a worker."""
    from ..compiler import Variant, compile_program
    from ..ir import parse_program
    from ..vm import MACHINES, Simulator

    from . import options_from_dict

    if test_hooks:
        _run_test_hooks(job)

    program = parse_program(job["source"])
    machine = MACHINES[job["machine"]]()
    if job.get("datapath"):
        machine = machine.with_datapath(job["datapath"])
    options = options_from_dict(job.get("options"))
    variant = Variant(job["variant"])
    key = job["key"]
    trace = bool(job.get("trace"))

    if trace:
        # Per-request tracing bypasses the memo and store: a cache hit
        # replays a stored plan without running the compiler, leaving
        # the trace with no compile-time decisions to attribute to.
        # The correlation ID lands in the trace header, so a saved
        # trace joins against the request's log lines.
        TRACE.reset()
        meta = {"key": key[:12], "variant": variant.value}
        if job.get("request_id"):
            meta["request_id"] = job["request_id"]
        TRACE.enable(**meta)

    try:
        result = None if trace else memo.get(key)
        cached = result is not None
        if result is None and store is not None and not trace:
            result = store.get(key)
            cached = result is not None
        if result is None:
            result = compile_program(program, variant, machine, options)
            if not trace:
                if store is not None:
                    store.put(key, result)
        if not trace and key not in memo:
            memo[key] = result
            while len(memo) > MEMO_ENTRIES:
                memo.pop(next(iter(memo)))

        payload: Dict[str, Any] = {
            "result": result,
            "cached": cached,
            "key": key,
        }
        if job["kind"] == "simulate":
            report, memory = Simulator(
                result.machine, engine=options.engine, kernel_store=store
            ).run(result.plan, seed=job.get("seed", 0))
            if trace:
                fold_report(report)
            payload["report"] = report
            payload["memory"] = memory
        if trace:
            payload["trace_summary"] = summarize(TRACE.records())
        return payload
    finally:
        if trace:
            TRACE.disable()
            TRACE.reset()


def _run_test_hooks(job: Dict[str, Any]) -> None:
    """Deterministic failure injection for the crash/backpressure
    tests; only honored when the pool was built with test hooks on.

    ``x_sleep`` runs *before* the crash hooks so a test can combine
    them: sleep holds the coalesce window open (followers join the
    in-flight leader), then the crash fans the failure out to all of
    them."""
    sleep = job.get("x_sleep")
    if sleep:
        time.sleep(sleep)
    crash_once = job.get("x_crash_once")
    if crash_once and not os.path.exists(crash_once):
        with open(crash_once, "w") as handle:
            handle.write("crashed")
        os._exit(3)
    crash_times = job.get("x_crash_times")
    if crash_times:
        # Crash the first N attempts that reach *any* worker sharing
        # the flag file — N=2 defeats one node's in-pool retry, so a
        # router-level retry on another node is what succeeds.
        flag, limit = crash_times
        try:
            with open(flag, "r") as handle:
                seen = int(handle.read().strip() or 0)
        except (OSError, ValueError):
            seen = 0
        if seen < int(limit):
            with open(flag, "w") as handle:
                handle.write(str(seen + 1))
            os._exit(3)
    if job.get("x_crash"):
        os._exit(3)


def _worker_main(
    conn,
    store_dir: Optional[str],
    remote_store_url: Optional[str],
    test_hooks: bool,
) -> None:
    """Worker-process loop: recv job, send ``(status, payload,
    perf_snapshot)``, repeat until the pipe closes or ``None`` arrives."""
    from ..store.remote import open_store

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    store = open_store(store_dir, remote_store_url)
    memo: Dict[str, Any] = {}
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            break
        if job is None:
            break
        PERF.reset()
        PERF.enable()
        try:
            with bind_request_id(job.get("request_id")):
                payload = _execute_job(job, store, memo, test_hooks)
            response = ("ok", payload, PERF.snapshot())
        except Exception as exc:
            response = ("error", exc, PERF.snapshot())
        try:
            conn.send(response)
        except Exception:
            if response[0] == "error":
                # The job's own exception didn't pickle — degrade to a
                # structured, always-picklable summary.
                exc = response[1]
                conn.send(
                    (
                        "error",
                        ServiceError(
                            f"worker error did not serialize: "
                            f"{type(exc).__name__}: {exc}"
                        ),
                        response[2],
                    )
                )
            else:  # pragma: no cover - results are picklable by design
                raise
    # Graceful exit: let the write-behind queue reach the remote tier
    # before the process dies (a SIGKILL skips this, by design).
    if hasattr(store, "close"):
        store.close()
    conn.close()


class _Worker:
    """One shard: a process, its pipe, and a lock serializing jobs.

    ``jobs``/``restarts`` live as per-shard labeled counters in the
    pool's metrics registry; the integer properties keep the
    ``stats()`` shape unchanged."""

    def __init__(self, index: int, pool: "WorkerPool"):
        self.index = index
        self.pool = pool
        self.lock = threading.Lock()
        #: Set (under ``lock``) when the autoscaler shrinks this shard
        #: away; a submit that raced the resize re-routes instead of
        #: resurrecting a stopped process.
        self.retired = False
        self._jobs = pool._jobs_family.labels(shard=index)
        self._restarts = pool._restarts_family.labels(shard=index)
        self.process: Optional[multiprocessing.Process] = None
        self.conn = None
        self.spawn()

    @property
    def jobs(self) -> int:
        return int(self._jobs.value)

    @property
    def restarts(self) -> int:
        return int(self._restarts.value)

    def spawn(self) -> None:
        ctx = self.pool._ctx
        parent, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(
                child,
                self.pool.store_dir,
                self.pool.remote_store_url,
                self.pool.test_hooks,
            ),
            daemon=True,
            name=f"repro-worker-{self.index}",
        )
        self.process.start()
        child.close()
        self.conn = parent

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def kill(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass

    def respawn(self) -> None:
        self.kill()
        self.spawn()
        self._restarts.inc()

    def stop(self) -> None:
        """Graceful: ask the loop to exit, then join."""
        try:
            self.conn.send(None)
        except (OSError, ValueError, BrokenPipeError):
            pass
        if self.process is not None:
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # pragma: no cover - stuck worker
                self.process.kill()
                self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass


class WorkerPool:
    """Sharded process pool with warm workers and crash recovery.

    Thread-safe: ``submit`` may be called from many threads (the
    server's executor); jobs routed to the same shard serialize on the
    shard's lock, which is exactly the warm-path semantics sharding is
    for.
    """

    def __init__(
        self,
        shards: int = 2,
        store_dir: Optional[str] = None,
        job_timeout: float = 300.0,
        test_hooks: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        remote_store_url: Optional[str] = None,
    ):
        if shards < 1:
            raise ServiceError(f"need at least 1 worker shard, got {shards}")
        self.store_dir = str(store_dir) if store_dir else None
        self.remote_store_url = remote_store_url
        self.job_timeout = job_timeout
        self.test_hooks = test_hooks
        self._ctx = multiprocessing.get_context()
        self._merge_lock = threading.Lock()
        self._resize_lock = threading.Lock()
        registry = metrics or METRICS
        self._jobs_family = registry.counter(
            "repro_pool_jobs_total",
            "Jobs completed per worker shard",
            labels=("shard",),
        )
        self._restarts_family = registry.counter(
            "repro_pool_restarts_total",
            "Worker respawns per shard",
            labels=("shard",),
        )
        self._crashes = registry.counter(
            "repro_pool_crashes_total",
            "Worker deaths observed mid-job",
        )
        self._retries = registry.counter(
            "repro_pool_retries_total",
            "Jobs transparently retried after a worker death",
        )
        self._closed = False
        self.workers = [_Worker(i, self) for i in range(shards)]

    @property
    def crashes(self) -> int:
        return int(self._crashes.value)

    @property
    def retries(self) -> int:
        return int(self._retries.value)

    # -- routing ---------------------------------------------------------------

    def shard_for(self, key: str, shard_count: Optional[int] = None) -> int:
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        count = shard_count or len(self.workers)
        return int.from_bytes(digest[:4], "big") % count

    # -- submission ------------------------------------------------------------

    def submit(self, job: Dict[str, Any]) -> Dict[str, Any]:
        """Run one job on its shard (blocking); returns the worker's
        payload dict. Re-raises job errors; retries once across a
        worker death, then raises :class:`WorkerCrashError`."""
        request_id = job.get("request_id")
        while True:
            if self._closed:
                raise ServiceError("pool is closed")
            # Snapshot the shard list: ``resize`` swaps the list
            # atomically, so routing against one consistent view and
            # re-checking ``retired`` under the shard lock is enough.
            workers = self.workers
            worker = workers[self.shard_for(job["key"], len(workers))]
            with worker.lock:
                if worker.retired:
                    continue
                return self._run_on(worker, job, request_id)

    def _run_on(
        self, worker: _Worker, job: Dict[str, Any], request_id
    ) -> Dict[str, Any]:
        """One job on one locked shard (the body of :meth:`submit`)."""
        for attempt in (0, 1):
            if not worker.alive():
                worker.respawn()
            try:
                worker.conn.send(job)
                if not worker.conn.poll(self.job_timeout):
                    raise TimeoutError(
                        f"job exceeded {self.job_timeout:.0f}s"
                    )
                status, payload, snapshot = worker.conn.recv()
            except (
                EOFError,
                BrokenPipeError,
                ConnectionError,
                OSError,
                TimeoutError,
            ) as transport:
                self._crashes.inc()
                worker.respawn()
                if attempt == 0:
                    self._retries.inc()
                    if LOG.enabled:
                        LOG.event(
                            "pool.retry",
                            request_id=request_id,
                            shard=worker.index,
                            cause=type(transport).__name__,
                        )
                    continue
                crash = WorkerCrashError(
                    f"worker shard {worker.index} died twice running "
                    f"one job ({type(transport).__name__}: {transport});"
                    f" giving up after one retry",
                    rule="service.worker-crash",
                )
                # Correlate the structured failure with the request
                # (travels in the error payload next to the pickle).
                crash.request_id = request_id
                if LOG.enabled:
                    LOG.event(
                        "pool.crash",
                        request_id=request_id,
                        shard=worker.index,
                        cause=type(transport).__name__,
                    )
                raise crash
            worker._jobs.inc()
            if snapshot:
                # The worker's perf snapshot merges under the same
                # correlation ID the job ran with.
                with self._merge_lock:
                    PERF.merge(snapshot)
                if LOG.enabled:
                    LOG.event(
                        "pool.perf_merge",
                        request_id=request_id,
                        shard=worker.index,
                        sections=len(snapshot.get("sections", {})),
                        counters=len(snapshot.get("counters", {})),
                    )
            if status == "error":
                if isinstance(payload, BaseException):
                    raise payload
                raise ServiceError(str(payload))
            return payload
        raise AssertionError("unreachable")  # pragma: no cover

    # -- elasticity ------------------------------------------------------------

    def resize(self, shards: int) -> int:
        """Grow or shrink to ``shards`` worker shards (blocking; the
        autoscaler calls this off the event loop).

        Growing spawns fresh warm workers. Shrinking publishes the
        trimmed shard list first — new submissions route only to the
        survivors — then stops each retired worker after its in-flight
        job finishes (the shard lock serializes). Resizing remaps
        ``shard_for``, so warm in-worker memos partially miss until the
        artifact store refills them: exactly the cost model consistent
        hashing has at the router tier."""
        if shards < 1:
            raise ServiceError(f"need at least 1 worker shard, got {shards}")
        with self._resize_lock:
            if self._closed:
                return len(self.workers)
            current = list(self.workers)
            if shards == len(current):
                return shards
            if shards > len(current):
                for index in range(len(current), shards):
                    current.append(_Worker(index, self))
                self.workers = current
            else:
                survivors, retired = current[:shards], current[shards:]
                self.workers = survivors
                for worker in retired:
                    with worker.lock:
                        worker.retired = True
                        worker.stop()
            if LOG.enabled:
                LOG.event(
                    "pool.resize", shards=shards, was=len(current)
                    if shards > len(current) else len(current),
                )
            return shards

    # -- stats / lifecycle -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        workers = self.workers
        return {
            "shards": len(workers),
            "jobs": sum(w.jobs for w in workers),
            "restarts": sum(w.restarts for w in workers),
            "crashes": self.crashes,
            "retries": self.retries,
            "per_shard_jobs": [w.jobs for w in workers],
        }

    def close(self) -> None:
        """Graceful shutdown: every worker finishes its current job
        (shard locks serialize), receives the stop sentinel, and is
        joined."""
        if self._closed:
            return
        self._closed = True
        with self._resize_lock:
            for worker in list(self.workers):
                with worker.lock:
                    worker.stop()


__all__ = ["WorkerPool", "MEMO_ENTRIES"]
