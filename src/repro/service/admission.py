"""Admission control: per-tenant token buckets and priority lanes.

``repro serve`` admits or rejects each request *before* it touches the
coalescer or the worker pool. Two orthogonal policies compose here:

* **Per-tenant rate limits.** Every request carries a ``tenant`` wire
  field (default ``"default"``). Each tenant owns a token bucket of
  ``burst`` capacity refilled at ``rate`` tokens/second; an empty
  bucket maps to a 429 whose ``Retry-After`` is the exact time until
  one token exists. Buckets are created lazily and the tenant map is
  bounded (LRU eviction) so an adversarial stream of fresh tenant
  names cannot grow server memory without bound — an evicted tenant
  simply restarts with a full bucket, which errs toward admitting.

* **Priority lanes.** The queue limit is not one number but three
  nested thresholds. ``high`` traffic (and coalescing followers, which
  cost no worker time) may fill the whole queue; ``normal`` traffic
  stops short of the last quarter, reserving headroom so high-priority
  submits still land under saturation; ``bulk`` traffic only uses the
  first half. The lanes are *admission* thresholds, not a scheduler —
  jobs already admitted run in arrival order, which keeps the worker
  pool's single-flight and sharding behavior untouched.

The controller is deliberately lock-cheap: one mutex around the bucket
map, arithmetic only, no syscalls — it sits on the request hot path in
front of every submit.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..telemetry.metrics import METRICS, MetricsRegistry

#: Wire-legal tenant names: bounded, filesystem/label safe.
TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

#: Admission lanes, strongest first. Order matters only for docs; the
#: thresholds in :class:`AdmissionController` define the semantics.
LANES = ("high", "normal", "bulk")

#: Most tenants tracked at once; beyond this the stalest bucket is
#: dropped (restarting that tenant with a full bucket).
MAX_TENANTS = 1024


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Not thread-safe on its own — the controller serializes access.
    """

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def take(self, now: float) -> float:
        """Consume one token. Returns ``0.0`` on success, else the
        seconds until one token will exist (the Retry-After hint)."""
        elapsed = max(0.0, now - self.stamp)
        self.stamp = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        if self.rate <= 0.0:
            return 60.0
        return (1.0 - self.tokens) / self.rate


@dataclass(frozen=True)
class Admission:
    """The controller's verdict for one request."""

    admitted: bool
    #: ``tenant-limit`` or ``queue-full`` when rejected, else ``ok``.
    reason: str = "ok"
    #: Retry-After seconds when rejected (pre-jitter).
    retry_after: float = 0.0


class AdmissionController:
    """Combines tenant buckets with lane-aware queue thresholds."""

    def __init__(
        self,
        queue_limit: int,
        tenant_rate: float = 0.0,
        tenant_burst: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
    ):
        self.queue_limit = queue_limit
        #: rate <= 0 disables per-tenant limiting entirely.
        self.tenant_rate = float(tenant_rate)
        self.tenant_burst = float(tenant_burst) if tenant_burst > 0 else max(
            1.0, self.tenant_rate
        )
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        registry = metrics or METRICS
        self._decisions = registry.counter(
            "repro_admission_total",
            "Admission verdicts by decision and priority lane",
            labels=("decision", "lane"),
        )
        self._tenants = registry.counter(
            "repro_tenant_requests_total",
            "Requests per tenant (admitted or not)",
            labels=("tenant",),
        )

    # -- lane thresholds -------------------------------------------------------

    def lane_limit(self, lane: str) -> int:
        """How deep the queue may be for this lane to still admit."""
        if lane == "high":
            return self.queue_limit
        if lane == "bulk":
            return max(1, self.queue_limit // 2)
        # normal: reserve the top quarter (at least one slot) for high.
        return max(1, self.queue_limit - max(1, self.queue_limit // 4))

    # -- the verdict -----------------------------------------------------------

    def check(
        self, tenant: str, lane: str, queue_depth: int, follower: bool = False
    ) -> Admission:
        """Admit or reject one request.

        ``follower`` marks a coalescing join: it consumes no worker
        time, so it bypasses the lane threshold (the leader already
        paid for the slot) but still charges the tenant's bucket —
        otherwise a single tenant could amplify itself for free by
        resubmitting warm keys.
        """
        self._tenants.labels(tenant=tenant).inc()
        if self.tenant_rate > 0.0:
            now = self._clock()
            with self._lock:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    if len(self._buckets) >= MAX_TENANTS:
                        stalest = min(
                            self._buckets, key=lambda t: self._buckets[t].stamp
                        )
                        del self._buckets[stalest]
                    bucket = TokenBucket(
                        self.tenant_rate, self.tenant_burst, now
                    )
                    self._buckets[tenant] = bucket
                wait = bucket.take(now)
            if wait > 0.0:
                self._decisions.labels(
                    decision="tenant-limit", lane=lane
                ).inc()
                return Admission(False, "tenant-limit", wait)
        if not follower and queue_depth >= self.lane_limit(lane):
            self._decisions.labels(decision="queue-full", lane=lane).inc()
            return Admission(False, "queue-full", 1.0)
        self._decisions.labels(decision="admit", lane=lane).inc()
        return Admission(True)

    # -- introspection ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            tenants = len(self._buckets)
        return {
            "queue_limit": self.queue_limit,
            "tenant_rate": self.tenant_rate,
            "tenant_burst": self.tenant_burst,
            "tenants_tracked": tenants,
            "lane_limits": {lane: self.lane_limit(lane) for lane in LANES},
        }


def validate_tenant(tenant: object) -> Tuple[bool, str]:
    """Normalize the wire ``tenant`` field. Returns (ok, value-or-why)."""
    if tenant is None:
        return True, "default"
    if not isinstance(tenant, str) or not TENANT_RE.match(tenant):
        return False, "tenant must match ^[A-Za-z0-9._-]{1,64}$"
    return True, tenant


def validate_priority(priority: object) -> Tuple[bool, str]:
    """Normalize the wire ``priority`` field. Returns (ok, lane-or-why)."""
    if priority is None:
        return True, "normal"
    if not isinstance(priority, str) or priority not in LANES:
        return False, f"priority must be one of {', '.join(LANES)}"
    return True, priority
