"""``repro.service`` — the compile-and-simulate server and its client.

Every entry point used to be a one-shot CLI process paying full
interpreter startup, compile, and cache-miss cost per invocation.
Holistic SLP grouping is deliberately expensive global optimization —
exactly the workload to amortize behind a long-lived service. This
package provides:

* :class:`repro.service.server.ReproService` — a stdlib-only asyncio
  HTTP/JSON server (``repro serve``) with a sharded warm worker pool,
  in-flight request coalescing, a shared content-addressed artifact
  store, bounded admission with backpressure, and graceful drain.
* :class:`repro.service.client.ServiceClient` — a blocking client
  (``repro submit`` uses it, falling back to local compilation when no
  server is reachable).

This module holds the wire schema (``repro.service/1``) helpers shared
by both sides: payloads are JSON envelopes; compiled artifacts travel
as base64-pickles inside them (a ``CompileResult`` is a graph of
dataclasses — JSON cannot carry it losslessly, and bit-identical
results are the service's contract), next to a small plain-JSON
summary for non-Python consumers.
"""

from __future__ import annotations

import base64
import dataclasses
import pickle
from typing import Any, Dict, Optional

from ..compiler import CompilerOptions
from ..errors import ReproError, ServiceError

#: The versioned wire schema stamped on every request and response.
SCHEMA = "repro.service/1"

#: Default port of ``repro serve`` (nothing registered uses it).
DEFAULT_PORT = 8642


def pickle_b64(obj: Any) -> str:
    """Encode an artifact for a JSON envelope."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def unpickle_b64(blob: str) -> Any:
    """Decode an artifact from a JSON envelope."""
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


#: CompilerOptions fields a request may set. ``debug_schedule_mutator``
#: is deliberately absent: callables do not travel over a wire.
_OPTION_FIELDS = frozenset(
    f.name
    for f in dataclasses.fields(CompilerOptions)
    if f.name != "debug_schedule_mutator"
)


def options_to_dict(options: Optional[CompilerOptions]) -> Dict[str, Any]:
    """The JSON form of a :class:`CompilerOptions` — only fields that
    differ from the defaults, so the wire stays readable and the
    server-side reconstruction is exact."""
    if options is None:
        return {}
    defaults = CompilerOptions()
    out = {}
    for name in _OPTION_FIELDS:
        value = getattr(options, name)
        if value != getattr(defaults, name):
            out[name] = value
    return out


def options_from_dict(payload: Optional[Dict[str, Any]]) -> CompilerOptions:
    """Reconstruct request options; unknown fields are a client error."""
    payload = payload or {}
    unknown = set(payload) - _OPTION_FIELDS
    if unknown:
        raise ServiceError(
            f"unknown compiler option(s): {', '.join(sorted(unknown))}",
            rule="service.options",
        )
    return CompilerOptions(**payload)


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """The structured JSON form of a failure, plus a pickle so a Python
    client can re-raise the exact exception type with context intact
    (every :class:`ReproError` pickles by contract)."""
    payload: Dict[str, Any] = {
        "type": type(exc).__name__,
        "message": getattr(exc, "message", None) or str(exc),
    }
    for attr in ("stage", "block", "provenance", "rule", "request_id"):
        value = getattr(exc, attr, None)
        if value is not None:
            payload[attr] = value
    try:
        payload["pickle"] = pickle_b64(exc)
    except Exception:  # pragma: no cover - unpicklable foreign exception
        pass
    return payload


def raise_from_payload(payload: Dict[str, Any]) -> None:
    """Client side: re-raise the server's structured failure. The
    correlation ID travels next to the pickle (``ReproError.__reduce__``
    only keeps the standard context), so it is re-stamped here."""
    blob = payload.get("pickle")
    if blob:
        try:
            exc = unpickle_b64(blob)
        except Exception:
            exc = None
        if isinstance(exc, BaseException):
            if payload.get("request_id"):
                exc.request_id = payload["request_id"]
            raise exc
    error = ServiceError(
        f"{payload.get('type', 'Error')}: {payload.get('message', '')}",
        stage=payload.get("stage"),
        block=payload.get("block"),
        rule=payload.get("rule"),
    )
    if payload.get("request_id"):
        error.request_id = payload["request_id"]
    raise error


__all__ = [
    "DEFAULT_PORT",
    "SCHEMA",
    "ReproError",
    "ServiceError",
    "error_payload",
    "options_from_dict",
    "options_to_dict",
    "pickle_b64",
    "raise_from_payload",
    "unpickle_b64",
]
