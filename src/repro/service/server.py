"""The compile-and-simulate server: ``repro serve``.

A stdlib-only asyncio HTTP/1.1 + JSON server that amortizes the
framework's deliberately expensive global optimization behind a
long-lived process. Request lifecycle::

    parse/validate ──► coalesce ──► admit ──► shard ──► worker pool
         │                │           │                  (warm memo +
         400              │           429 + Retry-After   artifact store)
                          └─ followers share the leader's result

Endpoints (wire schema ``repro.service/1``, see
:mod:`repro.service`):

* ``POST /v1/compile``  — compile a program, return ``CompileResult``.
* ``POST /v1/simulate`` — compile + simulate, additionally returning
  the ``ExecutionReport`` and final ``Memory``.
* ``GET /healthz``      — liveness + drain state.
* ``GET /metrics``      — service counters, per-stage latency
  histograms, pool/store stats, and the merged ``repro.perf``
  registry from every worker (JSON by default;
  ``?format=prometheus`` returns the text exposition v0.0.4).

Failure and backpressure model:

* malformed requests → 400 with a structured error payload;
* job failures (``ReproError`` from parse/verify/compile) → 422 with
  the pickled exception so Python clients re-raise the exact type;
* more than ``queue_limit`` admitted jobs → 429 + ``Retry-After``
  (followers of an in-flight compile bypass admission — they consume
  no worker);
* a worker death mid-job → transparent restart + single retry, then a
  structured 500 (``WorkerCrashError``) — never a hung client;
* SIGTERM/SIGINT → graceful drain: stop accepting, finish in-flight
  requests, stop the pool, exit 0.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import signal
import sys
import time
import urllib.parse
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from ..compiler import Variant
from ..errors import ReproError, ServiceError, WorkerCrashError
from ..ir import parse_program
from ..ir.printer import format_program
from ..perf import PERF
from ..store import ArtifactStore
from ..store.remote import open_store
from ..telemetry.log import LOG, bind_request_id, new_request_id
from ..telemetry.metrics import Histogram, MetricsRegistry
from ..telemetry.promtext import (
    CONTENT_TYPE as PROM_CONTENT_TYPE,
    render_prometheus,
)
from ..vm import MACHINES

from . import (
    DEFAULT_PORT,
    SCHEMA,
    error_payload,
    options_from_dict,
    pickle_b64,
)
from .admission import (
    AdmissionController,
    validate_priority,
    validate_tenant,
)
from .autoscale import Autoscaler, AutoscalerConfig
from .coalesce import Coalescer
from .pool import WorkerPool

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Upper bound on request bodies (a printed program is a few KB; this
#: is pure abuse protection).
MAX_BODY_BYTES = 64 << 20

_VARIANTS = {v.value: v for v in Variant}


# ``Histogram`` migrated to repro.telemetry.metrics (unchanged bucket
# bounds and ``snapshot()`` JSON shape); the name stays importable from
# here for existing callers.


@dataclasses.dataclass
class _PlainText:
    """A non-JSON response body (the Prometheus exposition)."""

    content_type: str
    text: str


class _CloseRequested(Exception):
    """Carries a response that must be the connection's last (the
    client sent ``Connection: close``)."""

    def __init__(self, response):
        super().__init__("connection close requested")
        self.response = response


class ReproService:
    """The server object; create, ``await start()``, then either
    ``await serve_forever()`` (CLI) or drive requests and finally
    ``await drain()`` (tests)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        shards: int = 2,
        queue_limit: int = 32,
        cache_dir: Optional[str] = None,
        job_timeout: float = 300.0,
        test_hooks: bool = False,
        remote_store_url: Optional[str] = None,
        tenant_rate: float = 0.0,
        tenant_burst: float = 0.0,
        min_workers: Optional[int] = None,
        max_workers: Optional[int] = None,
    ):
        self.host = host
        self.port = port
        self.shards = shards
        self.queue_limit = queue_limit
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.job_timeout = job_timeout
        self.test_hooks = test_hooks
        self.remote_store_url = remote_store_url
        self.min_workers = min_workers
        self.max_workers = max_workers

        # Per-server registry: embedded test servers must not bleed
        # counters into each other, so each instance owns its metrics;
        # the process-global METRICS stays the default elsewhere.
        self.metrics = MetricsRegistry()
        self._requests_family = self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests by path",
            labels=("path",),
        )
        self._served = self.metrics.counter(
            "repro_requests_served_total",
            "Successfully answered job requests",
        )
        self._rejected = self.metrics.counter(
            "repro_requests_shed_total",
            "Job requests shed with 429 under backpressure",
        )
        self._latency_family = self.metrics.histogram(
            "repro_request_stage_latency_ms",
            "Per-stage request latency (milliseconds)",
            labels=("stage",),
        )
        self.latency = {
            name: self._latency_family.labels(stage=name)
            for name in ("parse", "queue_wait", "execute", "total")
        }

        self.pool: Optional[WorkerPool] = None
        self.coalescer = Coalescer(metrics=self.metrics)
        # The server's own store handle (stats + scrape-time gauges):
        # tiered when a remote L2 is configured, so /metrics shows the
        # cluster-wide hit picture, not just this node's disk.
        self.store = open_store(
            self.cache_dir, remote_store_url, metrics=self.metrics
        )
        self.admission = AdmissionController(
            queue_limit=queue_limit,
            tenant_rate=tenant_rate,
            tenant_burst=tenant_burst,
            metrics=self.metrics,
        )
        self.autoscaler: Optional[Autoscaler] = None
        if min_workers is not None and max_workers is not None:
            if not 1 <= min_workers <= max_workers:
                raise ServiceError(
                    f"need 1 <= min_workers <= max_workers, got "
                    f"{min_workers}..{max_workers}"
                )
            self.autoscaler = Autoscaler(
                AutoscalerConfig(
                    min_shards=min_workers, max_shards=max_workers
                ),
                metrics=self.metrics,
            )
        self._autoscale_task: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._shutdown = asyncio.Event()
        self._draining = False
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()
        #: Open keep-alive connections; drain force-closes stragglers.
        self._conns: set = set()

    @property
    def requests(self) -> Dict[str, int]:
        """Request counts by path (the JSON ``/metrics`` shape)."""
        return {
            values[0]: int(child.value)
            for values, child in self._requests_family.samples()
        }

    @property
    def served(self) -> int:
        return int(self._served.value)

    @property
    def rejected(self) -> int:
        return int(self._rejected.value)

    # -- lifecycle -------------------------------------------------------------

    @property
    def live_shards(self) -> int:
        """Current worker count — tracks autoscaler resizes."""
        return len(self.pool.workers) if self.pool else self.shards

    async def start(self) -> None:
        PERF.enable()
        self.pool = WorkerPool(
            shards=self.shards,
            store_dir=self.cache_dir,
            job_timeout=self.job_timeout,
            test_hooks=self.test_hooks,
            metrics=self.metrics,
            remote_store_url=self.remote_store_url,
        )
        # Threads block on worker pipes; spares sized to the scaling
        # ceiling keep followers and metrics from queueing behind busy
        # shards even after the autoscaler grows the pool.
        self._executor = ThreadPoolExecutor(
            max_workers=(self.max_workers or self.shards) + 4,
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.autoscaler is not None:
            self._autoscale_task = asyncio.get_running_loop().create_task(
                self._autoscale_loop()
            )

    async def _autoscale_loop(self) -> None:
        """Periodic tick: evaluate the hysteresis policy against the
        queue-wait histogram and resize the pool off the event loop."""
        interval = self.autoscaler.config.interval
        while not self._draining:
            await asyncio.sleep(interval)
            if self._draining or self.pool is None:
                break
            desired = self.autoscaler.tick(
                shards=self.live_shards,
                queue_depth=self.coalescer.depth,
                queue_wait_snapshot=self.latency["queue_wait"].snapshot(),
            )
            if desired != self.live_shards:
                await asyncio.get_running_loop().run_in_executor(
                    self._executor, self.pool.resize, desired
                )

    async def serve_forever(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        print(
            f"repro.service listening on http://{self.host}:{self.port} "
            f"({self.shards} worker shard(s), queue limit "
            f"{self.queue_limit}"
            + (f", store {self.cache_dir}" if self.cache_dir else "")
            + ")",
            file=sys.stderr,
            flush=True,
        )
        await self._shutdown.wait()
        await self.drain()
        print(
            f"repro.service drained cleanly ({self.served} request(s) "
            f"served, {self.coalescer.coalesced} coalesced, "
            f"{self.rejected} shed)",
            file=sys.stderr,
            flush=True,
        )

    def request_shutdown(self) -> None:
        """Signal-handler entry: begin the graceful drain."""
        self._draining = True
        self._shutdown.set()

    async def drain(self) -> None:
        """Stop accepting, let in-flight requests finish, stop the
        pool."""
        self._draining = True
        if self._autoscale_task is not None:
            self._autoscale_task.cancel()
            try:
                await self._autoscale_task
            except asyncio.CancelledError:
                pass
            self._autoscale_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # In-flight requests hold self._active > 0; wait them out.
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.job_timeout
            )
        except asyncio.TimeoutError:  # pragma: no cover - stuck worker
            pass
        # Idle keep-alive connections are parked in readline(); closing
        # the transport unblocks them so their tasks can finish.
        for writer in list(self._conns):
            try:
                writer.close()
            except Exception:  # pragma: no cover - already dead
                pass
        if self._conns:
            await asyncio.sleep(0.05)
        if self.pool is not None:
            await asyncio.get_running_loop().run_in_executor(
                self._executor, self.pool.close
            )
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        if self.store is not None and hasattr(self.store, "close"):
            self.store.close()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        """One client connection: HTTP/1.1 keep-alive, so a
        :class:`ServiceClient` reuses the socket across submits. The
        loop ends on ``Connection: close``, a parse-level error (our
        framing may be out of sync with the client's), EOF, or drain."""
        self._conns.add(writer)
        try:
            while True:
                close_after = False
                try:
                    status, headers, payload = await self._handle_request(
                        reader
                    )
                except asyncio.IncompleteReadError:
                    break
                except _CloseRequested as req:
                    status, headers, payload = req.response
                    close_after = True
                except Exception as exc:  # pragma: no cover - defensive
                    status, headers = 500, ()
                    payload = {"schema": SCHEMA, "ok": False,
                               "error": error_payload(exc)}
                    close_after = True
                if status >= 400 or self._draining:
                    # Error framing may be desynchronized (e.g. an
                    # oversized body we never read); never risk parsing
                    # the next request against a stale stream.
                    close_after = True
                if isinstance(payload, _PlainText):
                    body = payload.text.encode("utf-8")
                    content_type = payload.content_type
                else:
                    body = json.dumps(payload).encode("utf-8")
                    content_type = "application/json"
                connection = "close" if close_after else "keep-alive"
                head = (
                    f"HTTP/1.1 {status} "
                    f"{_REASONS.get(status, 'Unknown')}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    + "".join(
                        f"{name}: {value}\r\n" for name, value in headers
                    )
                    + f"Connection: {connection}\r\n\r\n"
                ).encode("ascii")
                try:
                    writer.write(head + body)
                    await writer.drain()
                except ConnectionError:  # pragma: no cover - client gone
                    break
                if close_after:
                    break
        finally:
            self._conns.discard(writer)
            writer.close()

    async def _handle_request(
        self, reader
    ) -> Tuple[int, Tuple, Dict[str, Any]]:
        request_line = await reader.readline()
        if not request_line:
            raise asyncio.IncompleteReadError(b"", None)
        try:
            method, path, _version = (
                request_line.decode("ascii").strip().split(" ", 2)
            )
        except ValueError:
            return 400, (), self._error_body(
                ServiceError("malformed request line")
            )
        content_length = 0
        client_close = False
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, (), self._error_body(
                        ServiceError("bad Content-Length")
                    )
            elif name == "connection":
                client_close = value.strip().lower() == "close"
        if content_length > MAX_BODY_BYTES:
            return 413, (), self._error_body(
                ServiceError("request body too large")
            )
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )

        path, _, query = path.partition("?")
        response = await self._dispatch(method, path, query, body)
        if client_close:
            raise _CloseRequested(response)
        return response

    async def _dispatch(
        self, method: str, path: str, query: str, body: bytes
    ) -> Tuple[int, Tuple, Dict[str, Any]]:
        self._requests_family.labels(path=path).inc()
        if method == "GET" and path == "/healthz":
            return 200, (), self._healthz_body()
        if method == "GET" and path == "/metrics":
            params = urllib.parse.parse_qs(query)
            if params.get("format", ["json"])[-1] == "prometheus":
                return 200, (), self._metrics_prometheus()
            return 200, (), self._metrics_body()
        if method == "POST" and path in ("/v1/compile", "/v1/simulate"):
            kind = "compile" if path == "/v1/compile" else "simulate"
            return await self._handle_job(kind, body)
        if path in ("/healthz", "/metrics", "/v1/compile", "/v1/simulate"):
            return 405, (), self._error_body(
                ServiceError(f"{method} not allowed on {path}")
            )
        return 404, (), self._error_body(
            ServiceError(f"no such endpoint: {path}")
        )

    # -- the job path ----------------------------------------------------------

    async def _handle_job(
        self, kind: str, body: bytes
    ) -> Tuple[int, Tuple, Dict[str, Any]]:
        started = time.perf_counter()
        try:
            job, key = self._build_job(kind, body)
        except ReproError as exc:
            return 400, (), self._error_body(exc)
        self.latency["parse"].observe(time.perf_counter() - started)
        rid = job["request_id"]

        coalesce_key = "{}:{}:seed={}:trace={}".format(
            kind, key, job.get("seed", 0), bool(job.get("trace"))
        )
        tenant = job["tenant"]
        lane = job["priority"]
        self._active += 1
        self._idle.clear()
        leader_rid: Optional[str] = None
        try:
            with bind_request_id(rid):
                if self.coalescer.has(coalesce_key):
                    # Followers ride the in-flight leader: no queue
                    # slot, no worker — but the tenant bucket is still
                    # charged, so warm-key resubmits can't amplify one
                    # tenant for free.
                    verdict = self.admission.check(
                        tenant, lane, self.coalescer.depth, follower=True
                    )
                    if not verdict.admitted:
                        return self._shed(
                            kind, key, rid, tenant, lane, verdict
                        )
                    leader_rid = self.coalescer.leader_id(coalesce_key)
                    if LOG.enabled:
                        LOG.event(
                            "request.coalesced",
                            kind=kind,
                            key=key,
                            leader_request_id=leader_rid,
                        )
                    payload = await self.coalescer.join(coalesce_key)
                    coalesced = True
                else:
                    if self._draining:
                        return (
                            503,
                            (("Retry-After", "1"),),
                            self._error_body(
                                ServiceError("server is draining"), rid
                            ),
                        )
                    verdict = self.admission.check(
                        tenant, lane, self.coalescer.depth
                    )
                    if not verdict.admitted:
                        return self._shed(
                            kind, key, rid, tenant, lane, verdict
                        )
                    if LOG.enabled:
                        LOG.event("request.lead", kind=kind, key=key)
                    payload = await self.coalescer.lead(
                        coalesce_key,
                        lambda: self._run_job(job),
                        request_id=rid,
                    )
                    coalesced = False
        except WorkerCrashError as exc:
            if LOG.enabled:
                LOG.event(
                    "request.crash", request_id=rid, kind=kind, key=key,
                    error=str(exc),
                )
            return 500, (), self._error_body(exc, rid)
        except ReproError as exc:
            return 422, (), self._error_body(exc, rid)
        except Exception as exc:
            return 500, (), self._error_body(exc, rid)
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()

        self._served.inc()
        total = time.perf_counter() - started
        self.latency["total"].observe(total)
        if LOG.enabled:
            LOG.event(
                "request.done",
                request_id=rid,
                kind=kind,
                key=key,
                coalesced=coalesced,
                leader_request_id=leader_rid,
                cached=payload.get("cached"),
                ms=round(total * 1e3, 3),
            )
        return 200, (), self._success_body(
            kind, key, payload, coalesced, rid, leader_rid
        )

    def _build_job(
        self, kind: str, body: bytes
    ) -> Tuple[Dict[str, Any], str]:
        """Validate a request envelope into a pool job + content key.
        Raises :class:`ReproError` (→ 400) on anything client-shaped."""
        try:
            request = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not JSON: {exc}")
        if not isinstance(request, dict):
            raise ServiceError("request body must be a JSON object")
        schema = request.get("schema")
        if schema is not None and schema != SCHEMA:
            raise ServiceError(
                f"unsupported schema {schema!r} (this server speaks "
                f"{SCHEMA})",
                rule="service.schema",
            )

        source = request.get("program")
        kernel_name = request.get("kernel")
        if kernel_name is not None:
            from ..bench.kernels import KERNELS

            if kernel_name not in KERNELS:
                raise ServiceError(f"unknown kernel {kernel_name!r}")
            program = KERNELS[kernel_name].build(int(request.get("n") or 0))
            source = format_program(program)
        elif source is None:
            raise ServiceError("request needs 'program' or 'kernel'")

        variant_name = request.get("variant", "global")
        if variant_name not in _VARIANTS:
            raise ServiceError(
                f"unknown variant {variant_name!r} "
                f"(choose from {', '.join(sorted(_VARIANTS))})"
            )
        machine_name = request.get("machine", "intel")
        if machine_name not in MACHINES:
            raise ServiceError(
                f"unknown machine {machine_name!r} "
                f"(choose from {', '.join(sorted(MACHINES))})"
            )
        datapath = request.get("datapath")
        options = options_from_dict(request.get("options"))

        # Parse here (not just in the worker): it validates the program
        # early and gives the canonical content key.
        program = parse_program(source)
        machine = MACHINES[machine_name]()
        if datapath:
            machine = machine.with_datapath(int(datapath))
        key = ArtifactStore.key(
            program, _VARIANTS[variant_name], machine, options
        )
        request_id = request.get("request_id")
        if not isinstance(request_id, str) or not request_id:
            request_id = new_request_id()
        ok, tenant = validate_tenant(request.get("tenant"))
        if not ok:
            raise ServiceError(tenant, rule="service.tenant")
        ok, priority = validate_priority(request.get("priority"))
        if not ok:
            raise ServiceError(priority, rule="service.priority")
        job: Dict[str, Any] = {
            "kind": kind,
            "source": source,
            "variant": variant_name,
            "machine": machine_name,
            "datapath": datapath,
            "options": request.get("options") or {},
            "seed": int(request.get("seed") or 0),
            "trace": bool(request.get("trace")),
            "key": key,
            "request_id": request_id,
            "tenant": tenant,
            "priority": priority,
        }
        if self.test_hooks:
            for hook in (
                "x_crash_once", "x_crash", "x_crash_times", "x_sleep"
            ):
                if hook in request:
                    job[hook] = request[hook]
        return job, key

    async def _run_job(self, job: Dict[str, Any]) -> Dict[str, Any]:
        """Leader path: ship the job to its shard via the executor,
        recording queue-wait and execute latency."""
        loop = asyncio.get_running_loop()
        admitted_at = time.perf_counter()

        def run() -> Dict[str, Any]:
            started = time.perf_counter()
            self.latency["queue_wait"].observe(started - admitted_at)
            try:
                return self.pool.submit(job)
            finally:
                self.latency["execute"].observe(
                    time.perf_counter() - started
                )

        return await loop.run_in_executor(self._executor, run)

    def _shed(
        self,
        kind: str,
        key: str,
        rid: str,
        tenant: str,
        lane: str,
        verdict,
    ) -> Tuple[int, Tuple, Dict[str, Any]]:
        """Build the 429 for a rejected request (queue full or tenant
        over its rate), with an honest ``Retry-After``."""
        self._rejected.inc()
        depth = self.coalescer.depth
        if verdict.reason == "queue-full":
            retry_after = float(max(1, depth // max(1, self.live_shards)))
            message = (
                f"queue full ({depth} in flight, lane {lane!r} limit "
                f"{self.admission.lane_limit(lane)} of "
                f"{self.queue_limit})"
            )
            rule = "service.backpressure"
        else:
            retry_after = max(0.05, round(verdict.retry_after, 3))
            message = (
                f"tenant {tenant!r} over its rate limit "
                f"({self.admission.tenant_rate:g}/s)"
            )
            rule = "service.tenant-limit"
        if LOG.enabled:
            LOG.event(
                "request.shed", kind=kind, key=key, depth=depth,
                tenant=tenant, lane=lane, reason=verdict.reason,
            )
        return (
            429,
            (("Retry-After", f"{retry_after:g}"),),
            self._error_body(ServiceError(message, rule=rule), rid),
        )

    # -- response bodies -------------------------------------------------------

    @staticmethod
    def _error_body(
        exc: BaseException, request_id: Optional[str] = None
    ) -> Dict[str, Any]:
        if request_id and getattr(exc, "request_id", None) is None:
            try:
                exc.request_id = request_id
            except AttributeError:  # pragma: no cover - slotted exception
                pass
        body = {"schema": SCHEMA, "ok": False, "error": error_payload(exc)}
        if request_id:
            # Every response names its OWN request, even when the
            # exception object is shared — a coalescing follower must
            # not see the leader's id in its error envelope.
            body["error"]["request_id"] = request_id
            body["request_id"] = request_id
        return body

    def _success_body(
        self,
        kind: str,
        key: str,
        payload: Dict[str, Any],
        coalesced: bool,
        request_id: Optional[str] = None,
        leader_request_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        result = payload["result"]
        body: Dict[str, Any] = {
            "schema": SCHEMA,
            "ok": True,
            "kind": kind,
            "key": key,
            "cached": payload["cached"],
            "coalesced": coalesced,
            "result": {
                "pickle": pickle_b64(result),
                "summary": dataclasses.asdict(result.stats),
            },
            "diagnostics": [
                dataclasses.asdict(diag) for diag in result.diagnostics
            ],
        }
        if "report" in payload:
            report = payload["report"]
            body["report"] = {
                "pickle": pickle_b64(report),
                "summary": {
                    "cycles": report.cycles,
                    "dynamic_instructions": report.dynamic_instructions,
                    "pack_unpack_ops": report.pack_unpack_ops,
                    "cache_hits": report.cache_hits,
                    "cache_misses": report.cache_misses,
                },
            }
            body["memory"] = {"pickle": pickle_b64(payload["memory"])}
        if "trace_summary" in payload:
            body["trace_summary"] = payload["trace_summary"]
        if request_id:
            body["request_id"] = request_id
        if coalesced and leader_request_id:
            body["leader_request_id"] = leader_request_id
        return body

    def _healthz_body(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "ok": True,
            "draining": self._draining,
            "workers": self.live_shards,
            "queue_depth": self.coalescer.depth,
            "queue_limit": self.queue_limit,
            "served": self.served,
        }

    def _metrics_body(self) -> Dict[str, Any]:
        store_stats: Dict[str, Any] = {}
        if self.store is not None:
            store_stats = dataclasses.asdict(self.store.stats())
            if hasattr(self.store, "remote_stats"):
                store_stats["remote"] = self.store.remote_stats()
        return {
            "schema": SCHEMA,
            "ok": True,
            "service": {
                "requests": dict(self.requests),
                "served": self.served,
                "coalesced": self.coalescer.coalesced,
                "leads": self.coalescer.leads,
                "queue": {
                    "depth": self.coalescer.depth,
                    "limit": self.queue_limit,
                    "rejected": self.rejected,
                },
                "admission": self.admission.stats(),
                "pool": self.pool.stats() if self.pool else {},
                "store": store_stats,
                "latency_ms": {
                    name: hist.snapshot()
                    for name, hist in self.latency.items()
                },
                "draining": self._draining,
            },
            "perf": PERF.snapshot(),
        }

    def _metrics_prometheus(self) -> _PlainText:
        """The Prometheus exposition: the per-server registry plus a
        handful of gauges refreshed at scrape time (queue depth, drain
        state, store stats) and the merged ``repro.perf`` bridge."""
        gauges = self.metrics.gauge(
            "repro_service_state",
            "Point-in-time service state",
            labels=("facet",),
        )
        gauges.labels(facet="queue_depth").set(self.coalescer.depth)
        gauges.labels(facet="queue_limit").set(self.queue_limit)
        gauges.labels(facet="draining").set(1 if self._draining else 0)
        gauges.labels(facet="shards").set(self.live_shards)
        if self.store is not None:
            stats = self.store.stats()
            store = self.metrics.gauge(
                "repro_store_stat",
                "Artifact store statistics at scrape time",
                labels=("stat",),
            )
            for name, value in dataclasses.asdict(stats).items():
                if isinstance(value, (int, float)):
                    store.labels(stat=name).set(value)
        text = render_prometheus(
            self.metrics, perf_snapshot=PERF.snapshot()
        )
        return _PlainText(PROM_CONTENT_TYPE, text)


# -- embedding helpers (tests, benchmarks) -------------------------------------


class ServiceThread:
    """Run a :class:`ReproService` on a background thread with its own
    event loop — how the tests and the service benchmark embed a real
    server on an ephemeral port inside one process."""

    def __init__(self, **service_kwargs: Any):
        import threading

        service_kwargs.setdefault("port", 0)
        self._kwargs = service_kwargs
        self.service: Optional[ReproService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self.service = ReproService(**self._kwargs)
        self._loop.run_until_complete(self.service.start())
        self._ready.set()
        self._loop.run_until_complete(self.service._shutdown.wait())
        self._loop.run_until_complete(self.service.drain())
        self._loop.close()

    def start(self) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ServiceError("service thread failed to start")
        return self

    @property
    def url(self) -> str:
        return f"http://{self.service.host}:{self.service.port}"

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self.service.request_shutdown)
        self._thread.join(timeout=60.0)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


__all__ = ["Histogram", "MAX_BODY_BYTES", "ReproService", "ServiceThread"]
