"""The blocking Python client for a running ``repro serve``.

``ServiceClient`` speaks the ``repro.service/1`` wire schema over
plain ``http.client`` with **keep-alive connection reuse**: each
thread holds one persistent ``HTTPConnection``, reconnecting
transparently (exactly once per request) when the server closed it
between uses — TCP connect + slow-start used to dominate the warm
path, where a cache hit costs well under a millisecond of server
time. ``keep_alive=False`` restores the old one-connection-per-request
behavior. Job methods return a :class:`SubmitOutcome` whose
``result``/``report``/``memory`` are the *exact* objects a local
in-process :func:`repro.compiler.compile_program` + simulation run
would produce — dataclass ``==`` equal, which the end-to-end tests
assert per kernel and variant.

Failures re-raise server-side: a structured :class:`repro.errors.
ReproError` arrives pickled in the error envelope and is raised as its
original type with stage/block/rule context intact; backpressure (429)
raises :class:`repro.errors.ServiceBusyError` carrying the server's
``Retry-After`` — or, with ``retries=N``, the client sleeps the
advertised backoff (plus decorrelating jitter) and resubmits before
giving up.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..compiler import CompileResult, CompilerOptions
from ..errors import ServiceBusyError, ServiceError
from ..telemetry.log import current_request_id, new_request_id
from ..vm import ExecutionReport

from . import (
    DEFAULT_PORT,
    SCHEMA,
    options_to_dict,
    raise_from_payload,
    unpickle_b64,
)


@dataclass
class SubmitOutcome:
    """One job's results plus the service-side accounting flags."""

    result: CompileResult
    report: Optional[ExecutionReport] = None
    memory: Optional[Any] = None
    cached: bool = False
    coalesced: bool = False
    key: str = ""
    summary: Dict[str, Any] = field(default_factory=dict)
    trace_summary: Optional[Dict[str, Any]] = None
    #: The correlation ID this request carried end to end (client mints
    #: it, server echoes it and stamps it on every log line and trace).
    request_id: Optional[str] = None
    #: When coalesced, the leader request whose compile this one shared.
    leader_request_id: Optional[str] = None


class ServiceClient:
    """Blocking client; safe to share across threads (each thread
    keeps its own persistent connection)."""

    def __init__(
        self,
        url: str = f"http://127.0.0.1:{DEFAULT_PORT}",
        timeout: float = 600.0,
        keep_alive: bool = True,
    ):
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", ""):
            raise ServiceError(f"unsupported URL scheme {parsed.scheme!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or DEFAULT_PORT
        self.timeout = timeout
        self.keep_alive = keep_alive
        #: TCP connects performed — the benchmark's reuse evidence.
        self.connections_opened = 0
        self._local = threading.local()
        #: Patchable in tests so retry loops don't really sleep.
        self._sleep = time.sleep

    # -- transport -------------------------------------------------------------

    def _connect(self, timeout: float) -> http.client.HTTPConnection:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        self.connections_opened += 1
        return conn

    def _round_trip(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Dict[str, str],
        timeout: float,
    ):
        """One HTTP exchange, reusing this thread's keep-alive
        connection. A send/recv failure on a *reused* connection means
        the server closed it between requests (idle timeout, restart,
        drain) — retry exactly once on a fresh socket; a failure on a
        fresh connection propagates."""
        if not self.keep_alive:
            conn = self._connect(timeout)
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                return response.status, response.read(), response.headers
            finally:
                conn.close()
        conn = getattr(self._local, "conn", None)
        reused = conn is not None
        if conn is None:
            conn = self._connect(timeout)
            self._local.conn = conn
        try:
            conn.timeout = timeout
            if conn.sock is not None:
                conn.sock.settimeout(timeout)
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            status = response.status
            raw = response.read()
            resp_headers = response.headers
        except (http.client.HTTPException, ConnectionError, OSError):
            conn.close()
            self._local.conn = None
            if not reused:
                raise
            conn = self._connect(timeout)
            self._local.conn = conn
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            status = response.status
            raw = response.read()
            resp_headers = response.headers
        if (resp_headers.get("Connection") or "").lower() == "close":
            conn.close()
            self._local.conn = None
        return status, raw, resp_headers

    def close(self) -> None:
        """Drop this thread's persistent connection (other threads'
        connections die with their thread)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        headers = (
            {"Content-Type": "application/json"} if body else {}
        )
        status, raw, resp_headers = self._round_trip(
            method, path, body, headers, timeout or self.timeout
        )
        retry_after = resp_headers.get("Retry-After")
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServiceError(
                f"non-JSON response (HTTP {status}) from "
                f"{self.host}:{self.port}"
            )
        if status == 429:
            raise ServiceBusyError(
                envelope.get("error", {}).get("message", "server busy"),
                retry_after=float(retry_after or 1.0),
            )
        if not envelope.get("ok", False):
            raise_from_payload(envelope.get("error", {}))
        return envelope

    # -- introspection ---------------------------------------------------------

    def healthz(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return self._request("GET", "/healthz", timeout=timeout)

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def metrics_prometheus(self) -> str:
        """The Prometheus text exposition (``/metrics?format=
        prometheus``), returned raw — it is not JSON."""
        status, raw, _headers = self._round_trip(
            "GET", "/metrics?format=prometheus", None, {}, self.timeout
        )
        if status != 200:
            raise ServiceError(
                f"HTTP {status} from /metrics?format=prometheus"
            )
        return raw.decode("utf-8")

    def is_up(self, timeout: float = 2.0) -> bool:
        """Is a compatible server answering? Used by ``repro submit``
        to decide between the service and local compilation."""
        try:
            return bool(self.healthz(timeout=timeout).get("ok"))
        except (OSError, ServiceError):
            return False

    # -- jobs ------------------------------------------------------------------

    def _submit(
        self, kind: str, request: Dict[str, Any], retries: int = 0
    ) -> SubmitOutcome:
        # Mint the correlation ID client-side (unless an ambient one is
        # already bound) so a caller can log it even when the request
        # never reaches the server.
        request.setdefault(
            "request_id", current_request_id() or new_request_id()
        )
        attempt = 0
        while True:
            try:
                envelope = self._request("POST", f"/v1/{kind}", request)
                break
            except ServiceBusyError as busy:
                if attempt >= retries:
                    raise
                attempt += 1
                # Honor the server's Retry-After, decorrelated with
                # jitter so a herd of shed clients doesn't resubmit in
                # lockstep and get shed again together.
                backoff = busy.retry_after * (0.5 + random.random())
                self._sleep(backoff)
        result = unpickle_b64(envelope["result"]["pickle"])
        outcome = SubmitOutcome(
            result=result,
            cached=envelope.get("cached", False),
            coalesced=envelope.get("coalesced", False),
            key=envelope.get("key", ""),
            summary=envelope["result"].get("summary", {}),
            trace_summary=envelope.get("trace_summary"),
            request_id=envelope.get("request_id"),
            leader_request_id=envelope.get("leader_request_id"),
        )
        if "report" in envelope:
            outcome.report = unpickle_b64(envelope["report"]["pickle"])
            outcome.memory = unpickle_b64(envelope["memory"]["pickle"])
        return outcome

    @staticmethod
    def _job_request(
        source: Optional[str],
        kernel: Optional[str],
        n: int,
        variant: str,
        machine: str,
        datapath: Optional[int],
        options: Optional[CompilerOptions],
        seed: int,
        trace: bool,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
    ) -> Dict[str, Any]:
        if (source is None) == (kernel is None):
            raise ServiceError(
                "exactly one of source= or kernel= is required"
            )
        request: Dict[str, Any] = {
            "schema": SCHEMA,
            "variant": variant,
            "machine": machine,
            "seed": seed,
        }
        if source is not None:
            request["program"] = source
        else:
            request["kernel"] = kernel
            if n:
                request["n"] = n
        if datapath:
            request["datapath"] = datapath
        opts = options_to_dict(options)
        if opts:
            request["options"] = opts
        if trace:
            request["trace"] = True
        if tenant:
            request["tenant"] = tenant
        if priority:
            request["priority"] = priority
        return request

    def compile(
        self,
        source: Optional[str] = None,
        kernel: Optional[str] = None,
        n: int = 0,
        variant: str = "global",
        machine: str = "intel",
        datapath: Optional[int] = None,
        options: Optional[CompilerOptions] = None,
        trace: bool = False,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
        retries: int = 0,
    ) -> SubmitOutcome:
        """Compile on the server; ``outcome.result`` is dataclass-equal
        to a local ``compile_program`` of the same inputs."""
        return self._submit(
            "compile",
            self._job_request(
                source, kernel, n, variant, machine, datapath, options,
                seed=0, trace=trace, tenant=tenant, priority=priority,
            ),
            retries=retries,
        )

    def simulate(
        self,
        source: Optional[str] = None,
        kernel: Optional[str] = None,
        n: int = 0,
        variant: str = "global",
        machine: str = "intel",
        datapath: Optional[int] = None,
        options: Optional[CompilerOptions] = None,
        seed: int = 0,
        trace: bool = False,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
        retries: int = 0,
    ) -> SubmitOutcome:
        """Compile + simulate on the server; additionally fills
        ``outcome.report`` and ``outcome.memory``."""
        return self._submit(
            "simulate",
            self._job_request(
                source, kernel, n, variant, machine, datapath, options,
                seed=seed, trace=trace, tenant=tenant, priority=priority,
            ),
            retries=retries,
        )


__all__ = ["ServiceClient", "SubmitOutcome"]
