"""The blocking Python client for a running ``repro serve``.

``ServiceClient`` speaks the ``repro.service/1`` wire schema over
plain ``http.client`` (one connection per request; the server closes
after responding). Job methods return a :class:`SubmitOutcome` whose
``result``/``report``/``memory`` are the *exact* objects a local
in-process :func:`repro.compiler.compile_program` + simulation run
would produce — dataclass ``==`` equal, which the end-to-end tests
assert per kernel and variant.

Failures re-raise server-side: a structured :class:`repro.errors.
ReproError` arrives pickled in the error envelope and is raised as its
original type with stage/block/rule context intact; backpressure (429)
raises :class:`repro.errors.ServiceBusyError` carrying the server's
``Retry-After``.
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..compiler import CompileResult, CompilerOptions
from ..errors import ServiceBusyError, ServiceError
from ..telemetry.log import current_request_id, new_request_id
from ..vm import ExecutionReport

from . import (
    DEFAULT_PORT,
    SCHEMA,
    options_to_dict,
    raise_from_payload,
    unpickle_b64,
)


@dataclass
class SubmitOutcome:
    """One job's results plus the service-side accounting flags."""

    result: CompileResult
    report: Optional[ExecutionReport] = None
    memory: Optional[Any] = None
    cached: bool = False
    coalesced: bool = False
    key: str = ""
    summary: Dict[str, Any] = field(default_factory=dict)
    trace_summary: Optional[Dict[str, Any]] = None
    #: The correlation ID this request carried end to end (client mints
    #: it, server echoes it and stamps it on every log line and trace).
    request_id: Optional[str] = None
    #: When coalesced, the leader request whose compile this one shared.
    leader_request_id: Optional[str] = None


class ServiceClient:
    """Blocking client; safe to share across threads (every request
    opens its own connection)."""

    def __init__(
        self,
        url: str = f"http://127.0.0.1:{DEFAULT_PORT}",
        timeout: float = 600.0,
    ):
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", ""):
            raise ServiceError(f"unsupported URL scheme {parsed.scheme!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or DEFAULT_PORT
        self.timeout = timeout

    # -- transport -------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            body = (
                json.dumps(payload).encode("utf-8")
                if payload is not None
                else None
            )
            conn.request(
                method,
                path,
                body=body,
                headers={"Content-Type": "application/json"}
                if body
                else {},
            )
            response = conn.getresponse()
            raw = response.read()
            status = response.status
            retry_after = response.getheader("Retry-After")
        finally:
            conn.close()
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServiceError(
                f"non-JSON response (HTTP {status}) from "
                f"{self.host}:{self.port}"
            )
        if status == 429:
            raise ServiceBusyError(
                envelope.get("error", {}).get("message", "server busy"),
                retry_after=float(retry_after or 1.0),
            )
        if not envelope.get("ok", False):
            raise_from_payload(envelope.get("error", {}))
        return envelope

    # -- introspection ---------------------------------------------------------

    def healthz(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return self._request("GET", "/healthz", timeout=timeout)

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def metrics_prometheus(self) -> str:
        """The Prometheus text exposition (``/metrics?format=
        prometheus``), returned raw — it is not JSON."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", "/metrics?format=prometheus")
            response = conn.getresponse()
            raw = response.read()
            if response.status != 200:
                raise ServiceError(
                    f"HTTP {response.status} from /metrics?format="
                    f"prometheus"
                )
        finally:
            conn.close()
        return raw.decode("utf-8")

    def is_up(self, timeout: float = 2.0) -> bool:
        """Is a compatible server answering? Used by ``repro submit``
        to decide between the service and local compilation."""
        try:
            return bool(self.healthz(timeout=timeout).get("ok"))
        except (OSError, ServiceError):
            return False

    # -- jobs ------------------------------------------------------------------

    def _submit(
        self, kind: str, request: Dict[str, Any]
    ) -> SubmitOutcome:
        # Mint the correlation ID client-side (unless an ambient one is
        # already bound) so a caller can log it even when the request
        # never reaches the server.
        request.setdefault(
            "request_id", current_request_id() or new_request_id()
        )
        envelope = self._request("POST", f"/v1/{kind}", request)
        result = unpickle_b64(envelope["result"]["pickle"])
        outcome = SubmitOutcome(
            result=result,
            cached=envelope.get("cached", False),
            coalesced=envelope.get("coalesced", False),
            key=envelope.get("key", ""),
            summary=envelope["result"].get("summary", {}),
            trace_summary=envelope.get("trace_summary"),
            request_id=envelope.get("request_id"),
            leader_request_id=envelope.get("leader_request_id"),
        )
        if "report" in envelope:
            outcome.report = unpickle_b64(envelope["report"]["pickle"])
            outcome.memory = unpickle_b64(envelope["memory"]["pickle"])
        return outcome

    @staticmethod
    def _job_request(
        source: Optional[str],
        kernel: Optional[str],
        n: int,
        variant: str,
        machine: str,
        datapath: Optional[int],
        options: Optional[CompilerOptions],
        seed: int,
        trace: bool,
    ) -> Dict[str, Any]:
        if (source is None) == (kernel is None):
            raise ServiceError(
                "exactly one of source= or kernel= is required"
            )
        request: Dict[str, Any] = {
            "schema": SCHEMA,
            "variant": variant,
            "machine": machine,
            "seed": seed,
        }
        if source is not None:
            request["program"] = source
        else:
            request["kernel"] = kernel
            if n:
                request["n"] = n
        if datapath:
            request["datapath"] = datapath
        opts = options_to_dict(options)
        if opts:
            request["options"] = opts
        if trace:
            request["trace"] = True
        return request

    def compile(
        self,
        source: Optional[str] = None,
        kernel: Optional[str] = None,
        n: int = 0,
        variant: str = "global",
        machine: str = "intel",
        datapath: Optional[int] = None,
        options: Optional[CompilerOptions] = None,
        trace: bool = False,
    ) -> SubmitOutcome:
        """Compile on the server; ``outcome.result`` is dataclass-equal
        to a local ``compile_program`` of the same inputs."""
        return self._submit(
            "compile",
            self._job_request(
                source, kernel, n, variant, machine, datapath, options,
                seed=0, trace=trace,
            ),
        )

    def simulate(
        self,
        source: Optional[str] = None,
        kernel: Optional[str] = None,
        n: int = 0,
        variant: str = "global",
        machine: str = "intel",
        datapath: Optional[int] = None,
        options: Optional[CompilerOptions] = None,
        seed: int = 0,
        trace: bool = False,
    ) -> SubmitOutcome:
        """Compile + simulate on the server; additionally fills
        ``outcome.report`` and ``outcome.memory``."""
        return self._submit(
            "simulate",
            self._job_request(
                source, kernel, n, variant, machine, datapath, options,
                seed=seed, trace=trace,
            ),
        )


__all__ = ["ServiceClient", "SubmitOutcome"]
