"""In-flight request coalescing.

N identical concurrent requests (same content key) should cost one
compile: the first becomes the *leader* and actually runs; the rest
become *followers* that await the leader's future and share its result
(or its exception — a failure is the result of that key, for everyone
who asked). The map only tracks in-flight work: once the leader
finishes, the next identical request starts fresh (and will typically
hit the artifact store instead).

Single-event-loop discipline: all methods must be called from the
owning loop. ``has``/``join``/``lead`` are split (rather than one
``do``) so the server can make the admission-control decision between
them — a follower consumes no queue slot.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict


class Coalescer:
    """Single-flight execution keyed by content hash."""

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}
        self.leads = 0
        self.coalesced = 0

    def has(self, key: str) -> bool:
        """Is a leader currently running this key?"""
        return key in self._inflight

    @property
    def depth(self) -> int:
        return len(self._inflight)

    async def join(self, key: str) -> Any:
        """Follow the in-flight leader for ``key``. The shield keeps a
        cancelled follower (dropped connection) from cancelling the
        shared future under everyone else."""
        self.coalesced += 1
        return await asyncio.shield(self._inflight[key])

    async def lead(
        self, key: str, thunk: Callable[[], Awaitable[Any]]
    ) -> Any:
        """Run ``thunk`` as the leader for ``key``, publishing its
        outcome to every follower that joined meanwhile."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future
        self.leads += 1
        try:
            result = await thunk()
        except BaseException as exc:
            if not future.cancelled():
                future.set_exception(exc)
                # Mark retrieved: with zero followers nobody awaits the
                # future, and an unretrieved exception would warn at GC.
                future.exception()
            raise
        else:
            if not future.cancelled():
                future.set_result(result)
            return result
        finally:
            del self._inflight[key]


__all__ = ["Coalescer"]
