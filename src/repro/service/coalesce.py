"""In-flight request coalescing.

N identical concurrent requests (same content key) should cost one
compile: the first becomes the *leader* and actually runs; the rest
become *followers* that await the leader's future and share its result
(or its exception — a failure is the result of that key, for everyone
who asked). The map only tracks in-flight work: once the leader
finishes, the next identical request starts fresh (and will typically
hit the artifact store instead).

Correlation: the leader's request ID is kept alongside its future, so
a follower's response (and log line) can carry ``leader_request_id`` —
the N coalesced requests are joinable on one key in the logs.

Single-event-loop discipline: all methods must be called from the
owning loop. ``has``/``join``/``lead`` are split (rather than one
``do``) so the server can make the admission-control decision between
them — a follower consumes no queue slot.

Counters live in a :class:`~repro.telemetry.metrics.MetricsRegistry`
(``repro_coalesce_total{role=leader|follower}``); ``leads`` and
``coalesced`` remain as integer properties for the JSON ``/metrics``
body and existing callers.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from ..telemetry.metrics import METRICS, MetricsRegistry


class Coalescer:
    """Single-flight execution keyed by content hash."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._inflight: Dict[
            str, Tuple[asyncio.Future, Optional[str]]
        ] = {}
        self._roles = (metrics or METRICS).counter(
            "repro_coalesce_total",
            "Requests by coalescing role",
            labels=("role",),
        )

    @property
    def leads(self) -> int:
        return int(self._roles.labels(role="leader").value)

    @property
    def coalesced(self) -> int:
        return int(self._roles.labels(role="follower").value)

    def has(self, key: str) -> bool:
        """Is a leader currently running this key?"""
        return key in self._inflight

    def leader_id(self, key: str) -> Optional[str]:
        """The in-flight leader's request ID, for follower linkage."""
        entry = self._inflight.get(key)
        return entry[1] if entry else None

    @property
    def depth(self) -> int:
        return len(self._inflight)

    async def join(self, key: str) -> Any:
        """Follow the in-flight leader for ``key``. The shield keeps a
        cancelled follower (dropped connection) from cancelling the
        shared future under everyone else."""
        self._roles.labels(role="follower").inc()
        return await asyncio.shield(self._inflight[key][0])

    async def lead(
        self,
        key: str,
        thunk: Callable[[], Awaitable[Any]],
        request_id: Optional[str] = None,
    ) -> Any:
        """Run ``thunk`` as the leader for ``key``, publishing its
        outcome to every follower that joined meanwhile."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = (future, request_id)
        self._roles.labels(role="leader").inc()
        try:
            result = await thunk()
        except BaseException as exc:
            if not future.cancelled():
                future.set_exception(exc)
                # Mark retrieved: with zero followers nobody awaits the
                # future, and an unretrieved exception would warn at GC.
                future.exception()
            raise
        else:
            if not future.cancelled():
                future.set_result(result)
            return result
        finally:
            del self._inflight[key]


__all__ = ["Coalescer"]
