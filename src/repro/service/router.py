"""Consistent-hash routing over a fleet of ``repro serve`` nodes.

``repro route --node URL --node URL ...`` runs a stdlib-only asyncio
proxy that maps each job's **content key** onto the fleet, so every
node's worker memos and on-disk L1 store stay hot for the keys it
owns, and cross-client coalescing keeps working fleet-wide (two
clients submitting the same program always land on the same node
while it is healthy).

Pieces:

* :class:`HashRing` — classic consistent hashing with virtual nodes.
  ``preference(key)`` returns *all* nodes in ring order, so the
  caller can walk the preference list on failure; adding or removing
  one node remaps only ~1/N of the key space (the property that keeps
  L1 stores warm through membership changes).
* **Bounded load** — the router tracks in-flight forwards per node
  and skips a preferred node whose load exceeds ``load_factor`` times
  the fleet average (the "consistent hashing with bounded loads"
  refinement), so one hot key cannot starve a node's unrelated
  traffic.
* **Health checking** — a background task polls each node's
  ``/healthz``; a node that fails the probe (or a forward) is marked
  down and skipped until a probe succeeds again. Draining nodes count
  as down for *new* leaders.
* **Retry with jitter** — a transport error, a 429, or a structured
  ``WorkerCrashError`` 500 moves to the next node in the preference
  list after a short decorrelated sleep. Anything else (400/422/200)
  is the job's real answer and is returned as-is.

The router is L7 but *schema-thin*: it parses just enough of the JSON
body to compute the routing key and forwards the original bytes
untouched, so it never needs updating when the job schema grows
fields.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
import sys
import time
import urllib.parse
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ServiceError
from ..telemetry.log import LOG
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.promtext import (
    CONTENT_TYPE as PROM_CONTENT_TYPE,
    render_prometheus,
)

from . import SCHEMA, error_payload

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

#: Virtual nodes per physical node: enough that the key-space split
#: stays within a few percent of even for small fleets.
VNODES = 64

#: Body bytes the router is willing to buffer (matches the server).
MAX_BODY_BYTES = 64 << 20


class HashRing:
    """Consistent hashing with virtual nodes over opaque node names."""

    def __init__(self, nodes: List[str], vnodes: int = VNODES):
        if not nodes:
            raise ServiceError("hash ring needs at least one node")
        self.nodes = list(dict.fromkeys(nodes))
        self._ring: List[Tuple[int, str]] = []
        for node in self.nodes:
            for replica in range(vnodes):
                point = self._hash(f"{node}#{replica}")
                self._ring.append((point, node))
        self._ring.sort()
        self._points = [point for point, _ in self._ring]

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.sha256(value.encode("utf-8")).digest()[:8], "big"
        )

    def preference(self, key: str) -> List[str]:
        """Every node, ordered by ring distance from ``key`` — the
        failover walk order. The first entry is the key's home node."""
        import bisect

        start = bisect.bisect_left(self._points, self._hash(key))
        seen: List[str] = []
        for offset in range(len(self._ring)):
            _, node = self._ring[(start + offset) % len(self._ring)]
            if node not in seen:
                seen.append(node)
                if len(seen) == len(self.nodes):
                    break
        return seen


class _Node:
    """A backend's live state: health, in-flight load, and a small
    keep-alive connection pool (router → node)."""

    def __init__(self, url: str):
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", ""):
            raise ServiceError(f"unsupported node URL scheme: {url!r}")
        self.url = url.rstrip("/")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.alive = True
        self.draining = False
        self.in_flight = 0
        self.forwards = 0
        self.failures = 0
        self._pool: List[Tuple[asyncio.StreamReader,
                               asyncio.StreamWriter]] = []

    async def acquire(self, timeout: float):
        while self._pool:
            reader, writer = self._pool.pop()
            if writer.is_closing():
                writer.close()
                continue
            return reader, writer, True
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), timeout
        )
        return reader, writer, False

    def release(self, reader, writer, reusable: bool) -> None:
        if reusable and not writer.is_closing() and len(self._pool) < 8:
            self._pool.append((reader, writer))
        else:
            writer.close()

    def close_pool(self) -> None:
        while self._pool:
            _, writer = self._pool.pop()
            writer.close()


async def _read_response(reader) -> Tuple[int, Dict[str, str], bytes]:
    """Parse one backend HTTP response (our servers always send
    Content-Length)."""
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("backend closed the connection")
    parts = status_line.decode("ascii").split(" ", 2)
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0))
    if length > MAX_BODY_BYTES:
        raise ConnectionError("backend response too large")
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


class RouterService:
    """The proxy itself; same lifecycle shape as
    :class:`repro.service.server.ReproService`."""

    #: Paths proxied by content key; everything else is router-local.
    JOB_PATHS = ("/v1/compile", "/v1/simulate")

    def __init__(
        self,
        nodes: List[str],
        host: str = "127.0.0.1",
        port: int = 0,
        load_factor: float = 1.25,
        health_interval: float = 1.0,
        retries: int = 3,
        forward_timeout: float = 600.0,
    ):
        self.host = host
        self.port = port
        self.load_factor = load_factor
        self.health_interval = health_interval
        self.retries = retries
        self.forward_timeout = forward_timeout
        self.nodes = [_Node(url) for url in nodes]
        self._by_url = {node.url: node for node in self.nodes}
        self.ring = HashRing([node.url for node in self.nodes])
        self.metrics = MetricsRegistry()
        self._forwards = self.metrics.counter(
            "repro_router_forwards_total",
            "Forward attempts by node and outcome",
            labels=("node", "outcome"),
        )
        self._retries_total = self.metrics.counter(
            "repro_router_retries_total",
            "Forwards retried on another node",
        )
        self._node_up = self.metrics.gauge(
            "repro_router_node_up",
            "1 when the node's last health probe succeeded",
            labels=("node",),
        )
        self._latency = self.metrics.histogram(
            "repro_router_forward_latency_ms",
            "End-to-end forward latency through the router",
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._health_task: Optional[asyncio.Task] = None
        self._shutdown = asyncio.Event()
        self._draining = False
        #: Open client connections; drain force-closes stragglers.
        self._conns: set = set()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        await self._probe_all()
        self._health_task = loop.create_task(self._health_loop())

    async def serve_forever(self) -> None:
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        print(
            f"repro.router listening on http://{self.host}:{self.port} "
            f"({len(self.nodes)} node(s): "
            + ", ".join(node.url for node in self.nodes)
            + ")",
            file=sys.stderr,
            flush=True,
        )
        await self._shutdown.wait()
        await self.drain()
        print(
            "repro.router drained cleanly",
            file=sys.stderr,
            flush=True,
        )

    def request_shutdown(self) -> None:
        self._draining = True
        self._shutdown.set()

    async def drain(self) -> None:
        self._draining = True
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._conns):
            try:
                writer.close()
            except Exception:  # pragma: no cover - already dead
                pass
        # Let the unblocked connection tasks observe EOF and finish
        # before their loop closes.
        await asyncio.sleep(0.05)
        for node in self.nodes:
            node.close_pool()

    # -- health ----------------------------------------------------------------

    async def _probe(self, node: _Node) -> None:
        try:
            status, _headers, body = await asyncio.wait_for(
                self._forward_once(node, b"GET", b"/healthz", b""),
                timeout=max(2.0, self.health_interval),
            )
            payload = json.loads(body.decode("utf-8"))
            was_alive = node.alive
            node.alive = status == 200 and bool(payload.get("ok"))
            node.draining = bool(payload.get("draining"))
            if node.alive and not was_alive and LOG.enabled:
                LOG.event("router.node_up", node=node.url)
        except Exception:
            if node.alive and LOG.enabled:
                LOG.event("router.node_down", node=node.url)
            node.alive = False
        self._node_up.labels(node=node.url).set(1 if node.alive else 0)

    async def _probe_all(self) -> None:
        await asyncio.gather(*(self._probe(node) for node in self.nodes))

    async def _health_loop(self) -> None:
        while not self._draining:
            await asyncio.sleep(self.health_interval)
            await self._probe_all()

    # -- routing ---------------------------------------------------------------

    def routing_key(self, path: str, body: bytes) -> str:
        """A stable key over the fields that determine the content key,
        without compiling anything: same program+config → same node →
        node-local coalescing keeps working through the router."""
        try:
            request = json.loads(body.decode("utf-8"))
            if not isinstance(request, dict):
                raise ValueError
        except (UnicodeDecodeError, json.JSONDecodeError, ValueError):
            # Malformed bodies still need *a* node (it will 400 there).
            return hashlib.sha256(body).hexdigest()
        fields = [
            path,
            str(request.get("program")),
            str(request.get("kernel")),
            str(request.get("n")),
            str(request.get("variant")),
            str(request.get("machine")),
            str(request.get("datapath")),
            json.dumps(request.get("options") or {}, sort_keys=True),
            str(request.get("seed")),
            str(bool(request.get("trace"))),
        ]
        return hashlib.sha256("\x00".join(fields).encode()).hexdigest()

    def _candidates(self, key: str) -> List[_Node]:
        """The preference walk, bounded-load adjusted: skip (but keep
        as fallback) alive nodes whose in-flight load exceeds
        ``load_factor`` times the fleet average."""
        preferred = [
            self._by_url[url]
            for url in self.ring.preference(key)
            if self._by_url[url].alive and not self._by_url[url].draining
        ]
        if not preferred:
            # Degraded fleet: try every non-drained node anyway rather
            # than failing outright (probes may simply be stale).
            return [n for n in self.nodes if not n.draining] or list(
                self.nodes
            )
        total = sum(node.in_flight for node in preferred)
        limit = self.load_factor * (total + 1) / len(preferred)
        light = [n for n in preferred if n.in_flight < max(1.0, limit)]
        heavy = [n for n in preferred if n not in light]
        return light + heavy

    # -- forwarding ------------------------------------------------------------

    async def _forward_once(
        self, node: _Node, method: bytes, path: bytes, body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        reader, writer, _reused = await node.acquire(5.0)
        try:
            head = (
                method + b" " + path + b" HTTP/1.1\r\n"
                b"Host: " + node.host.encode() + b"\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"\r\n"
            )
            writer.write(head + body)
            await writer.drain()
            status, headers, payload = await asyncio.wait_for(
                _read_response(reader), timeout=self.forward_timeout
            )
        except BaseException:
            node.release(reader, writer, reusable=False)
            raise
        keep = headers.get("connection", "").lower() != "close"
        node.release(reader, writer, reusable=keep)
        return status, headers, payload

    @staticmethod
    def _is_crash_500(status: int, body: bytes) -> bool:
        if status != 500:
            return False
        try:
            payload = json.loads(body.decode("utf-8"))
            return (
                payload.get("error", {}).get("type") == "WorkerCrashError"
            )
        except (UnicodeDecodeError, json.JSONDecodeError, AttributeError):
            return False

    async def _forward_job(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        """Walk the preference list until a node gives a real answer.

        Retryable: transport errors (node loss), 429 (that node is
        saturated; another may not be), and crash-shaped 500s (the
        satellite case: the leader's worker died — a sibling node can
        run the same job). Every hop after the first sleeps a short
        decorrelated jitter so a dying node's traffic doesn't stampede
        onto one survivor."""
        started = time.perf_counter()
        key = self.routing_key(path, body)
        last_error: Optional[BaseException] = None
        last_response: Optional[Tuple[int, Dict[str, str], bytes]] = None
        attempts = 0
        for node in self._candidates(key)[: self.retries + 1]:
            if attempts:
                self._retries_total.inc()
                await asyncio.sleep(random.uniform(0.005, 0.05) * attempts)
            attempts += 1
            node.in_flight += 1
            node.forwards += 1
            try:
                status, headers, payload = await self._forward_once(
                    node, method.encode(), path.encode(), body
                )
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError) as exc:
                node.failures += 1
                node.alive = False
                self._node_up.labels(node=node.url).set(0)
                self._forwards.labels(
                    node=node.url, outcome="error"
                ).inc()
                if LOG.enabled:
                    LOG.event(
                        "router.forward_error", node=node.url,
                        error=str(exc) or type(exc).__name__,
                    )
                last_error = exc
                continue
            finally:
                node.in_flight -= 1
            if status == 429 or self._is_crash_500(status, payload):
                self._forwards.labels(
                    node=node.url, outcome="retryable"
                ).inc()
                last_response = (status, headers, payload)
                continue
            self._forwards.labels(node=node.url, outcome="ok").inc()
            self._latency.observe(time.perf_counter() - started)
            return status, headers, payload
        # Preference list exhausted: surface the last real response if
        # any node produced one, else a structured 502.
        if last_response is not None:
            return last_response
        error = ServiceError(
            f"no node could serve the request "
            f"(last error: {last_error})",
            rule="router.no-node",
        )
        body_out = json.dumps(
            {"schema": SCHEMA, "ok": False, "error": error_payload(error)}
        ).encode("utf-8")
        return 502, {"content-type": "application/json"}, body_out

    # -- client side -----------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._conns.add(writer)
        try:
            while True:
                try:
                    (method, path, body,
                     client_close) = await self._read_request(reader)
                except asyncio.IncompleteReadError:
                    break
                except ValueError as exc:
                    await self._respond(
                        writer, 400, {}, self._error_json(exc), close=True
                    )
                    break
                path_only, _, query = path.partition("?")
                if method == "POST" and path_only in self.JOB_PATHS:
                    status, headers, payload = await self._forward_job(
                        method, path, body
                    )
                    out_headers = {
                        "Content-Type": headers.get(
                            "content-type", "application/json"
                        ),
                    }
                    if "retry-after" in headers:
                        out_headers["Retry-After"] = headers["retry-after"]
                    await self._respond(
                        writer, status, out_headers, payload,
                        close=client_close or self._draining,
                    )
                elif method == "GET" and path_only == "/healthz":
                    await self._respond(
                        writer, 200, {}, self._healthz_json(),
                        close=client_close,
                    )
                elif method == "GET" and path_only == "/metrics":
                    params = urllib.parse.parse_qs(query)
                    if params.get("format", ["json"])[-1] == "prometheus":
                        text = render_prometheus(self.metrics)
                        await self._respond(
                            writer, 200,
                            {"Content-Type": PROM_CONTENT_TYPE},
                            text.encode("utf-8"), close=client_close,
                        )
                    else:
                        payload = await self._metrics_json()
                        await self._respond(
                            writer, 200, {}, payload, close=client_close,
                        )
                else:
                    await self._respond(
                        writer, 404, {},
                        self._error_json(
                            ServiceError(f"no such endpoint: {path_only}")
                        ),
                        close=True,
                    )
                    break
                if client_close or self._draining:
                    break
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            self._conns.discard(writer)
            writer.close()

    async def _read_request(self, reader):
        request_line = await reader.readline()
        if not request_line:
            raise asyncio.IncompleteReadError(b"", None)
        method, path, _version = (
            request_line.decode("ascii").strip().split(" ", 2)
        )
        content_length = 0
        client_close = False
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                content_length = int(value.strip())
            elif name == "connection":
                client_close = value.strip().lower() == "close"
        if content_length > MAX_BODY_BYTES:
            raise ValueError("request body too large")
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return method, path, body, client_close

    async def _respond(
        self, writer, status, headers, body: bytes, close: bool
    ) -> None:
        base = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
            "Connection": "close" if close else "keep-alive",
        }
        base.update(headers)
        base["Content-Length"] = str(len(body))
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            + "".join(f"{k}: {v}\r\n" for k, v in base.items())
            + "\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()

    @staticmethod
    def _error_json(exc: BaseException) -> bytes:
        return json.dumps(
            {"schema": SCHEMA, "ok": False, "error": error_payload(exc)}
        ).encode("utf-8")

    def _healthz_json(self) -> bytes:
        alive = [node.url for node in self.nodes if node.alive]
        return json.dumps(
            {
                "schema": SCHEMA,
                "ok": bool(alive),
                "role": "router",
                "draining": self._draining,
                "nodes": {
                    node.url: {
                        "alive": node.alive,
                        "draining": node.draining,
                        "in_flight": node.in_flight,
                        "forwards": node.forwards,
                        "failures": node.failures,
                    }
                    for node in self.nodes
                },
            }
        ).encode("utf-8")

    async def _metrics_json(self) -> bytes:
        """Router counters plus each live node's own /metrics summary
        — the single scrape that describes the whole cluster."""
        async def node_metrics(node: _Node):
            try:
                status, _h, body = await asyncio.wait_for(
                    self._forward_once(node, b"GET", b"/metrics", b""),
                    timeout=5.0,
                )
                if status != 200:
                    return node.url, {"error": f"HTTP {status}"}
                service = json.loads(body.decode("utf-8")).get(
                    "service", {}
                )
                return node.url, {
                    "served": service.get("served"),
                    "coalesced": service.get("coalesced"),
                    "queue": service.get("queue"),
                    "pool": service.get("pool"),
                    "store": service.get("store"),
                }
            except Exception as exc:
                return node.url, {"error": str(exc) or type(exc).__name__}

        per_node = dict(
            await asyncio.gather(
                *(node_metrics(n) for n in self.nodes if n.alive)
            )
        )
        payload = {
            "schema": SCHEMA,
            "ok": True,
            "router": {
                "nodes": {
                    node.url: {
                        "alive": node.alive,
                        "in_flight": node.in_flight,
                        "forwards": node.forwards,
                        "failures": node.failures,
                        "metrics": per_node.get(node.url),
                    }
                    for node in self.nodes
                },
                "retries": int(self._retries_total.value),
                "forward_latency_ms": self._latency.snapshot(),
            },
        }
        return json.dumps(payload).encode("utf-8")


# -- embedding helper (tests, benchmarks) --------------------------------------


class RouterThread:
    """Run a :class:`RouterService` on a background thread with its
    own event loop — mirrors ``ServiceThread``."""

    def __init__(self, nodes: List[str], **kwargs: Any):
        import threading

        kwargs.setdefault("port", 0)
        self._nodes = nodes
        self._kwargs = kwargs
        self.router: Optional[RouterService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-router", daemon=True
        )

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self.router = RouterService(self._nodes, **self._kwargs)
        self._loop.run_until_complete(self.router.start())
        self._ready.set()
        self._loop.run_until_complete(self.router._shutdown.wait())
        self._loop.run_until_complete(self.router.drain())
        self._loop.close()

    def start(self) -> "RouterThread":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ServiceError("router thread failed to start")
        return self

    @property
    def url(self) -> str:
        return f"http://{self.router.host}:{self.router.port}"

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self.router.request_shutdown)
        self._thread.join(timeout=60.0)

    def __enter__(self) -> "RouterThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


__all__ = ["HashRing", "RouterService", "RouterThread", "VNODES"]
