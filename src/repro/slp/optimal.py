"""Exact statement packing: branch-and-bound with DP memoization.

goSLP (PAPERS.md) shows the pairing step of SLP can be solved
*optimally*, turning the greedy heuristic's quality into a measurable
quantity.  This module is the ``grouping_engine="optimal"`` backend: it
maximizes a whole-selection packing objective over all pairwise
non-conflicting subsets of one grouping round's candidates (the VP/SG
candidate graphs of :class:`~repro.slp.grouping.BasicGrouping`).

**Objective.**  For a selection ``S`` of candidates, evaluated with the
same :class:`~repro.slp.grouping.PackCostModel` rows the greedy engines
score with::

    value(S) = sum_c [ op_saving(c) + ref_bonus(c) - store(tgt(c)) ]
             + sum_d (N_d - 1) * saving(d)          # reuse: one build serves all
             - sum_d [d used, never produced] * build(d)
             - sum_c [tgt(c) also a source of c] * build(tgt(c))   # RMW gather

where ``N_d`` counts occurrences of pack type ``d`` across all selected
candidates' pack lists.  This is the additive (un-normalized) analog of
the greedy per-candidate score, and — crucially — a well-defined *set*
function: :meth:`BasicGrouping.selection_objective` evaluates it
incrementally in ascending index order, and the marginal-gain procedure
is order-independent (source charges are refunded when a later selected
candidate produces the type).

**Bound (admissibility sketch).**  The marginal gain of adding ``c`` to
any selection is at most::

    ub(c) = op_saving(c) + ref_bonus(c) - store(tgt(c))
          + build(tgt(c))                    # best-case relief of a prior source charge
          + sum_slots mult(slot) * saving(slot)

since every other term of the marginal (first-occurrence saving
discount, source builds, RMW charge) is non-positive.  Hence for any
partial selection with accumulated value ``v`` at search position ``p``,
``v + sum_{q >= p} max(0, ub(q))`` bounds every completion, and a
candidate with ``ub(c) <= 0`` can never strictly improve a selection and
is dropped before the search.

**Search.**  Candidates are ordered by descending ``ub``; the DFS
branches include-first, pruning against the incumbent.  The greedy
(incremental) engine's selection — computed on a twin instance so this
one stays pristine — seeds the incumbent, so the reported gap is
``>= 0`` by construction and the search only records *strictly* better
selections.  States ``(position, blocked-set, pack-type statuses
relevant to the remaining candidates)`` are memoized with dominance
pruning: reaching a state at a value no better than a previous visit
cannot improve the incumbent.  All arithmetic is exact — Fractions are
scaled by the LCM of their denominators to plain ints.

A configurable node budget (``engine_options={"node_budget": n}``, or
``CompilerOptions.optimal_node_budget``) and a candidate-count ceiling
fall back to the bit-exact incremental result, emitting a structured
:class:`~repro.errors.Diagnostic` (``action="note"``) through the
grouping's ``on_diagnostic`` callback.
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm
from typing import Dict, List, Optional, Tuple

from ..errors import Diagnostic
from ..perf import count, section
from .grouping import BasicGrouping, GroupingTrace
from ..trace import TRACE

#: Search-node ceiling before falling back to the incremental result.
DEFAULT_NODE_BUDGET = 50_000
#: Candidate-count ceiling: beyond this the search is not attempted at
#: all (the budget would dominate; fall back immediately).
MAX_CANDIDATES = 160
#: States whose relevant-type signature is longer than this are not
#: memoized (signature construction would outweigh the hits).
_MEMO_SIG_LIMIT = 64


class _BudgetExceeded(Exception):
    pass


class _Spec:
    """Integer-scaled per-candidate cost row for the search hot loop."""

    __slots__ = ("slots", "store", "static", "rmw", "ub")

    def __init__(self, slots, store, static, rmw, ub):
        self.slots = slots      # tuple of (tid, mult, saving, build, is_target)
        self.store = store
        self.static = static
        self.rmw = rmw
        self.ub = ub


def _build_specs(
    grouping: BasicGrouping, indices: List[int]
) -> Tuple[List[_Spec], int, int, Dict]:
    """Scale every cost Fraction of ``indices`` to ints by their common
    LCM denominator; returns (specs, scale, n_types, tid_of).

    Each spec's ``ub`` is sharpened with instance-wide exclusivity
    facts: a pack type no *other* candidate contains can never have its
    first-occurrence discount absorbed elsewhere nor its source build
    charge relieved, and a target only earns the cross-candidate relief
    term when some other candidate reads that type as a source.  Both
    facts hold for every possible selection, so the bound stays
    admissible."""
    denoms = {1}
    rows = []
    for j in indices:
        savings, builds, target, store = grouping._cost_row(j)
        op_saving, ref_bonus = grouping._static_bonus(j)
        static = op_saving + ref_bonus
        rows.append((savings, builds, target, store, static))
        denoms.update(f.denominator for f in savings)
        denoms.update(f.denominator for f in builds)
        denoms.add(store.denominator)
        denoms.add(static.denominator)
    scale = lcm(*denoms)
    tid_of: Dict = {}
    holders: Dict[int, int] = {}         # tid -> candidates containing it
    source_holders: Dict[int, int] = {}  # tid -> candidates sourcing it
    slot_lists = []
    for j, (savings, builds, target, store, static) in zip(indices, rows):
        types = grouping._sorted_pack_types[j]
        own = grouping._own_list[j]
        slots = []
        for slot, data in enumerate(types):
            tid = tid_of.setdefault(data, len(tid_of))
            saving_i = int(savings[slot] * scale)
            build_i = int(builds[slot] * scale)
            slots.append((tid, own[slot], saving_i, build_i, slot == target))
            holders[tid] = holders.get(tid, 0) + 1
            if slot != target:
                source_holders[tid] = source_holders.get(tid, 0) + 1
        slot_lists.append(slots)
    specs = []
    for slots, (savings, builds, target, store, static) in zip(
        slot_lists, rows
    ):
        store_i = int(store * scale)
        static_i = int(static * scale)
        rmw = False
        ub = static_i - store_i
        for tid, mult, saving_i, build_i, is_target in slots:
            shared = holders[tid] > 1
            ub += (mult if shared else mult - 1) * saving_i
            if is_target:
                rmw = mult > 1
                if source_holders.get(tid, 0) > 0:
                    ub += build_i
                if rmw:
                    ub -= build_i
            elif not shared:
                ub -= build_i
        specs.append(_Spec(tuple(slots), store_i, static_i, rmw, ub))
    return specs, scale, len(tid_of), tid_of


def _apply(spec: _Spec, seen, status) -> Tuple[int, list]:
    """Marginal gain of selecting ``spec`` given the current pack-type
    state; mutates ``seen``/``status`` and returns an undo trail."""
    gain = spec.static - spec.store
    trail = []
    for tid, mult, saving, build, is_target in spec.slots:
        trail.append((tid, seen[tid], status[tid]))
        gain += mult * saving
        if not seen[tid]:
            seen[tid] = 1
            gain -= saving
        st = status[tid]
        if is_target:
            if st == 1:
                gain += build       # refund the earlier source charge
            if spec.rmw:
                gain -= build       # read-modify-write gathers first
            status[tid] = 2
        elif st == 0:
            gain -= build           # source nobody (yet) produces
            status[tid] = 1
    return gain, trail


def _undo(trail, seen, status) -> None:
    for tid, was_seen, was_status in reversed(trail):
        seen[tid] = was_seen
        status[tid] = was_status


def _clique_partition(n: int, masks: List[int]) -> List[int]:
    """Greedy partition of the positions into conflict cliques: at most
    one member of a clique fits in any selection, so a completion bound
    may count each clique once instead of each candidate once.
    Positions arrive in descending-``ub`` order, so within a clique the
    smallest position always carries the clique's largest ``ub``."""
    clique_of = [0] * n
    member_masks: List[int] = []
    for p in range(n):
        conf = masks[p]
        for c, members in enumerate(member_masks):
            if members & conf == members:
                member_masks[c] = members | (1 << p)
                clique_of[p] = c
                break
        else:
            clique_of[p] = len(member_masks)
            member_masks.append(1 << p)
    return clique_of


def _search(
    specs: List[_Spec],
    masks: List[int],
    n_types: int,
    incumbent: int,
    budget: int,
) -> Tuple[Optional[Tuple[int, ...]], int, int]:
    """Branch-and-bound over search positions; returns (best position
    set strictly beating the incumbent or None, best value, nodes)."""
    n = len(specs)
    ubs = [spec.ub for spec in specs]
    clique_of = _clique_partition(n, masks)
    n_cliques = len(set(clique_of)) if n else 0
    relevant: List[Tuple[int, ...]] = [()] * (n + 1)
    acc: set = set()
    for p in range(n - 1, -1, -1):
        acc.update(tid for tid, *_ in specs[p].slots)
        relevant[p] = tuple(sorted(acc))
    seen = bytearray(n_types)
    status = bytearray(n_types)
    clique_stamp = [0] * n_cliques
    stamp = 0
    memo: Dict = {}
    best_value = incumbent
    best_set: Optional[Tuple[int, ...]] = None
    chosen: List[int] = []
    nodes = 0

    def bound(p: int, blocked: int) -> int:
        """Clique-cover completion bound over the unblocked remainder:
        positions are ub-descending, so the first unblocked member seen
        per clique contributes its clique's maximum."""
        nonlocal stamp
        stamp += 1
        total = 0
        rest = blocked >> p
        for q in range(p, n):
            if rest & 1:
                rest >>= 1
                continue
            rest >>= 1
            c = clique_of[q]
            if clique_stamp[c] != stamp:
                clique_stamp[c] = stamp
                total += ubs[q]
        return total

    def dfs(p: int, value: int, blocked: int) -> None:
        nonlocal nodes, best_value, best_set
        nodes += 1
        if nodes > budget:
            raise _BudgetExceeded
        while p < n and (blocked >> p) & 1:
            p += 1
        if p == n:
            if value > best_value:
                best_value = value
                best_set = tuple(chosen)
            return
        if value + bound(p, blocked) <= best_value:
            return
        rel = relevant[p]
        if len(rel) <= _MEMO_SIG_LIMIT:
            # Blocked bits below p no longer matter; dropping them
            # merges states that differ only in their past.
            sig = bytes(seen[t] | (status[t] << 1) for t in rel)
            key = (p, blocked >> p, sig)
            prev = memo.get(key)
            if prev is not None and prev >= value:
                return
            memo[key] = value
        spec = specs[p]
        gain, trail = _apply(spec, seen, status)
        chosen.append(p)
        dfs(p + 1, value + gain, blocked | masks[p])
        chosen.pop()
        _undo(trail, seen, status)
        dfs(p + 1, value, blocked)

    dfs(0, 0, 0)
    return best_set, best_value, nodes


def _greedy_incumbent(grouping: BasicGrouping) -> List[int]:
    """The incremental engine's selection, computed on a twin instance
    (same units/deps/cost model -> identical candidate indices) so the
    caller's instance stays pristine for the search.  Trace events are
    suppressed: the twin's greedy commits are scaffolding, not
    decisions of this compile."""
    twin = BasicGrouping(
        grouping.units,
        grouping.deps,
        grouping.datapath_bits,
        grouping._decl_of,
        grouping._penalty_context,
        grouping.decision_mode,
        "incremental",
        grouping.cost,
    )
    was_enabled = TRACE.enabled
    TRACE.enabled = False
    try:
        twin._run_incremental()
    finally:
        TRACE.enabled = was_enabled
    return sorted(twin.decided)


def _fallback(
    grouping: BasicGrouping, nodes: int, reason: str
) -> GroupingTrace:
    """Budget exhausted (or instance too large): hand the round to the
    bit-exact incremental engine and leave a structured note."""
    count("grouping.optimal.fallbacks")
    callback = grouping.on_diagnostic
    if callback is not None:
        callback(
            Diagnostic(
                stage="schedule",
                block=TRACE.current("block") if TRACE.enabled else None,
                error="OptimalBudgetExceeded",
                message=f"optimal grouping fell back to incremental: "
                f"{reason}",
                action="note",
            )
        )
    trace = grouping._run_incremental()
    trace.nodes_explored = nodes
    trace.proven_optimal = False
    return trace


def run_optimal(grouping: BasicGrouping) -> GroupingTrace:
    """The ``grouping_engine="optimal"`` entry point (see module
    docstring); registered in :mod:`repro.engines`."""
    options = grouping.engine_options or {}
    budget = int(options.get("node_budget") or DEFAULT_NODE_BUDGET)
    n = len(grouping.candidates)
    if n == 0:
        return GroupingTrace(
            [], proven_optimal=True, objective=Fraction(0)
        )
    if n > MAX_CANDIDATES:
        return _fallback(
            grouping, 0, f"{n} candidates > ceiling {MAX_CANDIDATES}"
        )

    with section("grouping.optimal"):
        greedy_selection = _greedy_incumbent(grouping)
        greedy_value = grouping.selection_objective(greedy_selection)

        # Candidates that can never strictly improve a selection
        # (ub <= 0) are dropped before the search; order the rest by
        # descending bound so the suffix sums prune early.
        all_specs, scale, n_types, _ = _build_specs(grouping, list(range(n)))
        order = sorted(
            (j for j in range(n) if all_specs[j].ub > 0),
            key=lambda j: (-all_specs[j].ub, j),
        )
        specs = [all_specs[j] for j in order]
        masks = []
        conflict_rows = [grouping.vp.conflict_bits(j) for j in order]
        for p, j in enumerate(order):
            mask = 0
            for q, k in enumerate(order):
                if p != q and (
                    (conflict_rows[p] >> k) & 1 or (conflict_rows[q] >> j) & 1
                ):
                    mask |= 1 << q
            masks.append(mask)

        incumbent = int(greedy_value * scale)
        try:
            best_set, best_value, nodes = _search(
                specs, masks, n_types, incumbent, budget
            )
        except _BudgetExceeded:
            return _fallback(
                grouping, budget, f"node budget {budget} exhausted"
            )

        count("grouping.optimal.nodes", nodes)
        if best_set is not None:
            chosen = sorted(order[p] for p in best_set)
            objective = grouping.selection_objective(chosen)
            if objective <= greedy_value:  # defensive; search is exact
                chosen, objective = greedy_selection, greedy_value
        else:
            chosen, objective = greedy_selection, greedy_value

        trace = GroupingTrace(
            [],
            proven_optimal=True,
            objective=objective,
            nodes_explored=nodes,
        )
        seen: Dict = {}
        status: Dict = {}
        for index in chosen:
            gain = grouping._objective_gain(index, seen, status)
            grouping._commit(
                index,
                trace,
                gain,
                score=gain,
                picked_by="optimal",
                proven_optimal=True,
            )
    return trace
