"""The statement grouping graph and the grouping decision loop —
steps 3 and 4 of the basic grouping algorithm (Section 4.2.1, Figure 10).

Each edge of the statement grouping graph (SG) is a candidate group; its
weight estimates the *global* superword-reuse benefit of committing to
that group, computed on an auxiliary graph extracted from the variable
pack conflicting graph:

1. collect every VP node whose pack data matches one of the candidate's
   packs and whose originating candidate does not conflict with it;
2. resolve residual conflicts greedily (repeatedly drop the
   highest-degree node) until the auxiliary graph has no edges;
3. combine the surviving packs with the candidate's own packs and the
   packs of already-decided groups, and score
   ``W = sum_over_pack_types(N_type - 1) / Nt`` where ``Nt`` is the
   number of distinct pack types among the decided groups and the
   candidate (the paper's "average reuse", e.g. 2/3 in Figure 6).

The decision loop then repeatedly commits the heaviest edge, removes the
candidates it conflicts with from both graphs, and recomputes weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..analysis import DependenceGraph
from ..analysis.operands import KIND_CONST, KIND_REF, KIND_VAR
from ..ir import Affine
from ..ir.expr import OP_WEIGHTS
from .candidates import find_candidates
from .conflict import PackNode, VariablePackGraph
from .model import CandidateGroup, GroupNode, PackData

DeclLookup = Callable[[str], object]

#: Packing-cost constants for the decision score, in vector-op units,
#: calibrated to the machine models' deltas for two lanes:
#: * a strided/mixed memory gather costs lanes x (load + insert) against
#:   one wide load: ~3 extra;
#: * building a non-contiguous scalar pack costs lanes x (move + insert)
#:   against a contiguous arena load: ~2 extra;
#: * scattering a result to non-contiguous scalar slots costs
#:   lanes x (extract + move) against one arena store: ~1-2 extra.
GATHER_PENALTY = 3.0
SCALAR_GATHER_PENALTY = 2.0
SCALAR_SCATTER_PENALTY = 1.0
#: Residual penalty when the data layout stage is known to follow and
#: can rewrite this pack into a contiguous access (read-only array
#: replication, Section 5.2, or scalar offset assignment, Section 5.1):
#: only the amortized copy/arena cost remains.
LAYOUT_FIXABLE_PENALTY = 0.25


@dataclass(frozen=True)
class PenaltyContext:
    """What the code generator and downstream stages will see, for
    cost-aware grouping.

    ``replicable_arrays`` — read-only arrays eligible for replication
    when the layout stage runs (None: layout will not run).
    ``scalar_slots`` — the scalar arena slots codegen will use
    (``name -> (type name, offset)``); when the layout stage runs its
    offset assignment, leave this None (slots are then optimizable).
    """

    replicable_arrays: Optional[frozenset] = None
    scalar_slots: Optional[Tuple[Tuple[str, Tuple[str, int]], ...]] = None

    @property
    def assume_layout(self) -> bool:
        return self.replicable_arrays is not None

    def slot_of(self, name: str) -> Optional[Tuple[str, int]]:
        if self.scalar_slots is None:
            return None
        for entry, slot in self.scalar_slots:
            if entry == name:
                return slot
        return None

    @staticmethod
    def from_arenas(arenas) -> Tuple[Tuple[str, Tuple[str, int]], ...]:
        """Flatten ``{type: ScalarArena}`` into the slots tuple."""
        slots = []
        for type_name, arena in arenas.items():
            for name, offset in arena.slots.items():
                slots.append((name, (type_name, offset)))
        return tuple(sorted(slots))


def _scalar_pack_contiguous(
    pack: PackData, context: Optional[PenaltyContext]
) -> bool:
    """Whether the scalar pack occupies consecutive arena slots (in some
    lane order) under the known scalar layout."""
    if context is None or context.scalar_slots is None:
        return False
    slots = []
    for key in pack:
        slot = context.slot_of(key[1])
        if slot is None:
            return False
        slots.append(slot)
    types = {t for t, _ in slots}
    if len(types) != 1:
        return False
    offsets = sorted(offset for _, offset in slots)
    return offsets == list(range(offsets[0], offsets[0] + len(offsets)))


def pack_is_contiguous_memory(
    pack: PackData, decl_of: Optional[DeclLookup]
) -> bool:
    """Whether the pack's lanes are consecutive elements of one array
    (in some lane order)."""
    if not all(key[0] == KIND_REF for key in pack):
        return False
    arrays = {key[1] for key in pack}
    if len(arrays) != 1:
        return False
    flats = []
    for key in pack:
        subscripts = key[2]
        decl = decl_of(key[1]) if decl_of is not None else None
        if decl is not None:
            shape = decl.shape
        elif len(subscripts) == 1:
            shape = (0,)
        else:
            return False
        flat = Affine((), 0)
        for subscript, dim in zip(subscripts, shape):
            flat = flat * dim + subscript
        flats.append(flat)
    flats.sort()
    base = flats[0]
    for lane, flat in enumerate(flats):
        delta = flat - base
        if not (delta.is_constant and delta.const == lane):
            return False
    return True


def pack_adjacency_score(pack: PackData, decl_of: Optional[DeclLookup]) -> int:
    """Static desirability of a pack absent any reuse: contiguous memory
    (one wide load/store) scores 2, a splat (all lanes equal) scores 1,
    anything else 0. Used as a tie-break between equal-weight
    candidates (the paper chooses randomly there)."""
    if len(set(pack)) == 1:
        return 1
    if pack_is_contiguous_memory(pack, decl_of):
        return 2
    return 0


def pack_materialization_penalty(
    pack: PackData,
    decl_of: Optional[DeclLookup],
    context: Optional[PenaltyContext] = None,
    is_store: bool = False,
) -> float:
    """Overhead of building (or scattering, for ``is_store``) this pack
    when nothing in the block reuses it, relative to a contiguous wide
    access. When a :class:`PenaltyContext` says the layout stage will
    run, source packs it can make contiguous (read-only array
    replication, scalar offset assignment) are almost free — the phase
    coupling that lets Global+Layout choose the reuse-maximizing
    grouping the layout stage then repairs."""
    if len(set(pack)) == 1:
        return 0.0  # splat: one broadcast
    kinds = {key[0] for key in pack}
    if kinds == {KIND_CONST}:
        return 0.0  # vector immediate, hoisted out of the loop
    if kinds == {KIND_REF}:
        if pack_is_contiguous_memory(pack, decl_of):
            return 0.0
        if (
            not is_store
            and context is not None
            and context.replicable_arrays is not None
            and all(key[1] in context.replicable_arrays for key in pack)
        ):
            return LAYOUT_FIXABLE_PENALTY
        return GATHER_PENALTY
    if kinds == {KIND_VAR}:
        if _scalar_pack_contiguous(pack, context):
            return 0.0
        if context is not None and context.assume_layout:
            return LAYOUT_FIXABLE_PENALTY
        return SCALAR_SCATTER_PENALTY if is_store else SCALAR_GATHER_PENALTY
    return GATHER_PENALTY  # mixed lane sources: per-lane inserts


def pack_reuse_saving(
    pack: PackData,
    decl_of: Optional[DeclLookup],
    context: Optional[PenaltyContext] = None,
) -> float:
    """What one *reuse* of this pack saves, in vector-op units: the cost
    of the materialization it avoids. A constant vector is hoisted out
    of the loop and costs nothing per iteration, so reusing it saves
    nothing; a strided gather it saves almost entirely (unless the
    layout stage will make that gather cheap anyway)."""
    kinds = {key[0] for key in pack}
    if kinds == {KIND_CONST}:
        return 0.0
    if len(set(pack)) == 1:
        return 0.5  # a broadcast
    if kinds == {KIND_REF}:
        if pack_is_contiguous_memory(pack, decl_of):
            return 1.0  # one wide load
        if (
            context is not None
            and context.replicable_arrays is not None
            and all(key[1] in context.replicable_arrays for key in pack)
        ):
            return 1.0  # replication will make it one wide load
        return GATHER_PENALTY
    if kinds == {KIND_VAR}:
        if _scalar_pack_contiguous(pack, context):
            return 1.0
        # Half the avoided scalar-gather cost: consumers of the same
        # pack share one materialization (the code generator keeps it
        # live), so per-occurrence credit at full cost would double
        # count.
        return 1.5
    return GATHER_PENALTY


def candidate_adjacency_score(
    candidate: CandidateGroup, decl_of: Optional[DeclLookup]
) -> int:
    return sum(
        pack_adjacency_score(pack, decl_of) for pack in candidate.packs
    )


def _signature_op_cost(signature) -> float:
    """Total operator weight of one lane's expression shape, extracted
    from an isomorphism signature."""
    if not isinstance(signature, tuple) or not signature:
        return 0.0
    label = signature[0]
    if label == "leaf":
        return 0.0
    cost = float(OP_WEIGHTS.get(label, 0.0))
    for child in signature[2:]:
        cost += _signature_op_cost(child)
    return cost


def candidate_op_saving(candidate: CandidateGroup) -> float:
    """ALU work a merge saves per loop iteration: the two units' op
    streams become one SIMD stream, eliminating one full copy of the
    shared expression shape's operator cost."""
    _target_kind, expr_signature = candidate.left.signature
    return _signature_op_cost(expr_signature)


@dataclass
class GroupingTrace:
    """Optional record of each decision, for tests and debugging."""

    decisions: List[Tuple[CandidateGroup, Fraction]]

    def chosen_sids(self) -> List[Tuple[int, ...]]:
        return [tuple(sorted(c.sid_set)) for c, _ in self.decisions]


def eliminate_conflicts(
    nodes: Sequence[PackNode],
    adjacency: Dict[PackNode, Set[PackNode]],
) -> List[PackNode]:
    """Greedy conflict elimination: repeatedly remove the highest-degree
    node until no edges remain (Figure 7). Deterministic tie-breaking on
    the node's canonical key keeps the whole optimizer reproducible."""
    alive: Set[PackNode] = set(nodes)
    degree = {n: len(adjacency.get(n, set()) & alive) for n in alive}
    while True:
        conflicted = [n for n in alive if degree[n] > 0]
        if not conflicted:
            break
        victim = max(
            conflicted,
            key=lambda n: (degree[n], n.data, n.candidate_index, n.position),
        )
        alive.discard(victim)
        for neighbor in adjacency.get(victim, set()):
            if neighbor in alive:
                degree[neighbor] -= 1
    return sorted(alive, key=lambda n: (n.data, n.candidate_index, n.position))


class BasicGrouping:
    """One round of the basic grouping algorithm over a set of units."""

    def __init__(
        self,
        units: Sequence[GroupNode],
        deps: DependenceGraph,
        datapath_bits: int,
        decl_of: Optional[DeclLookup] = None,
        penalty_context: Optional[PenaltyContext] = None,
        decision_mode: str = "cost-aware",
    ):
        if decision_mode not in ("cost-aware", "weight-only"):
            raise ValueError(f"unknown decision mode {decision_mode!r}")
        self.units = list(units)
        self.deps = deps
        self.datapath_bits = datapath_bits
        self.candidates = find_candidates(self.units, deps, datapath_bits)
        self.vp = VariablePackGraph(self.candidates, deps)
        self.active: Set[int] = set(range(len(self.candidates)))
        self.decided: List[int] = []
        self.decided_packs: List[PackData] = []
        self._decl_of = decl_of
        self._penalty_context = penalty_context
        self.decision_mode = decision_mode
        self.adjacency = [
            candidate_adjacency_score(c, decl_of) for c in self.candidates
        ]

    # -- weight computation (Figure 10 lines 22–38) ---------------------------

    def _pack_counts(
        self, index: int
    ) -> Tuple[Dict[PackData, int], Dict[PackData, int]]:
        """Occurrence counts of the candidate's pack types across the
        surviving auxiliary-graph nodes, the decided groups' packs, and
        the candidate itself; plus the candidate-internal counts."""
        candidate = self.candidates[index]
        cand_packs = list(candidate.packs)
        cand_pack_set = set(cand_packs)

        aux_nodes: List[PackNode] = []
        for data in sorted(cand_pack_set):
            for node in self.vp.nodes_with_data(data):
                if node.candidate_index == index:
                    continue
                if self.vp.candidates_conflict(node.candidate_index, index):
                    continue
                aux_nodes.append(node)
        aux_nodes.sort(key=lambda n: (n.candidate_index, n.position))

        aux_set = set(aux_nodes)
        adjacency = {
            node: self.vp.neighbors(node) & aux_set for node in aux_nodes
        }
        survivors = eliminate_conflicts(aux_nodes, adjacency)

        counts: Dict[PackData, int] = {data: 0 for data in cand_pack_set}
        own_counts: Dict[PackData, int] = {data: 0 for data in cand_pack_set}
        for node in survivors:
            counts[node.data] += 1
        for data in self.decided_packs:
            if data in counts:
                counts[data] += 1
        for data in cand_packs:
            counts[data] += 1
            own_counts[data] += 1
        return counts, own_counts

    def weight(self, index: int) -> Fraction:
        """The paper's average superword reuse (Figure 10 lines 32–38).

        Collect every VP pack node whose data matches one of the
        candidate's packs and whose originating candidate does not
        conflict with it; greedily eliminate residual conflicts; then
        for each of the candidate's pack types count its occurrences
        across the surviving nodes, the already-decided groups' packs,
        and the candidate itself — each extra occurrence is one saved
        packing operation. ``W = sum(N_t - 1) / Nt`` with ``Nt`` the
        candidate's pack-type count reproduces the paper's 2/3 for
        {S4,S5} in Figure 6 and "considers the already-decided group
        together" after each decision (Section 4.2.1).
        """
        counts, _own = self._pack_counts(index)
        reuse = sum(count - 1 for count in counts.values())
        return Fraction(reuse, len(counts))

    def score(self, index: int) -> Fraction:
        """The decision score: reuse weight minus expected packing cost.

        Documented deviation from the paper (see DESIGN.md): the paper
        ranks candidates by reuse weight alone, breaks ties randomly,
        and leaves packing cost entirely to the final go/no-go cost
        model. A deterministic reproduction that must match Figure 16's
        "Global never loses to SLP" needs the grouping itself to avoid
        reuse-free gather groups when a contiguous alternative exists,
        so each pack type nothing else produces is charged its expected
        materialization cost (strided gather ≈ two superword operations,
        scalar gather ≈ half; near-zero when the layout stage will run
        and can rewrite the pack — see :class:`PenaltyContext`).
        """
        candidate = self.candidates[index]
        target_pack = candidate.packs[0]
        counts, own_counts = self._pack_counts(index)

        score = Fraction(0)
        for data, count in counts.items():
            # Each extra occurrence saves one materialization of this
            # pack — valued at what that materialization would cost.
            saving = Fraction(
                pack_reuse_saving(data, self._decl_of, self._penalty_context)
            ).limit_denominator(8)
            score += (count - 1) * saving
            external = count > own_counts[data]
            build = Fraction(
                pack_materialization_penalty(
                    data, self._decl_of, self._penalty_context
                )
            ).limit_denominator(8)
            if data == target_pack:
                # The result superword is always written back; a
                # non-contiguous target means a scatter either way.
                score -= Fraction(
                    pack_materialization_penalty(
                        data,
                        self._decl_of,
                        self._penalty_context,
                        is_store=True,
                    )
                ).limit_denominator(8)
                # Read-modify-write: the same pack is also a source and
                # nobody else produces it — it must be gathered first.
                if own_counts[data] > 1 and not external:
                    score -= build
            elif not external:
                # A source pack no other (non-conflicting) group defines
                # or uses: it must be materialized from scratch.
                score -= build
        # The merge's inherent benefits: one lane's worth of ALU work
        # disappears, and each all-memory position collapses per-lane
        # scalar accesses into one wide access (the gather/scatter
        # penalties above are charged relative to that baseline).
        score += Fraction(
            candidate_op_saving(candidate)
        ).limit_denominator(8)
        for data in candidate.packs:
            if all(key[0] == KIND_REF for key in data):
                score += 1
        return score / len(counts)

    # -- decision loop (Figure 10 lines 20–43) ----------------------------------

    def run(self) -> Tuple[List[GroupNode], List[GroupNode], GroupingTrace]:
        """Returns (decided groups, leftover units, trace)."""
        trace = GroupingTrace([])
        rank = (
            self.score if self.decision_mode == "cost-aware" else self.weight
        )
        scores: Dict[int, Fraction] = {i: rank(i) for i in self.active}
        while self.active:
            best = max(
                self.active,
                key=lambda i: (
                    scores[i],
                    self.adjacency[i],
                    _neg_key(self.candidates[i]),
                ),
            )
            if self.decision_mode == "cost-aware" and scores[best] < 0:
                # Packing looks like a net loss everywhere. Candidates
                # with genuine superword reuse (the paper's criterion)
                # are still committed — the paper "exploits all the
                # opportunities" — but reuse-free, cost-negative ones
                # are left scalar rather than sinking the whole block at
                # the cost gate.
                with_reuse = [
                    i for i in self.active if self.weight(i) > 0
                ]
                if not with_reuse:
                    break
                best = max(
                    with_reuse,
                    key=lambda i: (
                        self.weight(i),
                        scores[i],
                        self.adjacency[i],
                        _neg_key(self.candidates[i]),
                    ),
                )
            candidate = self.candidates[best]
            trace.decisions.append((candidate, self.weight(best)))
            self.decided.append(best)
            self.decided_packs.extend(candidate.packs)
            # Remove the decided candidate and everything conflicting
            # with it from both graphs.
            touched_data = set(candidate.packs)
            for index in sorted(self.active):
                if index == best or self.vp.candidates_conflict(index, best):
                    self.active.discard(index)
                    scores.pop(index, None)
                    touched_data.update(self.candidates[index].packs)
                    self.vp.remove_candidate(index)
            # A candidate's score depends only on nodes/decided packs
            # sharing its pack types: recompute just those.
            for index in self.active:
                if touched_data & set(self.candidates[index].packs):
                    scores[index] = rank(index)

        decided_groups = [self.candidates[i].merged() for i in self.decided]
        taken = set()
        for group in decided_groups:
            taken |= group.sid_set
        leftovers = [u for u in self.units if not (u.sid_set & taken)]
        return decided_groups, leftovers, trace


class _NegatedKey:
    """Inverts comparison so ``max`` picks the *smallest* candidate key
    among equal weights — the deterministic stand-in for the paper's
    "randomly choose one" tie-break."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other: "_NegatedKey") -> bool:
        return self.key > other.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NegatedKey) and self.key == other.key


def _neg_key(candidate: CandidateGroup) -> _NegatedKey:
    return _NegatedKey(candidate.key())
